"""Tests for the diurnal trace generator and device repair flows."""

import pytest

from repro.baselines.serverless import FaasPlatform, always_on_gpu_vm_cost
from repro.workloads.diurnal import (
    DAY_S,
    diurnal_inference_trace,
    diurnal_rate,
)


# ------------------------------------------------------------ diurnal curve


def test_rate_peaks_at_peak_hour():
    peak = diurnal_rate(14 * 3600.0, peak_rate_hz=1.0, peak_hour=14.0)
    trough = diurnal_rate(2 * 3600.0, peak_rate_hz=1.0, peak_hour=14.0)
    assert peak == pytest.approx(1.0)
    assert trough < 0.2


def test_rate_respects_trough_floor():
    floor = diurnal_rate(2 * 3600.0, 1.0, trough_fraction=0.3,
                         peak_hour=14.0)
    assert floor >= 0.3


def test_rate_validation():
    with pytest.raises(ValueError):
        diurnal_rate(0.0, 0.0)
    with pytest.raises(ValueError):
        diurnal_rate(0.0, 1.0, trough_fraction=2.0)


def test_trace_concentrates_daytime():
    trace = diurnal_inference_trace(peak_rate_hz=0.05, seed=3)
    day = sum(1 for r in trace.requests
              if 10 * 3600 <= r.arrival_s <= 18 * 3600)
    night = sum(1 for r in trace.requests
                if r.arrival_s <= 4 * 3600 or r.arrival_s >= 22 * 3600)
    assert day > 3 * night


def test_trace_deterministic_and_sorted():
    a = diurnal_inference_trace(peak_rate_hz=0.05, seed=9)
    b = diurnal_inference_trace(peak_rate_hz=0.05, seed=9)
    assert [r.arrival_s for r in a.requests] == \
        [r.arrival_s for r in b.requests]
    arrivals = [r.arrival_s for r in a.requests]
    assert arrivals == sorted(arrivals)


def test_diurnal_serverless_beats_peak_provisioned_vm():
    """The §1 economics with a realistic day shape: capacity sized for
    the afternoon peak idles all night; per-invocation GPU billing wins
    by a wide margin."""
    trace = diurnal_inference_trace(peak_rate_hz=0.02, seed=5)
    serverless = FaasPlatform(gpu=True).run_trace(trace)
    vm = always_on_gpu_vm_cost(DAY_S)
    assert serverless.total_cost < vm / 10
    assert serverless.mean_latency_s < 2.0


# ------------------------------------------------------------ device repair


def test_repaired_device_hosts_new_allocations():
    from repro.distsem.failures import FailureInjector
    from repro.hardware.devices import DeviceType
    from repro.hardware.topology import DatacenterSpec, build_datacenter

    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=1))
    injector = FailureInjector(dc.sim)
    pool = dc.pool(DeviceType.CPU)
    domain = injector.domain("rack0")
    for device in pool.devices:
        domain.devices.append(device)
    injector.fail_at(1.0, "rack0", repair_after=5.0)
    dc.sim.run(until=2.0)
    assert pool.total_capacity == 0  # everything dark
    dc.sim.run()
    assert pool.total_capacity > 0
    allocation = pool.allocate(1, "t")
    assert not allocation.device.failed


def test_repair_restores_runtime_capacity_for_queued_work():
    """A transient rack outage delays queued work instead of killing it."""
    from repro.appmodel.annotations import AppBuilder
    from repro.core.runtime import UDCRuntime
    from repro.hardware.devices import DeviceType
    from repro.hardware.topology import DatacenterSpec, build_datacenter

    spec = DatacenterSpec(
        pods=1, racks_per_pod=1,
        devices_per_rack={DeviceType.CPU: 1, DeviceType.GPU: 1,
                          DeviceType.DRAM: 1, DeviceType.SSD: 1},
    )
    runtime = UDCRuntime(build_datacenter(spec))

    app = AppBuilder("survivor")

    @app.task(name="work", work=30.0)
    def work(ctx):
        return "survived"

    # The module's own domain fails transiently mid-run and repairs.
    result = runtime.run(
        app.build(),
        {"work": {"distributed": {"checkpoint": True,
                                  "checkpoint_interval": 0.2}}},
        failure_plan=[(10.0, "fd:work")],
    )
    # Single-device pool: migration has nowhere to go until repair...
    # with no repair scheduled the module exhausts the pool and fails.
    assert result.outputs.get("work") is None

    runtime2 = UDCRuntime(build_datacenter(spec))
    app2 = AppBuilder("survivor2")

    @app2.task(name="work", work=30.0)
    def work2(ctx):
        return "survived"

    runtime2.injector.fail_at(10.0, "fd:work", repair_after=5.0)
    submission = runtime2.submit(
        app2.build(),
        {"work": {"distributed": {"checkpoint": True,
                                  "checkpoint_interval": 0.2}}},
    )
    results = runtime2.drain()
    # ... but with repair the device returns; note the failed attempt
    # already released its allocation, so the retry loop can reclaim
    # the repaired device via the tuner's migrate path.
    assert results[0].row("work").failures >= 1
