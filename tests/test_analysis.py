"""Golden tests for the static analysis framework (PR 5).

Three layers of guarantees:

* **clean baseline** — the Table 1 medical definition produces zero
  findings, so the analyzer never cries wolf on the paper's own example;
* **seeded defects** — a corpus of mutated definitions/apps exercises
  every UDC0xx code, pinning each finding's code, module, and message
  wording so diagnostics stay stable for tooling built on them;
* **wiring** — the CLI's ``--json`` output is byte-deterministic, and
  :meth:`UDCService.submit` rejects with the *same* diagnostics the CLI
  prints (admission and lint can never disagree).
"""

import copy
import json
import math

import pytest

from repro.analysis import (
    CODE_CATALOG,
    AnalysisError,
    Sensitivity,
    Severity,
    analyze_definition,
    clearance_of,
)
from repro.appmodel.annotations import AppBuilder
from repro.appmodel.dag import Edge, ModuleDAG
from repro.appmodel.ir import compile_dag
from repro.appmodel.module import DataModule, TaskModule
from repro.cli import main as cli_main
from repro.core.spec import parse_definition
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service import TenantQuota, UDCService
from repro.workloads.medical import build_medical_app

#: CPU-only rack — no GPU pool, no NVM pool (for UDC021/UDC025)
CPU_ONLY = DatacenterSpec(
    pods=1, racks_per_pod=1,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.DRAM: 1,
                      DeviceType.SSD: 1},
)


@pytest.fixture()
def medical():
    dag, definition = build_medical_app()
    return dag, definition


def codes_of(report):
    return sorted({d.code for d in report})


# ------------------------------------------------------------ clean baseline


def test_clean_medical_app_has_zero_findings(medical):
    dag, definition = medical
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter())
    assert len(report) == 0
    assert report.ok
    assert report.format_text() == "no findings"


def test_catalog_covers_every_emitted_code():
    assert sorted(CODE_CATALOG) == [
        "UDC001",
        "UDC010", "UDC011", "UDC012", "UDC013", "UDC014", "UDC015",
        "UDC020", "UDC021", "UDC022", "UDC023", "UDC024", "UDC025",
        "UDC026",
        "UDC030", "UDC031", "UDC032", "UDC033", "UDC034",
        "UDC040", "UDC041", "UDC042", "UDC043",
    ]


# ------------------------------------------------------------ parse failures


def test_udc001_parse_failure_is_a_report_not_an_exception():
    report = analyze_definition({"A1": {"resource": "warpdrive"}})
    assert codes_of(report) == ["UDC001"]
    assert not report.ok
    (diag,) = report
    assert diag.severity is Severity.ERROR
    assert "warpdrive" in diag.message


# ---------------------------------------------------------- conflict corpus


def test_udc010_consistency_demand_exceeds_declaration(medical):
    dag, definition = medical
    # S4 declares release; A3 demanding sequential of it is a conflict.
    definition["A3"]["distributed"]["data_consistency"] = {
        "S4": "sequential"}
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC010"]
    (diag,) = report
    assert diag.module == "A3"
    assert diag.aspect == "distributed"
    assert diag.message == ("demands sequential consistency of S4, "
                            "but S4 declares release")


def test_udc011_resilience_budget_breaks_cost_cap(medical):
    dag, definition = medical
    definition["A4"]["distributed"].update({
        "retry": {"max_attempts": 3, "base_backoff_s": 0.1, "jitter": 0.0},
        "hedge": 1.5,
        "cost_cap_dollars": 1e-9,
    })
    report = analyze_definition(definition, app=dag)
    assert "UDC011" in codes_of(report)
    diag = next(d for d in report if d.code == "UDC011")
    assert diag.module == "A4"
    assert "3 retry attempts x 2x hedging" in diag.message
    assert "exceeds the declared cost cap" in diag.message


def test_udc012_unmeetable_deadline(medical):
    dag, definition = medical
    definition["A4"]["distributed"]["deadline_s"] = 1e-6
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC012"]
    (diag,) = report
    assert diag.module == "A4"
    assert "below the critical-path lower bound" in diag.message
    assert diag.hint.startswith("raise deadline_s to at least")


def test_udc013_cheapest_goal_with_hedging(medical):
    dag, definition = medical
    definition["B2"]["distributed"]["hedge"] = 1.5
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC013"]
    (diag,) = report
    assert diag.module == "B2"
    assert diag.severity is Severity.WARNING
    assert "resource goal is cheapest" in diag.message


def test_udc014_stray_definition_module(medical):
    dag, definition = medical
    definition["ZZ"] = {"resource": "cheapest"}
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC014"]
    (diag,) = report
    assert diag.module == "ZZ"
    assert diag.severity is Severity.WARNING
    assert "which app 'medical-information-processing' does not contain" \
        in diag.message


def test_udc015_persistent_module_under_cheapest_goal(medical):
    dag, definition = medical
    definition["B2"]["distributed"]["persistent"] = True
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC015"]
    (diag,) = report
    assert diag.module == "B2"
    assert diag.severity is Severity.ERROR
    assert diag.aspect == "distributed"
    assert "resource goal is cheapest, which places it on the " \
           "preemptible spot tier" in diag.message
    assert "the spot discount could never be honored" in diag.message
    assert "drop the persistent flag" in diag.hint


def test_udc015_persistent_module_from_spot_tenant(medical):
    dag, definition = medical
    definition["A4"]["distributed"]["persistent"] = True
    # A firm tenant (or the CLI, which has no tenant) sees nothing.
    assert codes_of(analyze_definition(definition, app=dag)) == []
    assert codes_of(
        analyze_definition(definition, app=dag, tenant_tier="firm")
    ) == []
    report = analyze_definition(definition, app=dag, tenant_tier="spot")
    assert codes_of(report) == ["UDC015"]
    (diag,) = report
    assert diag.module == "A4"
    assert diag.severity is Severity.ERROR
    assert "the submitting tenant runs on the spot tier" in diag.message
    assert "spot work is preemption-eligible while persistent " \
           "deployments are never evicted" in diag.message
    assert "submit from a firm-tier tenant" in diag.hint


def test_udc015_rejects_at_the_service_front_door(medical):
    dag, definition = medical
    definition["A4"]["distributed"]["persistent"] = True
    service = UDCService(build_datacenter())
    from repro.service.tenants import TenantSpec
    service.register_tenant("spotty", TenantSpec(tier="spot"))
    service.register_tenant("firmy")
    with pytest.raises(AnalysisError) as err:
        service.submit("spotty", dag, definition)
    assert err.value.report.codes() == ["UDC015"]
    # The same definition sails through for a firm tenant — and the
    # persistent flag reaches the runtime submission.
    handle = service.submit("firmy", dag, definition)
    service.drain()
    assert handle.submission.persistent


# -------------------------------------------------------- feasibility corpus


def test_udc020_memory_does_not_fit_one_device(medical):
    dag, definition = medical
    # Default DRAM devices hold 512 GB; working memory lands whole.
    definition["A4"]["resource"] = {"device": "cpu", "amount": 2,
                                    "mem_gb": 600}
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter())
    assert codes_of(report) == ["UDC020"]
    (diag,) = report
    assert diag.module == "A4"
    assert "working memory of 600 GB" in diag.message
    assert "exceeds a single dram device's capacity (512 GB)" \
        in diag.message


def test_udc021_requested_pool_absent(medical):
    dag, definition = medical
    definition["S1"]["resource"] = "nvm"
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter(CPU_ONLY))
    diags = [d for d in report if d.code == "UDC021"
             and d.module == "S1"]
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "has no nvm pool" in diags[0].message


def test_udc022_aggregate_replicated_demand_exceeds_pool(medical):
    dag, definition = medical
    # 50 GB x 400 replicas = 20 000 GB against a 16 384 GB SSD pool;
    # each replica alone still fits one device, so only UDC022 fires.
    definition["S1"]["distributed"]["replication"] = 400
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter())
    assert codes_of(report) == ["UDC022"]
    (diag,) = report
    assert diag.module == "*"
    assert "aggregate ssd demand 20000 GB (from S1)" in diag.message


def test_udc023_pinned_device_outside_candidates(medical):
    dag, definition = medical
    # A2's developer declared GPU-only code.
    definition["A2"]["resource"] = {"device": "cpu", "amount": 1}
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter())
    assert codes_of(report) == ["UDC023"]
    (diag,) = report
    assert diag.module == "A2"
    assert diag.message == ("declares device cpu, but the task's "
                            "candidates are [gpu]")


def test_udc024_unallocatable_amount(medical):
    dag, definition = medical
    definition["A2"]["resource"] = {"device": "gpu",
                                    "amount": math.nan}
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter())
    assert codes_of(report) == ["UDC024"]
    (diag,) = report
    assert diag.module == "A2"
    assert "not an allocatable gpu request" in diag.message


def test_udc025_colocation_group_unplaceable(medical):
    dag, definition = medical
    # A1 and A2 co-locate and share only the GPU candidate; a CPU-only
    # datacenter cannot host the group (A2's pinned GPU also reports
    # its own missing pool).
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter(CPU_ONLY))
    assert "UDC025" in codes_of(report)
    diag = next(d for d in report if d.code == "UDC025")
    assert "co-location group [A1, A2] shares only [gpu]" in diag.message


def test_udc026_quota_cannot_admit(medical):
    dag, definition = medical
    report = analyze_definition(
        definition, app=dag, datacenter=build_datacenter(),
        quota=TenantQuota(max_in_flight=1), in_flight=1)
    assert codes_of(report) == ["UDC026"]
    (diag,) = report
    assert diag.module == "*"
    assert "1 submission(s) already in flight (quota 1)" in diag.message


# --------------------------------------------------------- structure corpus


def _task(name):
    return TaskModule(name=name, work=1.0, fn=None,
                      device_candidates=frozenset({DeviceType.CPU}))


def test_udc030_to_034_structural_defects():
    app = ModuleDAG(
        name="bad-shape",
        modules={
            "T1": _task("T1"), "T2": _task("T2"), "T3": _task("T3"),
            "LONER": _task("LONER"),
            "D1": DataModule(name="D1", size_gb=1.0),
        },
        edges=[
            Edge("T1", "T2"), Edge("T2", "T1"),      # task cycle
            Edge("T3", "T3"),                        # self-loop
            Edge("T3", "GHOST"),                     # missing endpoint
        ],
    )
    report = analyze_definition({}, app=app)
    assert codes_of(report) == [
        "UDC030", "UDC031", "UDC032", "UDC033", "UDC034"]
    by_code = {d.code: d for d in report}
    assert by_code["UDC030"].message == "task cycle: T1 -> T2 -> T1"
    assert by_code["UDC031"].module == "LONER"
    assert by_code["UDC032"].module == "D1"
    assert by_code["UDC033"].module == "GHOST"
    assert "edge T3 -> GHOST" in by_code["UDC033"].message
    assert by_code["UDC034"].module == "T3"
    # Warnings don't gate: only the structural errors block admission.
    assert {d.code for d in report.errors} \
        == {"UDC030", "UDC033", "UDC034"}


# --------------------------------------------------------- infoflow corpus


def test_udc040_clearance_too_weak_for_inflow(medical):
    dag, definition = medical
    # Route raw PHI records straight into B2's weak (container) env.
    dag.edges.append(Edge("S1", "B2"))
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC040"]
    (diag,) = report
    assert diag.module == "B2"
    assert diag.message == ("receives phi data but its execution "
                            "environment only clears anonymized")


def test_udc041_write_downgrades_label_without_sanitizer(medical):
    dag, definition = medical
    # A4 (not a sanitizer, phi output) writing the anonymized store.
    dag.edges.append(Edge("A4", "S4"))
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC041"]
    (diag,) = report
    assert diag.module == "A4"
    assert diag.message == ("writes phi data to 'S4', which is labeled "
                            "anonymized; only a sanitizer may declassify")


def test_udc042_phi_at_rest_without_encryption(medical):
    dag, definition = medical
    definition["S1"]["execenv"]["protection"] = ["integrity"]
    report = analyze_definition(definition, app=dag)
    assert codes_of(report) == ["UDC042"]
    (diag,) = report
    assert diag.module == "S1"
    assert diag.aspect == "execenv"
    assert "labeled phi but its protection policy does not request " \
           "encryption" in diag.message


def test_udc043_sanitizer_with_nothing_to_sanitize():
    app = AppBuilder("pointless")

    @app.task(name="scrub", work=1.0, sanitizer=True)
    def scrub(ctx):
        return ctx

    public = app.data("open", size_gb=1.0)   # unlabeled => public
    app.reads("scrub", public)
    report = analyze_definition({}, app=app.build())
    assert codes_of(report) == ["UDC043"]
    (diag,) = report
    assert diag.module == "scrub"
    assert diag.severity is Severity.WARNING


def test_sensitivity_lattice_and_clearance(medical):
    _dag, definition = medical
    assert Sensitivity.PUBLIC.rank < Sensitivity.ANONYMIZED.rank \
        < Sensitivity.PHI.rank
    assert Sensitivity.from_label(None) is Sensitivity.PUBLIC
    parsed = parse_definition(definition)
    # A4: sgx enclave => phi; B2: containers => anonymized.
    assert clearance_of(parsed, "A4") is Sensitivity.PHI
    assert clearance_of(parsed, "B2") is Sensitivity.ANONYMIZED
    assert clearance_of(parsed, "NO_SUCH") is Sensitivity.PUBLIC


# ----------------------------------------------------- determinism & order


def seeded_defect_definition():
    """One definition carrying several independent defects at once."""
    _dag, definition = build_medical_app()
    definition["A4"]["distributed"]["deadline_s"] = 1e-6
    definition["B2"]["distributed"]["hedge"] = 1.5
    definition["S1"]["execenv"]["protection"] = ["integrity"]
    definition["ZZ"] = {"resource": "cheapest"}
    return definition


def test_report_ordering_is_deterministic(medical):
    dag, _definition = medical
    definition = seeded_defect_definition()
    report = analyze_definition(definition, app=dag,
                                datacenter=build_datacenter())
    assert codes_of(report) == ["UDC012", "UDC013", "UDC014", "UDC042"]
    keys = [d.sort_key() for d in report]
    assert keys == sorted(keys)
    # Same input, same report — object identity aside.
    again = analyze_definition(copy.deepcopy(definition), app=dag,
                               datacenter=build_datacenter())
    assert report.to_json_dict() == again.to_json_dict()


def test_parse_definition_analyze_flag_raises(medical):
    dag, _definition = medical
    definition = seeded_defect_definition()
    with pytest.raises(AnalysisError) as err:
        parse_definition(definition, analyze=True, app=dag)
    assert "UDC012" in str(err.value)
    assert not err.value.report.ok
    # Clean definitions pass through untouched.
    _dag2, clean = build_medical_app()
    parsed = parse_definition(clean, analyze=True, app=dag)
    assert sorted(parsed.bundles) == sorted(clean)


# ------------------------------------------------------------- CLI wiring


@pytest.fixture()
def lint_files(tmp_path, medical):
    dag, definition = medical
    app_json = tmp_path / "app.json"
    app_json.write_text(json.dumps(compile_dag(dag).to_dict()))
    clean_json = tmp_path / "clean.json"
    clean_json.write_text(json.dumps(definition))
    bad_json = tmp_path / "bad.json"
    bad_json.write_text(json.dumps(seeded_defect_definition()))
    return str(app_json), str(clean_json), str(bad_json)


def test_cli_lint_clean_exits_zero(lint_files, capsys):
    app_json, clean_json, _bad = lint_files
    assert cli_main(["lint", app_json, "--spec", clean_json]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_errors_exit_two_with_hints(lint_files, capsys):
    app_json, _clean, bad_json = lint_files
    assert cli_main(["lint", app_json, "--spec", bad_json]) == 2
    out = capsys.readouterr().out
    assert "UDC012 error" in out
    assert "UDC042 error" in out
    assert "fix:" in out
    assert "2 error(s), 2 warning(s)" in out


def test_cli_lint_strict_gates_on_warnings(lint_files, capsys):
    app_json, clean_json, _bad = lint_files
    # A hedged cheapest module is warning-only: 0 normally, 2 --strict.
    _dag, definition = build_medical_app()
    definition["B2"]["distributed"]["hedge"] = 1.5
    warn_json = clean_json.replace("clean.json", "warn.json")
    with open(warn_json, "w") as handle:
        json.dump(definition, handle)
    assert cli_main(["lint", app_json, "--spec", warn_json]) == 0
    capsys.readouterr()
    assert cli_main(["lint", app_json, "--spec", warn_json,
                     "--strict"]) == 2
    assert "UDC013" in capsys.readouterr().out


def test_cli_lint_json_is_byte_deterministic(lint_files, capsys):
    app_json, _clean, bad_json = lint_files
    argv = ["lint", app_json, "--spec", bad_json, "--json"]
    assert cli_main(argv) == 2
    first = capsys.readouterr().out
    assert cli_main(argv) == 2
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert payload["ok"] is False
    assert payload["counts"] == {"error": 2, "warning": 2, "info": 0}
    assert [f["code"] for f in payload["findings"]] \
        == ["UDC012", "UDC013", "UDC042", "UDC014"]


def test_cli_lint_requires_some_input(capsys):
    assert cli_main(["lint"]) == 2
    assert "nothing to analyze" in capsys.readouterr().err


# --------------------------------------------------------- service wiring


def test_service_rejects_with_cli_identical_diagnostics(medical):
    dag, _definition = medical
    definition = seeded_defect_definition()
    service = UDCService(build_datacenter())
    with pytest.raises(AnalysisError) as err:
        service.submit("hospital", dag, definition)
    rejected = err.value.report

    expected = analyze_definition(definition, app=dag,
                                  datacenter=build_datacenter())
    assert rejected.to_json_dict() == expected.to_json_dict()

    # Rejection is visible in the lint metric family and the ledger.
    metrics = service.telemetry.metrics
    assert metrics.value("udc_lint_checks_total",
                         {"tenant": "hospital"}) == 1.0
    assert metrics.value("udc_lint_rejections_total",
                         {"tenant": "hospital"}) == 1.0
    assert metrics.value("udc_lint_findings_total",
                         {"severity": "error"}) == 2.0
    assert metrics.value("udc_lint_findings_total",
                         {"severity": "warning"}) == 2.0
    assert service.ledger.usage("hospital").rejected == 1

    # The defective submission never consumed quota.
    assert service.ledger.usage("hospital").submissions == 0


def test_service_lint_can_be_disabled(medical):
    dag, _definition = medical
    definition = seeded_defect_definition()
    definition.pop("ZZ")   # stray module would fail placement later
    service = UDCService(build_datacenter(), lint=False)
    handle = service.submit("hospital", dag, definition)
    service.drain()
    assert handle.status == "done"


def test_clean_submission_passes_lint_and_runs(medical):
    dag, definition = medical
    service = UDCService(build_datacenter())
    handle = service.submit("hospital", dag, definition)
    service.drain()
    assert handle.status == "done"
    assert service.telemetry.metrics.value(
        "udc_lint_checks_total", {"tenant": "hospital"}) == 1.0
