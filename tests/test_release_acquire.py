"""Tests for the release-consistency acquire operation."""

import pytest

from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import ReplicatedStore
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter

CLIENT = Location(0, 0, 99)


def make_rc_store():
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
    placement = ReplicaPlacer(dc.pool(DeviceType.SSD)).place(
        10, "t", ReplicationPolicy(factor=3))
    store = ReplicatedStore(
        dc.sim, dc.fabric, "S", placement,
        ConsistencyLevel.RELEASE, OpPreference.READER,
    )
    return dc, store


def run(dc, generator):
    process = dc.sim.process(generator)
    return dc.sim.run(until_event=process)


def test_acquire_syncs_released_writes():
    dc, store = make_rc_store()
    backup_client = store.backups[0].location

    def scenario():
        yield dc.sim.process(store.write(CLIENT, "k", b"v1", 512))
        yield dc.sim.process(store.release(CLIENT))
        # A second released write that propagation missed? Manufacture a
        # gap: write v2 then release only to see both flows work.
        yield dc.sim.process(store.write(CLIENT, "k", b"v2", 512))
        yield dc.sim.process(store.release(CLIENT))
        yield dc.sim.process(store.acquire(backup_client))
        value, stats = yield dc.sim.process(store.read(backup_client, "k"))
        return value, stats

    value, stats = run(dc, scenario())
    assert value == b"v2"
    assert stats.staleness == 0


def test_acquire_does_not_leak_unreleased_writes():
    dc, store = make_rc_store()
    backup_client = store.backups[0].location

    def scenario():
        yield dc.sim.process(store.write(CLIENT, "k", b"secret-draft", 512))
        # NOT released yet.
        yield dc.sim.process(store.acquire(backup_client))
        value, _stats = yield dc.sim.process(store.read(backup_client, "k"))
        return value

    value = run(dc, scenario())
    assert value is None  # unreleased write invisible at the replica


def test_acquire_after_manual_divergence_repairs():
    dc, store = make_rc_store()
    backup = store.backups[0]

    # Released state exists at the primary only (simulate a missed batch).
    version = store._next_version("k")
    store.primary.apply("k", version, b"released-state")

    def scenario():
        stats = yield dc.sim.process(store.acquire(backup.location))
        return stats

    stats = run(dc, scenario())
    assert backup.data["k"][1] == b"released-state"
    assert stats.messages == 2
    assert stats.bytes_moved > 0


def test_acquire_on_primary_rack_is_free():
    dc, store = make_rc_store()
    primary_client = store.primary.location

    def scenario():
        stats = yield dc.sim.process(store.acquire(primary_client))
        return stats

    stats = run(dc, scenario())
    assert stats.messages == 0
    assert stats.latency_s == 0.0


def test_acquire_noop_when_in_sync():
    dc, store = make_rc_store()
    backup_client = store.backups[0].location

    def scenario():
        yield dc.sim.process(store.write(CLIENT, "k", b"v", 512))
        yield dc.sim.process(store.release(CLIENT))
        first = yield dc.sim.process(store.acquire(backup_client))
        second = yield dc.sim.process(store.acquire(backup_client))
        return first, second

    first, second = run(dc, scenario())
    assert second.messages == 0  # already in sync
