"""Tests for the user-defined resilience layer (E22).

Covers the policy values (retry/hedge/deadline/breaker), their spec
parsing, the gray-failure injectors (stragglers, partitions, warm-pool
exhaustion), the runtime integration (backoff, hedging with
first-finisher-wins, deadline abandonment, breaker-aware placement), the
`udc chaos` CLI, and the robustness regressions this PR fixes (stale
repair resurrection, Submission.done on never-started submissions).
"""

import json

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.ir import compile_dag
from repro.cli import main
from repro.core.runtime import Submission, UDCRuntime
from repro.core.spec import SpecError, parse_definition
from repro.distsem.failures import Failure, FailureInjector
from repro.distsem.recovery import RecoveryStrategy, plan_recovery
from repro.distsem.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRegistry,
    HedgePolicy,
    RetryPolicy,
)
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.simulator.rng import RngRegistry

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def small_app(name="app", work=20.0):
    app = AppBuilder(name)

    # max_parallelism=1: wall time stays work-seconds even when the spec
    # over-allocates to force one worker per device.
    @app.task(name="job", work=work, max_parallelism=1)
    def job(ctx):
        return "done"

    return app.build()


def exclusive(policy: dict) -> dict:
    """A spec granting job its own 32-core CPU device (amount > half)."""
    return {"job": {"resource": {"device": "cpu", "amount": 17},
                    "distributed": dict(policy)}}


# ------------------------------------------------------------ RetryPolicy


def test_retry_backoff_grows_and_caps():
    policy = RetryPolicy(max_attempts=5, base_backoff_s=1.0, multiplier=2.0,
                         max_backoff_s=5.0, jitter=0.0)
    delays = [policy.backoff_s(n, RngRegistry(0).stream("r"))
              for n in (1, 2, 3, 4, 5)]
    assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_retry_backoff_jitter_deterministic_per_seed():
    policy = RetryPolicy(jitter=0.5)
    first = [policy.backoff_s(n, s) for s in [RngRegistry(3).stream("retry:m")]
             for n in (1, 2, 3)]
    second = [policy.backoff_s(n, s) for s in [RngRegistry(3).stream("retry:m")]
              for n in (1, 2, 3)]
    other = [policy.backoff_s(n, s) for s in [RngRegistry(4).stream("retry:m")]
             for n in (1, 2, 3)]
    assert first == second
    assert first != other


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy().backoff_s(0, RngRegistry(0).stream("r"))


# ------------------------------------------------------------ HedgePolicy


def test_hedge_trigger_modes():
    assert HedgePolicy(after_s=3.0).trigger_delay_s(100.0) == 3.0
    assert HedgePolicy(latency_factor=1.5).trigger_delay_s(10.0) == 15.0


def test_hedge_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        HedgePolicy()
    with pytest.raises(ValueError):
        HedgePolicy(after_s=1.0, latency_factor=1.5)
    with pytest.raises(ValueError):
        HedgePolicy(after_s=-1.0)
    with pytest.raises(ValueError):
        HedgePolicy(latency_factor=2.0, max_hedges=0)


# ------------------------------------------------------------ CircuitBreaker


def test_breaker_opens_after_threshold_in_window():
    breaker = CircuitBreaker(key="d", threshold=3, window_s=10.0)
    assert not breaker.record_failure(0.0)
    assert not breaker.record_failure(1.0)
    assert breaker.record_failure(2.0)  # third within the window: opens
    assert breaker.state == BreakerState.OPEN
    assert not breaker.allows(3.0)


def test_breaker_window_expires_old_failures():
    breaker = CircuitBreaker(key="d", threshold=3, window_s=10.0)
    breaker.record_failure(0.0)
    breaker.record_failure(1.0)
    # 30s later the first two aged out; this is failure #1 of a new window
    assert not breaker.record_failure(30.0)
    assert breaker.state == BreakerState.CLOSED


def test_breaker_half_open_trial_then_close_or_reopen():
    breaker = CircuitBreaker(key="d", threshold=1, cooldown_s=5.0)
    assert breaker.record_failure(0.0)
    assert not breaker.allows(1.0)
    assert breaker.allows(6.0)  # cooldown elapsed: half-open trial granted
    assert breaker.state == BreakerState.HALF_OPEN
    breaker.record_success(7.0)
    assert breaker.state == BreakerState.CLOSED
    # and the reopen path: half-open + failure -> straight back to open
    breaker.record_failure(8.0)
    assert breaker.allows(14.0)
    assert breaker.record_failure(15.0)
    assert breaker.state == BreakerState.OPEN


def test_breaker_registry_counts_opens_and_lists_open_keys():
    registry = CircuitBreakerRegistry(threshold=1, cooldown_s=100.0)
    assert registry.record_failure("cpu-1", 0.0)
    assert not registry.record_failure("cpu-1", 1.0)  # already open
    assert registry.opens == 1
    assert registry.open_keys(2.0) == ["cpu-1"]
    assert not registry.allows("cpu-1", 2.0)
    assert registry.allows("cpu-2", 2.0)


def test_breaker_registry_disabled_is_passthrough():
    registry = CircuitBreakerRegistry(threshold=1, enabled=False)
    assert not registry.record_failure("cpu-1", 0.0)
    assert registry.allows("cpu-1", 1.0)
    assert registry.opens == 0


# ------------------------------------------------------------ spec parsing


def test_spec_parses_resilience_policies():
    definition = parse_definition({
        "job": {"distributed": {
            "retry": {"max_attempts": 5, "base_backoff_s": 0.1},
            "deadline_s": 30.0,
            "hedge": {"after_s": 4.0, "max_hedges": 2},
        }}
    })
    dist = definition.bundle_for("job").distributed
    assert dist.retry.max_attempts == 5
    assert dist.deadline_s == 30.0
    assert dist.hedge.after_s == 4.0 and dist.hedge.max_hedges == 2


def test_spec_resilience_shorthands():
    definition = parse_definition(
        {"job": {"distributed": {"retry": 4, "hedge": 1.5}}}
    )
    dist = definition.bundle_for("job").distributed
    assert dist.retry.max_attempts == 4
    assert dist.hedge.latency_factor == 1.5


def test_spec_rejects_bad_resilience_fields():
    with pytest.raises(SpecError) as excinfo:
        parse_definition({"job": {"distributed": {
            "retry": {"attempts": 3},       # unknown field
            "hedge": {"after_s": 1.0, "latency_factor": 2.0},  # both triggers
            "deadline_s": -5.0,
        }}})
    text = str(excinfo.value)
    assert "retry" in text and "hedge" in text and "deadline" in text


# ------------------------------------------------------------ gray injectors


def test_slow_at_sets_and_restores_straggler_factor():
    dc = build_datacenter(SPEC)
    injector = FailureInjector(dc.sim)
    device = dc.devices[0]
    injector.domain("fd1").devices.append(device)
    injector.slow_at(5.0, "fd1", factor=8.0, duration_s=10.0)
    dc.sim.run(until=6.0)
    assert device.slow_factor == 8.0
    assert not device.failed  # gray: degraded, not dead
    dc.sim.run(until=20.0)
    assert device.slow_factor == 1.0
    with pytest.raises(ValueError):
        injector.slow_at(1.0, "fd1", factor=0.5)


def test_partition_stalls_cross_cut_transfers_then_heals():
    dc = build_datacenter(SPEC)
    a, b = Location(0, 0), Location(0, 1)
    baseline = dc.fabric.transfer_time(a, b, 1 << 20)
    injector = FailureInjector(dc.sim, fabric=dc.fabric)
    injector.partition_at(1.0, a, b, duration_s=10.0, stall_s=30.0)
    dc.sim.run(until=2.0)
    assert dc.fabric.transfer_time(a, b, 1 << 20) == \
        pytest.approx(baseline + 30.0)
    # other rack pairs are unaffected
    assert dc.fabric.transfer_time(a, Location(0, 2), 1 << 20) < 1.0
    dc.sim.run(until=12.0)
    assert dc.fabric.transfer_time(a, b, 1 << 20) == pytest.approx(baseline)


def test_sever_same_rack_rejected():
    dc = build_datacenter(SPEC)
    with pytest.raises(ValueError):
        dc.fabric.sever(Location(0, 0, 1), Location(0, 0, 2))


def test_warm_pool_exhaustion_blocks_refills_until_restore():
    from repro.execenv.environments import EnvKind
    from repro.execenv.warmpool import WarmPool

    pool = WarmPool(enabled=True)
    pool.prewarm(EnvKind.CONTAINER, False, count=2)
    assert pool.exhaust() == 2
    assert pool.refill() == 0  # refills suspended during the outage
    assert not pool.try_acquire(EnvKind.CONTAINER, False)
    pool.restore()
    assert pool.refill() > 0
    assert pool.try_acquire(EnvKind.CONTAINER, False)


# ------------------------------------------------ regression: stale repair


def test_stale_repair_cannot_resurrect_refailed_domain():
    """A scheduled repair from failure #1 fires after failure #2 already
    re-failed the domain: the domain (and its devices) must stay failed."""
    dc = build_datacenter(SPEC)
    injector = FailureInjector(dc.sim)
    domain = injector.domain("fd1")
    device = dc.devices[0]
    domain.devices.append(device)
    injector.fail_at(1.0, "fd1", repair_after=10.0)  # repair due at 11.0
    injector.fail_at(5.0, "fd1")                      # permanent re-failure
    dc.sim.run()
    assert domain.failed
    assert device.failed


def test_unconditional_repair_still_works():
    dc = build_datacenter(SPEC)
    injector = FailureInjector(dc.sim)
    domain = injector.domain("fd1")
    domain.fail(Failure(domain="fd1", at=0.0))
    domain.repair()  # manual repair carries no failure: always applies
    assert not domain.failed


# ------------------------------------------- regression: Submission.done


def test_never_started_submission_is_not_done():
    dag = small_app()
    submission = Submission(dag=dag, tenant="t", inputs={})
    assert submission.status == "pending"
    assert not submission.done
    submission.status = "queued"
    assert not submission.done


def test_data_only_submission_is_done_once_running():
    app = AppBuilder("data-only")
    app.data("ds", size_gb=1.0)
    runtime = UDCRuntime(build_datacenter(SPEC))
    submission = runtime.submit(app.build())
    assert submission.done  # deployed, zero task completions
    runtime.drain()


def test_running_submission_done_only_after_completion():
    runtime = UDCRuntime(build_datacenter(SPEC))
    submission = runtime.submit(small_app())
    assert not submission.done
    runtime.drain()
    assert submission.done


# ------------------------------------------------ recovery degradation


def test_checkpoint_restore_without_store_degrades_to_rerun():
    outcome = plan_recovery(RecoveryStrategy.CHECKPOINT_RESTORE, "A2", None)
    assert outcome.strategy == RecoveryStrategy.RERUN
    assert outcome.resume_progress == 0.0
    assert outcome.checkpoint is None


def test_checkpoint_restore_without_snapshot_degrades_to_rerun():
    from repro.distsem.checkpoint import CheckpointStore
    from repro.hardware.devices import DeviceType

    dc = build_datacenter(SPEC)
    store = CheckpointStore(dc.sim, dc.fabric,
                           dc.pool(DeviceType.SSD).devices[0])
    outcome = plan_recovery(RecoveryStrategy.CHECKPOINT_RESTORE, "A2", store)
    assert outcome.strategy == RecoveryStrategy.RERUN
    assert outcome.resume_progress == 0.0


# ------------------------------------------------ runtime integration


def test_retry_policy_limits_attempts():
    """max_attempts=1: the second crash abandons the module."""
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(
        small_app(work=30.0),
        exclusive({"retry": {"max_attempts": 1, "base_backoff_s": 0.1}}),
        failure_plan=[(2.0, "fd:job"), (6.0, "fd:job")],
    )
    assert "job" not in result.outputs
    assert result.row("job").retries == 1
    assert result.row("job").failures == 2


def test_retry_policy_backs_off_before_reexecution():
    runtime = UDCRuntime(build_datacenter(SPEC), rng=RngRegistry(1))
    result = runtime.run(
        small_app(work=10.0),
        exclusive({"retry": {"max_attempts": 3, "base_backoff_s": 2.0,
                             "jitter": 0.0}}),
        failure_plan=[(1.0, "fd:job")],
    )
    record = result.objects["job"].record
    assert result.outputs["job"] == "done"
    assert record.retries == 1
    assert record.backoff_s == pytest.approx(2.0)
    assert result.telemetry.events_of("retry")


def test_deadline_abandons_module_and_counts_slo_violation():
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(small_app(work=50.0),
                         exclusive({"deadline_s": 10.0}))
    row = result.row("job")
    assert row.deadline_missed
    assert result.slo_violations == 1
    assert "job" not in result.outputs
    assert result.makespan_s == pytest.approx(10.0, abs=0.5)
    assert result.telemetry.events_of("deadline_miss")
    # the abandoned module's allocations were released
    assert all(a.released for a in result.objects["job"].allocations)


def test_hedge_beats_straggler_primary():
    runtime = UDCRuntime(build_datacenter(SPEC))
    submission = runtime.submit(small_app(work=20.0),
                                exclusive({"hedge": 1.5}))
    runtime.injector.slow_at(1.0, "fd:job", factor=10.0)
    runtime.drain()
    result = submission.result
    record = result.objects["job"].record
    assert result.outputs["job"] == "done"
    assert record.hedge_won and record.winner == "hedge"
    assert record.hedges == 1
    assert result.telemetry.events_of("hedge-win")
    # the duplicate beat the 10x primary: well under the 200s slow path
    assert result.makespan_s < 100.0
    assert all(a.released for a in result.objects["job"].allocations)


def test_hedge_not_launched_when_primary_is_fast():
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(small_app(work=10.0), exclusive({"hedge": 2.0}))
    assert result.outputs["job"] == "done"
    assert result.row("job").hedges == 0
    assert result.row("job").hedge_won is False


def test_breaker_opens_on_crash_and_placement_avoids_device():
    runtime = UDCRuntime(
        build_datacenter(SPEC),
        breakers=CircuitBreakerRegistry(threshold=1, cooldown_s=10_000.0),
    )
    submission = runtime.submit(
        small_app(work=30.0),
        exclusive({"retry": {"max_attempts": 3, "base_backoff_s": 0.1}}),
        failure_plan=[(2.0, "fd:job")],
    )
    failed_device = submission.objects["job"].primary_allocation.device
    runtime.drain()
    result = submission.result
    assert result.outputs["job"] == "done"
    assert runtime.breakers.opens >= 1
    assert result.telemetry.events_of("breaker_open")
    assert not runtime.breakers.allows(
        failed_device.device_id, runtime.sim.now
    )
    # the retried attempt migrated off the broken device
    assert result.objects["job"].record.migrations >= 1


def test_retry_schedule_deterministic_across_runs():
    """Same seed -> identical JSON summary, including backoff timing."""

    def one_run():
        runtime = UDCRuntime(build_datacenter(SPEC), rng=RngRegistry(11))
        result = runtime.run(
            small_app(work=15.0),
            exclusive({"retry": {"max_attempts": 3, "base_backoff_s": 1.0,
                                 "jitter": 0.5}}),
            failure_plan=[(2.0, "fd:job")],
        )
        return (json.dumps(result.to_json_dict(), sort_keys=True),
                result.objects["job"].record.backoff_s)

    first_json, first_backoff = one_run()
    second_json, second_backoff = one_run()
    assert first_json == second_json
    assert first_backoff == second_backoff
    runtime = UDCRuntime(build_datacenter(SPEC), rng=RngRegistry(12))
    other = runtime.run(
        small_app(work=15.0),
        exclusive({"retry": {"max_attempts": 3, "base_backoff_s": 1.0,
                             "jitter": 0.5}}),
        failure_plan=[(2.0, "fd:job")],
    )
    assert other.objects["job"].record.backoff_s != first_backoff


# ------------------------------------------------------------ chaos CLI


@pytest.fixture()
def chaos_files(tmp_path):
    path = tmp_path / "app.json"
    path.write_text(json.dumps(compile_dag(small_app(work=20.0)).to_dict()))
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(exclusive({"retry": 4, "hedge": 1.5})))
    faults = tmp_path / "faults.json"
    faults.write_text(json.dumps([
        {"at": 1.0, "kind": "slow", "domain": "fd:job", "factor": 8,
         "duration_s": 60.0},
        {"at": 5.0, "kind": "crash", "domain": "fd:job",
         "repair_after": 2.0},
        {"at": 2.0, "kind": "partition", "a": [0, 0], "b": [0, 1],
         "duration_s": 50.0},
    ]))
    return str(path), str(spec), str(faults)


def test_cli_chaos_reports_resilience(chaos_files, capsys):
    app, spec, faults = chaos_files
    code = main(["chaos", app, "--spec", spec, "--faults", faults,
                 "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fault(s) injected" in out
    assert "makespan" in out


def test_cli_chaos_json_is_deterministic(chaos_files, capsys):
    app, spec, faults = chaos_files
    assert main(["chaos", app, "--spec", spec, "--faults", faults,
                 "--seed", "7", "--json"]) == 0
    first = capsys.readouterr().out
    assert main(["chaos", app, "--spec", spec, "--faults", faults,
                 "--seed", "7", "--json"]) == 0
    second = capsys.readouterr().out
    payload = json.loads(first)
    assert payload["faults_injected"] == 3
    assert first == second


def test_cli_chaos_rejects_bad_fault_entries(chaos_files, tmp_path, capsys):
    app, spec, _ = chaos_files
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([{"at": 1.0, "kind": "meteor"}]))
    code = main(["chaos", app, "--spec", spec, "--faults", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown kind" in err


def test_cli_chaos_exit_code_signals_slo_violation(chaos_files, tmp_path,
                                                   capsys):
    app, _, _ = chaos_files
    spec = tmp_path / "slo.json"
    # amount=1 (IR round-trips drop max_parallelism, so wall time scales
    # with the allocation): a 20s job against a 5s deadline must miss.
    spec.write_text(json.dumps(
        {"job": {"resource": {"device": "cpu", "amount": 1},
                 "distributed": {"deadline_s": 5.0}}}))
    code = main(["chaos", app, "--spec", str(spec)])
    out = capsys.readouterr().out
    assert code == 3
    assert "SLO violation" in out
