"""Tests for aspect types, the declarative spec parser, and defaults."""

import pytest

from repro.appmodel.module import DataModule, TaskModule
from repro.core.aspects import (
    AspectBundle,
    DistributedAspect,
    ExecEnvAspect,
    ResourceAspect,
    ResourceGoal,
)
from repro.core.defaults import provider_defaults
from repro.core.spec import SpecError, parse_definition
from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.recovery import RecoveryStrategy
from repro.execenv.environments import EnvKind
from repro.execenv.isolation import IsolationLevel
from repro.hardware.devices import DeviceType


# ------------------------------------------------------------ aspect invariants


def test_resource_aspect_device_xor_goal():
    with pytest.raises(ValueError):
        ResourceAspect(device=DeviceType.GPU, goal=ResourceGoal.FASTEST)


def test_resource_aspect_amount_positive():
    with pytest.raises(ValueError):
        ResourceAspect(amount=0)
    with pytest.raises(ValueError):
        ResourceAspect(mem_gb=-1)


def test_resource_media_must_be_storage_or_memory():
    with pytest.raises(ValueError):
        ResourceAspect(media=DeviceType.GPU)
    ResourceAspect(media=DeviceType.SSD)  # ok
    ResourceAspect(media=DeviceType.DRAM)  # ok


def test_execenv_isolation_xor_kind():
    with pytest.raises(ValueError):
        ExecEnvAspect(isolation=IsolationLevel.STRONG, env_kind=EnvKind.VM)


def test_execenv_effective_isolation_from_kind():
    aspect = ExecEnvAspect(env_kind=EnvKind.SGX_ENCLAVE, single_tenant=True)
    assert aspect.effective_isolation == IsolationLevel.STRONGEST
    aspect = ExecEnvAspect(env_kind=EnvKind.SGX_ENCLAVE)
    assert aspect.effective_isolation == IsolationLevel.STRONG
    aspect = ExecEnvAspect(env_kind=EnvKind.CONTAINER)
    assert aspect.effective_isolation == IsolationLevel.WEAK


def test_distributed_checkpoint_implies_restore_strategy():
    aspect = DistributedAspect(checkpoint=True)
    assert aspect.recovery == RecoveryStrategy.CHECKPOINT_RESTORE


def test_distributed_interval_validation():
    with pytest.raises(ValueError):
        DistributedAspect(checkpoint_interval=0.0)
    with pytest.raises(ValueError):
        DistributedAspect(checkpoint_interval=1.5)


def test_bundle_with_defaults_fills_only_missing():
    declared = AspectBundle(resource=ResourceAspect(device=DeviceType.GPU))
    defaults = provider_defaults(TaskModule(name="t"))
    merged = declared.with_defaults(defaults)
    assert merged.resource.device == DeviceType.GPU   # kept
    assert merged.execenv is defaults.execenv          # filled
    assert merged.distributed is defaults.distributed  # filled


def test_override_consistency_preserves_other_fields():
    bundle = AspectBundle(
        distributed=DistributedAspect(
            consistency=ConsistencyLevel.RELEASE, checkpoint=True
        )
    )
    updated = bundle.override_consistency(ConsistencyLevel.SEQUENTIAL)
    assert updated.distributed.consistency == ConsistencyLevel.SEQUENTIAL
    assert updated.distributed.checkpoint


# ------------------------------------------------------------ provider defaults


def test_task_defaults_are_todays_cloud():
    bundle = provider_defaults(TaskModule(name="t"))
    assert bundle.resource.goal == ResourceGoal.CHEAPEST
    assert bundle.execenv.isolation == IsolationLevel.WEAK
    assert bundle.distributed.replication.factor == 1
    assert bundle.distributed.consistency == ConsistencyLevel.EVENTUAL
    assert not bundle.execenv.protection.any_enabled


def test_data_defaults():
    bundle = provider_defaults(DataModule(name="d"))
    assert bundle.distributed.recovery == RecoveryStrategy.NONE


def test_defaults_unknown_type_rejected():
    with pytest.raises(TypeError):
        provider_defaults(object())


# ------------------------------------------------------------ spec parsing


def test_parse_full_definition():
    definition = parse_definition({
        "A2": {
            "resource": {"device": "gpu", "amount": 2, "mem_gb": 8},
            "execenv": {"isolation": "strong", "single_tenant": True,
                        "protection": ["encrypt", "integrity"]},
            "distributed": {"replication": 2, "consistency": "sequential",
                            "preference": "reader", "checkpoint": True,
                            "failure_domain": "diag"},
        },
    })
    bundle = definition.bundle_for("A2")
    assert bundle.resource.device == DeviceType.GPU
    assert bundle.resource.amount == 2
    assert bundle.resource.mem_gb == 8
    assert bundle.execenv.isolation == IsolationLevel.STRONG
    assert bundle.execenv.single_tenant
    assert bundle.execenv.protection.encrypt
    assert not bundle.execenv.protection.replay_protect
    assert bundle.distributed.replication.factor == 2
    assert bundle.distributed.consistency == ConsistencyLevel.SEQUENTIAL
    assert bundle.distributed.preference == OpPreference.READER
    assert bundle.distributed.failure_domain == "diag"


def test_parse_table1_shorthands():
    definition = parse_definition({
        "A1": {"resource": "fastest"},
        "B1": {"resource": "cheapest"},
        "A2": {"resource": "gpu"},
        "S1": {"resource": "ssd"},
        "S3": {"resource": "dram"},
    })
    assert definition.bundle_for("A1").resource.goal == ResourceGoal.FASTEST
    assert definition.bundle_for("B1").resource.goal == ResourceGoal.CHEAPEST
    assert definition.bundle_for("A2").resource.device == DeviceType.GPU
    assert definition.bundle_for("S1").resource.media == DeviceType.SSD
    assert definition.bundle_for("S3").resource.media == DeviceType.DRAM


def test_parse_undeclared_module_gets_empty_bundle():
    definition = parse_definition({})
    bundle = definition.bundle_for("ghost")
    assert bundle.resource is None
    assert bundle.execenv is None
    assert bundle.distributed is None


def test_parse_collects_all_problems():
    with pytest.raises(SpecError) as excinfo:
        parse_definition({
            "A": {"resource": {"device": "warp-drive"}},
            "B": {"execenv": {"isolation": "unbreakable"}},
            "C": {"distributed": {"consistency": "psychic"}},
        })
    problems = excinfo.value.problems
    assert len(problems) == 3
    assert any("A.resource" in p for p in problems)
    assert any("B.execenv" in p for p in problems)
    assert any("C.distributed" in p for p in problems)


def test_parse_unknown_aspect_name_rejected():
    with pytest.raises(SpecError, match="unknown aspect"):
        parse_definition({"A": {"resources": "gpu"}})


def test_parse_unknown_protection_flag_rejected():
    with pytest.raises(SpecError, match="protection"):
        parse_definition({"A": {"execenv": {"protection": ["stealth"]}}})


def test_parse_data_consistency_expectations():
    definition = parse_definition({
        "T": {"distributed": {"data_consistency": {"S1": "sequential"}}},
    })
    dist = definition.bundle_for("T").distributed
    assert dist.data_consistency == {"S1": ConsistencyLevel.SEQUENTIAL}


def test_parse_non_mapping_rejected():
    with pytest.raises(SpecError):
        parse_definition(["not", "a", "mapping"])  # type: ignore[arg-type]
    with pytest.raises(SpecError):
        parse_definition({"A": "gpu"})


def test_parse_bad_shorthand_rejected():
    with pytest.raises(SpecError, match="shorthand"):
        parse_definition({"A": {"resource": "quantum"}})
