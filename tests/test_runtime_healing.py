"""Tests for runtime-driven store healing after device failures."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def app_with_store():
    app = AppBuilder("durable")

    @app.task(name="writer", work=5.0)
    def writer(ctx):
        return None

    @app.task(name="reader", work=60.0)
    def reader(ctx):
        return "read-ok"

    vault = app.data("vault", size_gb=5)
    app.writes("writer", vault, bytes_per_run=1 << 20)
    app.reads("reader", vault, bytes_per_run=1 << 20)
    return app.build()


DEFINITION = {
    "vault": {"resource": "ssd",
              "distributed": {"replication": 3, "consistency": "sequential"}},
    "reader": {"distributed": {"checkpoint": True}},
}


def test_store_healed_after_domain_failure():
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(
        app_with_store(), DEFINITION,
        # Replicas default to independent domains; kill just one.
        failure_plan=[(10.0, "fd:vault:r1")],
    )
    heals = result.telemetry.events_of("heal")
    assert heals, "store was not healed after its domain failed"
    vault = result.objects["vault"]
    # Replication factor restored on live devices.
    live = [a for a in vault.store.replicas if not a.device.failed]
    assert len(live) == 3
    # Pipeline still completed.
    assert result.outputs["reader"] == "read-ok"


def test_healing_rebills_correctly():
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(
        app_with_store(), DEFINITION,
        failure_plan=[(10.0, "fd:vault:r1")],
    )
    # Every meter closed exactly once: no leaked owners or ledgers.
    assert not runtime._owner_of
    assert all(not s.cost_ledger for s in runtime._submissions)
    # Replacement replicas were released at teardown too.
    ssd_pool = runtime.datacenter.pool(DeviceType.SSD)
    live_used = sum(d.used for d in ssd_pool.devices if not d.failed)
    assert live_used == 0.0


def test_total_data_loss_reported_not_crashed():
    """An explicitly shared failure domain couples all replicas — the
    user's own declaration can defeat replication (and UDC reports it)."""
    runtime = UDCRuntime(build_datacenter(SPEC))
    definition = {
        "vault": {"resource": "ssd",
                  "distributed": {"replication": 3,
                                  "failure_domain": "one-basket"}},
    }
    result = runtime.run(
        app_with_store(), definition,
        failure_plan=[(10.0, "one-basket")],
    )
    losses = result.telemetry.events_of("data-loss")
    assert losses and "vault" in {e.module for e in losses}


def test_no_heal_without_failures():
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(app_with_store(), DEFINITION)
    assert not result.telemetry.events_of("heal")
    assert not result.telemetry.events_of("data-loss")
