"""Edge-case coverage: branches the main suites don't reach."""

import pytest

from repro.appmodel.actor import _estimate_size
from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.core.timeline import ascii_gantt
from repro.execenv.attestation import HardwareRootOfTrust, Verifier
from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceType
from repro.hardware.pools import (
    ResourcePool,
    is_amount_valid,
    total_fragmentation,
)
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.simulator import Simulator


# ------------------------------------------------------------ engine


def test_anyof_failure_propagates():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def waiter():
        try:
            yield sim.any_of([sim.process(failing()), sim.timeout(10.0)])
        except ValueError:
            return "caught"

    process = sim.process(waiter())
    assert sim.run(until_event=process) == "caught"


def test_allof_with_prefailed_event():
    sim = Simulator()
    bad = sim.event()
    bad.fail(RuntimeError("early"))
    sim.run(until=0.1)  # process the failure

    def waiter():
        try:
            yield sim.all_of([bad, sim.timeout(1.0)])
        except RuntimeError:
            return "caught"

    process = sim.process(waiter())
    assert sim.run(until_event=process) == "caught"


# ------------------------------------------------------------ pools helpers


def test_is_amount_valid():
    spec = DEFAULT_SPECS[DeviceType.CPU]
    assert is_amount_valid(spec, 1.0)
    assert not is_amount_valid(spec, 0.0)
    assert not is_amount_valid(spec, spec.capacity + 1)
    assert not is_amount_valid(spec, float("nan"))
    assert not is_amount_valid(spec, float("inf"))


def test_total_fragmentation():
    pool = ResourcePool(DeviceType.CPU)
    device = Device(spec=DEFAULT_SPECS[DeviceType.CPU])
    pool.add_device(device)
    assert total_fragmentation(pool) == 0.0
    # Leave a sliver below min_grain (0.25): allocate 31.9 of 32.
    pool.allocate(31.9, "t")
    assert total_fragmentation(pool) == pytest.approx(1.0)
    empty = ResourcePool(DeviceType.CPU)
    assert total_fragmentation(empty) == 0.0


# ------------------------------------------------------------ attestation


def test_verifier_can_verify():
    verifier = Verifier(HardwareRootOfTrust())
    assert verifier.can_verify("env_kind")
    assert not verifier.can_verify("amount")


# ------------------------------------------------------------ actors


def test_estimate_size_branches():
    assert _estimate_size(b"x" * 100) == 100
    assert _estimate_size("hi") == 64           # floor
    assert _estimate_size({"a": 1, "b": 2}) == 128
    assert _estimate_size([b"x" * 100, b"y" * 100]) == 200
    assert _estimate_size(42) == 256


# ------------------------------------------------------------ spec shorthand


def test_protection_accepts_single_string():
    from repro.core.spec import parse_definition

    parsed = parse_definition({"m": {"execenv": {"protection": "encrypt"}}})
    assert parsed.bundle_for("m").execenv.protection.encrypt


# ------------------------------------------------------------ scheduler media


def test_data_placement_skips_absent_pools():
    """A datacenter without DRAM still hosts hot data (falls through the
    media preference order to what exists)."""
    spec = DatacenterSpec(
        pods=1, racks_per_pod=2,
        devices_per_rack={DeviceType.CPU: 2, DeviceType.SSD: 1},
    )
    runtime = UDCRuntime(build_datacenter(spec))
    app = AppBuilder("hotonly")
    app.data("cache", size_gb=2, hot=True)
    result = runtime.run(app.build(), None)
    assert result.row("cache").device == "ssd"


# ------------------------------------------------------------ runtime misc


def test_run_until_advances_clock_past_completion():
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1,
                                                         racks_per_pod=2)))
    app = AppBuilder("quick")

    @app.task(name="t", work=1.0)
    def t(ctx):
        return 1

    runtime.run(app.build(), None, until=500.0)
    assert runtime.sim.now == 500.0


def test_object_hourly_cost_sums_live_allocations():
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1,
                                                         racks_per_pod=2)))
    app = AppBuilder("coster")
    app.data("d", size_gb=4)
    submission = runtime.submit(app.build(),
                                {"d": {"resource": "ssd"}},
                                persistent=True)
    runtime.drain()
    obj = submission.objects["d"]
    expected = 4 * DEFAULT_SPECS[DeviceType.SSD].unit_price_hour
    assert obj.hourly_cost() == pytest.approx(expected)
    runtime.decommission(submission)
    assert obj.hourly_cost() == 0.0


def test_gantt_handles_empty_and_data_only_runs():
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1,
                                                         racks_per_pod=2)))
    app = AppBuilder("data-only")
    app.data("d", size_gb=1)
    result = runtime.run(app.build(), None)
    assert ascii_gantt(result) == "(no task spans)"


# ------------------------------------------------------------ loader dedup


def test_loader_deduplicates_colocation_groups():
    from repro.appmodel.ir import compile_dag
    from repro.appmodel.loader import load_program

    app = AppBuilder("grouped")

    @app.task(name="a", work=1.0)
    def a(ctx):
        return None

    @app.task(name="b", work=1.0)
    def b(ctx):
        return None

    app.colocate("a", "b")
    loaded = load_program(compile_dag(app.build()).to_dict())
    # Both members list the group in IR; loader keeps ONE group.
    assert len(loaded.colocate_groups) == 1
    assert loaded.colocate_groups[0] == {"a", "b"}
