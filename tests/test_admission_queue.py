"""Tests for admission queueing under capacity exhaustion."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.admission import WeightedFairShare
from repro.core.runtime import UDCRuntime
from repro.core.scheduler import SchedulerError
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

#: a tiny datacenter: one rack, 2 GPU boards of 8 = 16 GPUs total
TINY = DatacenterSpec(
    pods=1, racks_per_pod=1,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 2,
                      DeviceType.DRAM: 1, DeviceType.SSD: 1},
)


def gpu_job(name, gpus=8, work=80.0):
    app = AppBuilder(name)

    @app.task(name="train", work=work, devices={DeviceType.GPU})
    def train(ctx):
        return name

    return app.build(), {"train": {"resource": {"device": "gpu",
                                                "amount": gpus}}}


def test_default_behavior_still_raises():
    runtime = UDCRuntime(build_datacenter(TINY))
    dag1, spec1 = gpu_job("first", gpus=16)
    runtime.submit(dag1, spec1, tenant="a")
    dag2, spec2 = gpu_job("second", gpus=16)
    with pytest.raises(SchedulerError):
        runtime.submit(dag2, spec2, tenant="b")


def test_queued_submission_admitted_when_capacity_frees():
    runtime = UDCRuntime(build_datacenter(TINY))
    dag1, spec1 = gpu_job("first", gpus=16, work=80.0)
    first = runtime.submit(dag1, spec1, tenant="a")
    dag2, spec2 = gpu_job("second", gpus=16, work=40.0)
    second = runtime.submit(dag2, spec2, tenant="b", queue_if_full=True)
    assert second.status == "queued"

    results = {r.tenant: r for r in runtime.drain()}
    assert second.status == "done"
    assert results["b"].outputs["train"] == "second"
    # Second waited for first's release: it started after first finished.
    assert second.submitted_at >= first.finished_at
    assert second.queue_wait_s > 0
    assert runtime.telemetry.events_of("admission-queued")
    assert runtime.telemetry.events_of("admission-admitted")


def test_queue_is_fifo():
    runtime = UDCRuntime(build_datacenter(TINY))
    dag0, spec0 = gpu_job("holder", gpus=16, work=50.0)
    runtime.submit(dag0, spec0, tenant="holder")
    queued = []
    for index in range(2):
        dag, spec = gpu_job(f"waiter{index}", gpus=16, work=10.0)
        queued.append(runtime.submit(dag, spec, tenant=f"w{index}",
                                     queue_if_full=True))
    runtime.drain()
    assert queued[0].submitted_at < queued[1].submitted_at


def test_never_fitting_submission_marked_unplaceable():
    runtime = UDCRuntime(build_datacenter(TINY))
    dag, spec = gpu_job("too-big", gpus=64)  # 64 > 16 total
    submission = runtime.submit(dag, spec, tenant="x", queue_if_full=True)
    results = runtime.drain()
    assert submission.status == "unplaceable"
    assert results[0].total_failures == 0
    assert results[0].outputs == {}
    assert runtime.telemetry.events_of("admission-unplaceable")


def test_rollback_leaves_no_partial_allocations():
    """A submission whose data places but tasks don't must roll back."""
    runtime = UDCRuntime(build_datacenter(TINY))
    app = AppBuilder("partial")

    @app.task(name="train", work=10.0, devices={DeviceType.GPU})
    def train(ctx):
        return None

    store = app.data("d", size_gb=5)
    app.writes("train", store)
    spec = {"train": {"resource": {"device": "gpu", "amount": 64}},
            "d": {"resource": "ssd"}}
    with pytest.raises(SchedulerError):
        runtime.submit(app.build(), spec, tenant="x")
    for pool in runtime.datacenter.pools:
        assert pool.total_used == 0.0
    assert not runtime._owner_of


def test_weighted_retry_order_is_deterministic():
    """Regression: retry rounds under WeightedFairShare follow stride
    order, and equal virtual times break ties by submission seq — the
    same tenant's queued entries never reorder, and the first round's
    all-tied sort is submission order, not dict/hash order."""
    runtime = UDCRuntime(
        build_datacenter(TINY),
        admission_policy=WeightedFairShare(weights={"heavy": 3.0,
                                                    "light": 1.0}),
    )
    dag, spec = gpu_job("holder", gpus=16, work=50.0)
    runtime.submit(dag, spec, tenant="holder")
    queued = {}
    for index in range(3):  # interleaved: h0, l0, h1, l1, h2, l2
        for tenant in ("heavy", "light"):
            name = f"{tenant[0]}{index}"
            dag, spec = gpu_job(name, gpus=16, work=10.0)
            queued[name] = runtime.submit(dag, spec, tenant=tenant,
                                          queue_if_full=True)
    runtime.drain()
    assert all(s.status == "done" for s in queued.values())
    order = sorted(queued, key=lambda n: queued[n].submitted_at)
    # h0 admits first (all virtual times tied at the floor, lowest seq
    # wins); thereafter heavy earns 3 admissions per light one, and
    # light's own entries stay in seq order.
    assert order == ["h0", "l0", "h1", "h2", "l1", "l2"]


def test_queued_and_running_mix_all_complete():
    runtime = UDCRuntime(build_datacenter(TINY))
    submissions = []
    for index in range(4):
        dag, spec = gpu_job(f"j{index}", gpus=12, work=20.0)
        submissions.append(
            runtime.submit(dag, spec, tenant=f"t{index}", queue_if_full=True)
        )
    results = runtime.drain()
    assert all(s.status == "done" for s in submissions)
    # Serialized by capacity: each start waits for its predecessor.
    starts = [s.submitted_at for s in submissions]
    assert starts == sorted(starts)
    assert len({round(s, 6) for s in starts}) == 4
