"""Tests for fulfillment verification (the paper's §4 attestation story)."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.core.verify import verify_run
from repro.execenv.attestation import Verifier
from repro.execenv.environments import EnvKind
from repro.hardware.topology import DatacenterSpec, build_datacenter


def secure_app():
    app = AppBuilder("secure")

    @app.task(name="worker", work=1.0)
    def worker(ctx):
        return 1

    return app.build()


DEFINITION = {
    "worker": {
        "resource": {"device": "cpu", "amount": 2},
        "execenv": {"env": "sgx-enclave", "single_tenant": True},
    }
}


def run_app(dishonest_env=None):
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2)))
    result = runtime.run(secure_app(), DEFINITION, dishonest_env=dishonest_env)
    verifier = Verifier(runtime.root_of_trust)
    report = verify_run(result.objects, result.records, verifier)
    return result, report


def test_honest_provider_passes():
    _result, report = run_app()
    assert report.ok
    assert not report.violated


def test_env_kind_attested_when_honest():
    _result, report = run_app()
    env_checks = [c for c in report.checks if c.prop == "env_kind"]
    assert env_checks and env_checks[0].status == "attested"


def test_single_tenancy_attested():
    _result, report = run_app()
    st = [c for c in report.checks if c.prop == "single_tenant"]
    assert st and st[0].status == "attested"


def test_resource_amount_only_trusted():
    """The paper's limitation: amounts cannot be attested."""
    _result, report = run_app()
    amount_checks = [c for c in report.checks if c.prop == "amount"]
    assert amount_checks
    assert amount_checks[0].status == "trusted"
    assert not amount_checks[0].user_verifiable


def test_dishonest_env_swap_detected():
    """Provider promises SGX but launches a container: the claim matches
    the promise, but the hardware quote measures the truth."""
    _result, report = run_app(dishonest_env={"worker": EnvKind.CONTAINER})
    env_checks = [c for c in report.checks if c.prop == "env_kind"]
    assert env_checks[0].status == "violated"
    assert not report.ok


def test_verification_without_verifier_trusts_claims():
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2)))
    result = runtime.run(secure_app(), DEFINITION)
    report = verify_run(result.objects, result.records, verifier=None)
    assert report.ok
    assert not report.attested  # nothing verifiable without quotes
    assert report.trusted


def test_data_aspects_reported_trusted():
    app = AppBuilder("data-app")

    @app.task(name="t", work=1.0)
    def t(ctx):
        return None

    store = app.data("d", size_gb=1)
    app.writes("t", store)
    dag = app.build()
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)))
    result = runtime.run(dag, {
        "d": {"distributed": {"replication": 2, "consistency": "sequential"}},
    })
    report = verify_run(result.objects, result.records,
                        Verifier(runtime.root_of_trust))
    rep_checks = [c for c in report.checks if c.prop == "replication"]
    con_checks = [c for c in report.checks if c.prop == "consistency"]
    assert rep_checks[0].status == "trusted"
    assert rep_checks[0].provided == "2"
    assert con_checks[0].status == "trusted"


def test_per_module_filter():
    _result, report = run_app()
    assert report.for_module("worker")
    assert not report.for_module("ghost")
