"""Tests for the economic autopilot (PR 9).

Covers the tentpole contract — budget enforcement at the front door
with adaptive ceilings, spot-tier preemption feeding the admission
retry machinery, and forecast-sized warm pools — plus the satellite
API work: the typed ``TenantSpec``/``SubmitOptions`` surface with its
deprecation shims, the warm-pool deferred-prewarm regression, and the
empty-ledger fairness contract.
"""

import warnings

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.economics.autopilot import (
    FIRM_PLAN,
    SPOT_PLAN,
    AdaptiveBudgetHook,
    BudgetEnforcer,
    PricingPlan,
    WarmPoolForecaster,
)
from repro.economics.tenants import TenantLedger
from repro.execenv.environments import EnvKind
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service import (
    BudgetExceeded,
    FifoAdmission,
    SubmitOptions,
    TenantQuota,
    TenantSpec,
    UDCService,
    submit_options,
    tenant_spec,
)

#: one rack: a full-rack GPU job owns the whole datacenter
TINY = DatacenterSpec(
    pods=1, racks_per_pod=1,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 2,
                      DeviceType.DRAM: 1, DeviceType.SSD: 1},
)


def gpu_job(name, gpus=16, work=20.0):
    app = AppBuilder(name)

    @app.task(name="train", work=work, devices={DeviceType.GPU})
    def train(ctx):
        return name

    return app.build(), {"train": {"resource": {"device": "gpu",
                                                "amount": gpus}}}


def cpu_job(name, work=2.0):
    app = AppBuilder(name)

    @app.task(name="crunch", work=work)
    def crunch(ctx):
        return name

    return app.build(), {"crunch": {"resource": "cheapest"}}


# ------------------------------------------------------- typed specs


def test_tenant_spec_builder_matches_dataclass():
    built = (tenant_spec().weight(2.0).budget(5.0).spot()
             .slo(60.0).build())
    assert built == TenantSpec(weight=2.0, budget_dollars=5.0,
                               tier="spot", slo_s=60.0)
    assert built.effective_tier == "spot"
    assert built.plan is SPOT_PLAN


def test_goal_cheapest_resolves_to_spot_tier():
    spec = tenant_spec().goal("cheapest").build()
    assert spec.tier == "firm" and spec.effective_tier == "spot"
    assert TenantSpec().effective_tier == "firm"
    assert TenantSpec().plan is FIRM_PLAN


def test_explicit_pricing_overrides_tier_plan():
    plan = PricingPlan(name="contract", multiplier=0.8)
    spec = tenant_spec().spot().pricing(plan).build()
    assert spec.plan is plan
    assert plan.billed(10.0) == pytest.approx(8.0)


def test_spec_validation_errors():
    with pytest.raises(ValueError):
        TenantSpec(tier="preemptible")
    with pytest.raises(ValueError):
        TenantSpec(goal="fanciest")
    with pytest.raises(ValueError):
        TenantSpec(budget_dollars=0.0)
    with pytest.raises(ValueError):
        TenantSpec(slo_s=-1.0)
    with pytest.raises(ValueError):
        PricingPlan(multiplier=0.0)


def test_submit_options_builder_matches_dataclass():
    built = (submit_options().lint(False).priority(3).deadline(9.0)
             .no_cache().build())
    assert built == SubmitOptions(lint=False, priority=3,
                                  deadline_s=9.0, use_cache=False)


# ------------------------------------------- deprecated spellings


def test_register_tenant_accepts_spec_and_builder():
    service = UDCService(build_datacenter(TINY))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        service.register_tenant("a", TenantSpec(weight=2.0))
        service.register_tenant("b", tenant_spec().weight(3.0))
    assert service.tenants["a"].weight == 2.0
    assert service.tenants["b"].weight == 3.0


def test_register_tenant_positional_weight_warns():
    service = UDCService(build_datacenter(TINY))
    with pytest.warns(DeprecationWarning):
        service.register_tenant("t", 2.5)
    assert service.tenants["t"].weight == 2.5
    assert service.spec_of("t").weight == 2.5


def test_register_tenant_legacy_keywords_warn_and_fold():
    service = UDCService(build_datacenter(TINY))
    quota = TenantQuota(max_in_flight=1)
    with pytest.warns(DeprecationWarning):
        service.register_tenant("t", weight=4.0, quota=quota)
    assert service.tenants["t"].weight == 4.0
    assert service.tenants["t"].quota is quota


def test_register_tenant_rejects_bad_spellings():
    service = UDCService(build_datacenter(TINY))
    with pytest.raises(TypeError):
        service.register_tenant("t", "heavy")
    with pytest.raises(TypeError):
        service.register_tenant("t", wight=2.0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(TypeError):
            service.register_tenant("t", TenantSpec(), weight=2.0)


def test_submit_legacy_keywords_warn_and_fold():
    service = UDCService(build_datacenter(TINY))
    app, spec = cpu_job("legacy")
    with pytest.warns(DeprecationWarning):
        handle = service.submit("t", app, spec, lint=False, priority=2)
    assert handle.options.lint is False
    assert handle.options.priority == 2
    service.drain()
    assert handle.status == "done"


def test_submit_rejects_bad_spellings():
    service = UDCService(build_datacenter(TINY))
    app, spec = cpu_job("bad")
    with pytest.raises(TypeError):
        service.submit("t", app, spec, options="fast")
    with pytest.raises(TypeError):
        service.submit("t", app, spec, prio=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(TypeError):
            service.submit("t", app, spec,
                           options=SubmitOptions(), priority=1)


def test_priority_orders_the_dispatch_round():
    service = UDCService(build_datacenter(TINY), policy=FifoAdmission())
    lo_app, lo_spec = gpu_job("lo", work=5.0)
    hi_app, hi_spec = gpu_job("hi", work=5.0)
    lo = service.submit("t1", lo_app, lo_spec)
    hi = service.submit("t2", hi_app, hi_spec,
                        options=submit_options().priority(5))
    service.dispatch_round()
    # Both need the whole rack; the higher-priority later submission
    # must have been placed first.
    assert hi.submission.status == "running"
    assert lo.submission.status == "queued"


def test_use_cache_false_skips_memoization():
    service = UDCService(build_datacenter(TINY))
    app, spec = cpu_job("nocache")
    service.submit("t", app, spec, inputs={"crunch": 1})
    service.drain()
    handle = service.submit("t", app, spec, inputs={"crunch": 1},
                            options=submit_options().no_cache())
    service.drain()
    assert not handle.cached
    assert service.cache_stats.hits == 0


# ------------------------------------------------------------ budgets


def test_budget_exhaustion_rejects_at_the_front_door():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("t", tenant_spec().budget(1e-9))
    app, spec = cpu_job("j0")
    service.submit("t", app, spec)
    service.drain()
    assert service.budget.spent("t") > 0
    app, spec = cpu_job("j1")
    with pytest.raises(BudgetExceeded) as err:
        service.submit("t", app, spec)
    assert err.value.tenant == "t"
    assert service.budget.rejections("t") == 1
    assert service.ledger.usage("t").rejected == 1
    assert service.check_budget_accounting() == []


def test_budget_rejection_is_catchable_as_quota():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("t", tenant_spec().budget(1e-9))
    app, spec = cpu_job("j0")
    service.submit("t", app, spec)
    service.drain()
    from repro.service import QuotaExceeded
    app, spec = cpu_job("j1")
    with pytest.raises(QuotaExceeded):
        service.submit("t", app, spec)


def test_spot_billing_discounts_the_ledger():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("s", tenant_spec().spot())
    app, spec = cpu_job("j")
    service.submit("s", app, spec)
    service.drain()
    usage = service.ledger.usage("s")
    assert usage.total_cost > 0
    assert usage.billed_cost == pytest.approx(
        SPOT_PLAN.multiplier * usage.total_cost)
    assert service.check_budget_accounting() == []


def test_enforcer_ceiling_clamps_to_budget_and_audits_drift():
    enforcer = BudgetEnforcer()
    enforcer.declare("t", 10.0)
    enforcer.set_ceiling("t", 25.0)
    assert enforcer.ceiling_of("t") == 10.0
    enforcer.set_ceiling("t", 4.0)
    enforcer.charge("t", 4.0)
    assert enforcer.admit("t") is not None
    assert enforcer.remaining("t") == pytest.approx(6.0)
    assert enforcer.check_accounting({"t": 4.0}) == []
    drift = enforcer.check_accounting({"t": 3.0})
    assert len(drift) == 1 and "t:" in drift[0]


def test_adaptive_hook_paces_and_boosts():
    enforcer = BudgetEnforcer()
    enforcer.declare("t", 100.0)
    hook = AdaptiveBudgetHook(enforcer, horizon_s=1000.0, headroom=0.25,
                              slo_target=0.95, boost=0.25)
    hook.on_round(0.0, {})
    assert hook.last_ceilings["t"] == pytest.approx(25.0)
    hook.on_round(500.0, {"t": (10, 0)})
    assert hook.last_ceilings["t"] == pytest.approx(75.0)
    # Attainment below target boosts the ceiling (but never past pace
    # at the horizon, where pace already saturates at the full budget).
    hook.on_round(500.0, {"t": (10, 2)})
    assert hook.last_ceilings["t"] == pytest.approx(75.0 * 1.25)
    hook.on_round(2000.0, {"t": (10, 2)})
    assert hook.last_ceilings["t"] == pytest.approx(100.0)


def test_autopilot_service_sets_ceilings():
    service = UDCService(build_datacenter(TINY), autopilot=True)
    service.register_tenant("t", tenant_spec().budget(10.0))
    app, spec = cpu_job("j")
    service.submit("t", app, spec)
    service.drain()
    assert service.budget_hook.last_ceilings["t"] > 0
    assert service.economics_fingerprint() is not None
    assert service.check_budget_accounting() == []


def test_economics_fingerprint_inert_without_budgets():
    service = UDCService(build_datacenter(TINY))
    app, spec = cpu_job("j")
    service.submit("t", app, spec)
    service.drain()
    # No budgets, no autopilot: old replay journals must keep verifying
    # byte-identically, so the fingerprint contributes nothing.
    assert service.economics_fingerprint() is None


# --------------------------------------------------------- preemption


def test_firm_submission_preempts_running_spot_work():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("spot", tenant_spec().spot())
    service.register_tenant("firm", TenantSpec())
    s_app, s_spec = gpu_job("spotjob", work=50.0)
    spot = service.submit("spot", s_app, s_spec)
    service.dispatch_round()
    assert spot.submission.status == "running"

    f_app, f_spec = gpu_job("firmjob", work=5.0)
    firm = service.submit("firm", f_app, f_spec)
    service.dispatch_round()
    assert service.preemptions == 1
    assert firm.submission.status == "running"
    assert spot.submission.status == "queued"
    assert spot.submission.preemptions == 1
    assert service.telemetry.metrics.counter(
        "udc_preemptions_total").value == 1
    assert service.telemetry.events_of("preempted")

    # The victim re-runs through the normal retry machinery and still
    # completes; nobody's work is lost, and the books stay balanced.
    service.drain()
    assert firm.status == "done" and spot.status == "done"
    assert service.check_budget_accounting() == []


def test_spot_never_preempts_spot():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("s1", tenant_spec().spot())
    service.register_tenant("s2", tenant_spec().goal("cheapest"))
    a1, d1 = gpu_job("one", work=50.0)
    a2, d2 = gpu_job("two", work=5.0)
    first = service.submit("s1", a1, d1)
    service.dispatch_round()
    second = service.submit("s2", a2, d2)
    service.dispatch_round()
    assert service.preemptions == 0
    assert first.submission.status == "running"
    assert second.submission.status == "queued"


def test_preemption_storm_keeps_cross_tier_fairness():
    """Satellite (d): under sustained firm-vs-spot contention every
    preempted submission is re-queued and completes, so completions stay
    even across tiers (Jain >= 0.9)."""
    service = UDCService(build_datacenter(TINY))
    for name in ("firm-a", "firm-b"):
        service.register_tenant(name, TenantSpec())
    for name in ("spot-a", "spot-b"):
        service.register_tenant(name, tenant_spec().spot())
    jobs = 3
    for round_index in range(jobs):
        for name in ("spot-a", "spot-b", "firm-a", "firm-b"):
            app, spec = gpu_job(f"{name}-{round_index}", work=10.0)
            service.submit(name, app, spec)
        service.dispatch_round()
    service.drain()
    assert service.preemptions > 0
    for usage in service.rollup():
        assert usage.completed == jobs
    assert service.fairness_index("completed") >= 0.9
    assert service.check_budget_accounting() == []


def test_preemption_is_deterministic():
    def run():
        service = UDCService(build_datacenter(TINY), autopilot=True)
        service.register_tenant("spot", tenant_spec().spot().budget(5.0))
        service.register_tenant("firm", tenant_spec().budget(5.0))
        for index in range(3):
            s_app, s_spec = gpu_job(f"s{index}", work=20.0)
            f_app, f_spec = gpu_job(f"f{index}", work=5.0)
            service.submit("spot", s_app, s_spec)
            service.dispatch_round()
            service.submit("firm", f_app, f_spec)
            service.dispatch_round()
        service.drain()
        return (service.economics_fingerprint(),
                [(u.tenant, u.completed, repr(u.billed_cost))
                 for u in service.rollup()])

    assert run() == run()


# ------------------------------------------------------- forecasting


def test_forecaster_learns_the_seasonal_pattern():
    forecaster = WarmPoolForecaster(window_s=10.0, day_s=40.0,
                                    safety=1.0)
    pattern = [0, 3, 6, 1]
    for day in range(3):
        for slot, demand in enumerate(pattern):
            now = (day * 4 + slot) * 10.0
            forecaster.roll(now)
            for _ in range(demand):
                forecaster.observe(EnvKind.CONTAINER)
    forecaster.roll(120.0)  # day 3 slot 0
    assert forecaster.target_for(EnvKind.CONTAINER) == 0
    forecaster.roll(130.0)  # slot 1: seasonal says 3
    assert forecaster.target_for(EnvKind.CONTAINER) == 3
    forecaster.roll(140.0)
    assert forecaster.target_for(EnvKind.CONTAINER) == 6


def test_forecaster_folds_skipped_windows_and_clamps():
    forecaster = WarmPoolForecaster(window_s=10.0, day_s=20.0,
                                    safety=2.0, min_depth=1, max_depth=4)
    forecaster.roll(0.0)
    for _ in range(8):
        forecaster.observe(EnvKind.VM, True)
    forecaster.roll(50.0)  # folds the burst, then three idle windows
    state = forecaster.state()
    assert state["slot"] == 5
    assert state["pending"] == {}
    # demand 8 * safety 2 = 16, clamped to max_depth
    level = state["level"]["vm|1"]
    assert 0 < level < 8
    assert 1 <= forecaster.target_for(EnvKind.VM, True) <= 4
    assert forecaster.target_for(EnvKind.SEV_VM, False) == 1  # min_depth


def test_forecaster_state_is_canonical():
    forecaster = WarmPoolForecaster(window_s=10.0)
    forecaster.observe(EnvKind.VM)
    forecaster.observe(EnvKind.CONTAINER)
    state = forecaster.state()
    assert list(state["pending"]) == sorted(state["pending"])
    assert forecaster.known_keys() == ["container|0", "vm|0"]


def test_service_autopilot_resizes_warm_pool():
    service = UDCService(build_datacenter(TINY), autopilot=True,
                         warm_pool=WarmPool(enabled=True), prewarm=True)
    assert service.forecaster is not None
    assert service.runtime.warm_pool.observer is not None
    app, spec = cpu_job("warmed")
    service.submit("t", app, spec)
    service.drain()
    # Demand flowed through the pool's observer into the forecaster.
    assert service.forecaster.state()["pending"] or \
        service.forecaster.known_keys()


# --------------------------------------- warm-pool deferred regression


def test_restore_replays_deferred_prewarms_exactly_once():
    """Satellite (b): prewarms banked during an outage must land on the
    shelf exactly once at restore() — and a refill() racing right after
    must not re-stock them (the old code double-counted the deferral
    against the refill target)."""
    pool = WarmPool(target_depth=2)
    key = (EnvKind.CONTAINER, False)
    pool.prewarm(*key, count=2)
    assert pool.depth(*key) == 2
    pool.exhaust()
    pool.prewarm(*key, count=3)  # banked, not stocked
    assert pool.depth(*key) == 0
    assert pool.stats.prewarms_deferred == 3
    replayed = pool.restore()
    assert replayed == 3
    assert pool.depth(*key) == 3
    pool.refill()  # the race: must not top past the replayed bank
    assert pool.depth(*key) == 3
    assert pool.stats.prewarmed == 5
    # The bank is spent: another restore replays nothing.
    assert pool.restore() == 0
    assert pool.depth(*key) == 3


def test_refill_respects_forecast_targets():
    pool = WarmPool(target_depth=2)
    key = (EnvKind.CONTAINER, False)
    pool.set_target(*key, 5)
    added = pool.refill()
    assert added == 5 and pool.depth(*key) == 5
    pool.set_target(*key, None)
    assert pool.target_for(*key) == 2


# ------------------------------------------------------ ledger contract


def test_fairness_of_empty_ledger_is_one():
    ledger = TenantLedger()
    assert ledger.fairness() == 1.0
    assert ledger.fairness(metric="billed_cost") == 1.0


def test_fairness_rejects_unknown_metric():
    ledger = TenantLedger()
    with pytest.raises(ValueError):
        ledger.fairness(metric="vibes")
    with pytest.raises(ValueError):
        ledger.fairness(metric="tenant")


def test_fairness_read_never_materializes_tenants():
    ledger = TenantLedger()
    ledger.record_submission("real")
    before = [u.tenant for u in ledger.rollup()]
    ledger.fairness(metric="completed", tenants=["real", "ghost"])
    assert [u.tenant for u in ledger.rollup()] == before == ["real"]
