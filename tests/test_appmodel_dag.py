"""Tests for modules, the DAG, and the annotation API."""

import pytest

from repro.appmodel.annotations import AppBuilder, data, task
from repro.appmodel.dag import DagValidationError, ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.hardware.devices import DeviceType


# ------------------------------------------------------------ modules


def test_task_module_validation():
    with pytest.raises(ValueError):
        TaskModule(name="t", work=0)
    with pytest.raises(ValueError):
        TaskModule(name="t", device_candidates=frozenset())
    with pytest.raises(ValueError, match="compute"):
        TaskModule(name="t", device_candidates=frozenset({DeviceType.SSD}))


def test_execution_seconds_scaling():
    module = TaskModule(name="t", work=40.0)
    slow = module.execution_seconds(DeviceType.CPU, 1.0, 1.0)
    fast = module.execution_seconds(DeviceType.CPU, 4.0, 1.0)
    assert slow == 40.0 and fast == 10.0


def test_execution_respects_parallelism_cap():
    module = TaskModule(name="t", work=40.0, max_parallelism=2)
    capped = module.execution_seconds(DeviceType.CPU, 8.0, 1.0)
    assert capped == module.execution_seconds(DeviceType.CPU, 2.0, 1.0)
    assert module.usable_amount(8.0) == 2.0


def test_execution_wrong_device_rejected():
    module = TaskModule(name="t", device_candidates=frozenset({DeviceType.CPU}))
    with pytest.raises(ValueError):
        module.execution_seconds(DeviceType.GPU, 1.0, 40.0)


def test_code_hash_stable_per_function():
    def f(ctx):
        return 1

    a = task(name="a")(f)
    b = task(name="b")(f)
    assert a.code_hash == b.code_hash  # same bytecode
    assert a.code_hash


def test_data_module_validation():
    with pytest.raises(ValueError):
        DataModule(name="d", size_gb=0)
    with pytest.raises(ValueError):
        DataModule(name="d", record_bytes=0)
    assert DataModule(name="d", size_gb=2).size_bytes == int(2e9)


# ------------------------------------------------------------ DAG structure


def build_diamond():
    dag = ModuleDAG(name="diamond")
    for name in "abcd":
        dag.add_module(TaskModule(name=name))
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


def test_duplicate_module_rejected():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="a"))
    with pytest.raises(DagValidationError):
        dag.add_module(TaskModule(name="a"))


def test_unknown_edge_endpoint_rejected():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="a"))
    dag.add_edge("a", "ghost")
    with pytest.raises(DagValidationError, match="unknown"):
        dag.validate()


def test_task_cycle_rejected():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="a"))
    dag.add_module(TaskModule(name="b"))
    dag.add_edge("a", "b")
    dag.add_edge("b", "a")
    with pytest.raises(DagValidationError, match="cycle"):
        dag.validate()


def test_self_loop_rejected():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="a"))
    dag.add_edge("a", "a")
    with pytest.raises(DagValidationError, match="self-loop"):
        dag.validate()


def test_write_back_through_data_is_legal():
    """Figure 2's A4 -> S1 -> A3 -> A4 pattern must validate."""
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="reader"))
    dag.add_module(TaskModule(name="writer"))
    dag.add_module(DataModule(name="state"))
    dag.add_edge("state", "reader")
    dag.add_edge("reader", "writer")
    dag.add_edge("writer", "state")
    dag.validate()
    graph = dag.effective_task_graph()
    assert list(graph.predecessors("writer")) == ["reader"]
    assert list(graph.predecessors("reader")) == []  # no cycle-closing edge


def test_stages_of_diamond():
    assert build_diamond().task_stages() == [["a"], ["b", "c"], ["d"]]


def test_data_induced_stage_ordering():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="producer"))
    dag.add_module(TaskModule(name="consumer"))
    dag.add_module(DataModule(name="buffer"))
    dag.add_edge("producer", "buffer")
    dag.add_edge("buffer", "consumer")
    assert dag.task_stages() == [["producer"], ["consumer"]]


def test_colocate_validation():
    dag = build_diamond()
    with pytest.raises(DagValidationError):
        dag.colocate("a")  # needs >= 2
    dag.colocate("a", "ghost")
    with pytest.raises(DagValidationError, match="unknown"):
        dag.validate()


def test_colocate_data_module_rejected():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="a"))
    dag.add_module(DataModule(name="d"))
    dag.colocate("a", "d")
    with pytest.raises(DagValidationError, match="only contain tasks"):
        dag.validate()


def test_colocate_incompatible_devices_rejected():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="cpu_task",
                              device_candidates=frozenset({DeviceType.CPU})))
    dag.add_module(TaskModule(name="gpu_task",
                              device_candidates=frozenset({DeviceType.GPU})))
    dag.colocate("cpu_task", "gpu_task")
    with pytest.raises(DagValidationError, match="no common device"):
        dag.validate()


def test_merged_colocation_groups():
    dag = ModuleDAG(name="x")
    for name in "abc":
        dag.add_module(TaskModule(name=name))
    dag.colocate("a", "b")
    dag.colocate("b", "c")
    merged = dag.merged_colocation_groups()
    assert merged == [{"a", "b", "c"}]


def test_affinity_validation():
    dag = ModuleDAG(name="x")
    dag.add_module(TaskModule(name="t"))
    dag.add_module(DataModule(name="d"))
    dag.affine("d", "t")  # wrong direction
    with pytest.raises(DagValidationError, match="must be a task"):
        dag.validate()


def test_predecessors_successors():
    dag = build_diamond()
    assert sorted(dag.predecessors("d")) == ["b", "c"]
    assert sorted(dag.successors("a")) == ["b", "c"]


# ------------------------------------------------------------ builder API


def test_builder_end_to_end():
    app = AppBuilder("demo")

    @app.task(work=2.0)
    def step1(ctx):
        return 1

    @app.task(work=3.0, devices={DeviceType.GPU})
    def step2(ctx):
        return 2

    store = app.data("store", size_gb=5, hot=True)
    app.flows(step1, step2, bytes_=1000)
    app.writes(step2, store)
    dag = app.build()
    assert set(dag.modules) == {"step1", "step2", "store"}
    assert dag.task("step2").device_candidates == frozenset({DeviceType.GPU})
    assert ("step2", "store") in dag.affinities


def test_builder_reads_creates_edge_and_affinity():
    app = AppBuilder("demo")

    @app.task()
    def consumer(ctx):
        return None

    source = app.data("source")
    app.reads(consumer, source, bytes_per_run=4096)
    dag = app.build()
    assert dag.predecessors("consumer") == ["source"]
    assert dag.affinities[("consumer", "source")] == 4096


def test_standalone_decorators():
    module = task(work=5.0, max_parallelism=3)(lambda ctx: None)
    assert module.work == 5.0 and module.max_parallelism == 3
    d = data("d", size_gb=1)
    assert d.name == "d"
