"""Tests for telemetry, the fine tuner, and the dry-run profiler."""

import pytest

from repro.appmodel.module import TaskModule
from repro.core.profiler import DryRunProfiler
from repro.core.telemetry import Telemetry
from repro.core.tuner import FineTuner
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter


# ------------------------------------------------------------ telemetry


def test_sample_and_mean():
    telemetry = Telemetry()
    telemetry.sample(0.0, "m", 0.5, 4.0)
    telemetry.sample(1.0, "m", 0.7, 4.0)
    assert telemetry.mean_utilization("m") == pytest.approx(0.6)
    assert telemetry.mean_utilization("other") is None


def test_sample_validation():
    telemetry = Telemetry()
    with pytest.raises(ValueError):
        telemetry.sample(0.0, "m", 1.5, 4.0)


def test_events_and_counts():
    telemetry = Telemetry()
    telemetry.event(0.0, "m", "migrate")
    telemetry.event(1.0, "m", "migrate")
    telemetry.event(2.0, "n", "failure")
    assert telemetry.counts() == {"migrate": 2, "failure": 1}
    assert len(telemetry.events_of("migrate")) == 2


def test_lazy_detail_resolved_at_record_time():
    telemetry = Telemetry()
    telemetry.event(0.0, "m", "place-task", lambda: f"cores={2 + 2}")
    assert telemetry.events[0].detail == "cores=4"


def test_disabled_telemetry_discards_and_never_formats():
    calls = []

    def expensive_detail():
        calls.append(1)
        return "should never be built"

    telemetry = Telemetry(enabled=False)
    telemetry.event(0.0, "m", "place-task", expensive_detail)
    telemetry.sample(0.0, "m", 0.5, 4.0)
    # Out-of-range samples are not even validated when disabled: the
    # enabled guard is the first thing on the hot path.
    telemetry.sample(0.0, "m", 99.0, 4.0)
    assert telemetry.events == []
    assert telemetry.samples == []
    assert calls == []


# ------------------------------------------------------------ tuner


def make_tuner(enabled=True):
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2))
    telemetry = Telemetry()
    return dc, telemetry, FineTuner(datacenter=dc, telemetry=telemetry,
                                    enabled=enabled)


def test_shrink_on_low_utilization():
    dc, telemetry, tuner = make_tuner()
    alloc = dc.pool(DeviceType.CPU).allocate(8, "t")
    telemetry.sample(0.0, "m", 0.25, 8.0)  # only 2 of 8 cores busy
    action = tuner.review_allocation("m", alloc, declared_amount=8)
    assert action is not None and action.kind == "shrink"
    assert alloc.amount == 2.0
    assert tuner.total_units_saved() == pytest.approx(6.0)


def test_shrink_snaps_to_grain():
    dc, telemetry, tuner = make_tuner()
    alloc = dc.pool(DeviceType.CPU).allocate(1, "t")
    telemetry.sample(0.0, "m", 0.1, 1.0)   # wants 0.1 core
    action = tuner.review_allocation("m", alloc, declared_amount=1)
    assert alloc.amount == 0.25             # CPU grain


def test_grow_when_pinned_at_ceiling():
    dc, telemetry, tuner = make_tuner()
    alloc = dc.pool(DeviceType.CPU).allocate(2, "t")
    telemetry.sample(0.0, "m", 1.0, 2.0)
    action = tuner.review_allocation("m", alloc, declared_amount=8)
    assert action is not None and action.kind == "grow"
    assert alloc.amount == 4.0              # doubles toward declared


def test_no_action_inside_band():
    dc, telemetry, tuner = make_tuner()
    alloc = dc.pool(DeviceType.CPU).allocate(4, "t")
    telemetry.sample(0.0, "m", 0.8, 4.0)
    assert tuner.review_allocation("m", alloc, declared_amount=4) is None


def test_no_action_without_samples():
    dc, telemetry, tuner = make_tuner()
    alloc = dc.pool(DeviceType.CPU).allocate(4, "t")
    assert tuner.review_allocation("m", alloc, declared_amount=4) is None


def test_disabled_tuner_never_acts():
    dc, telemetry, tuner = make_tuner(enabled=False)
    alloc = dc.pool(DeviceType.CPU).allocate(8, "t")
    telemetry.sample(0.0, "m", 0.1, 8.0)
    assert tuner.review_allocation("m", alloc, declared_amount=8) is None
    assert alloc.amount == 8


def test_migrate_moves_to_healthy_device():
    dc, telemetry, tuner = make_tuner()
    pool = dc.pool(DeviceType.CPU)
    alloc = pool.allocate(4, "t")
    alloc.device.failed = True
    replacement = tuner.migrate("m", alloc, "t")
    assert replacement is not None
    assert not replacement.device.failed
    assert replacement.amount == 4
    assert alloc.released


def test_migrate_exhausted_pool_returns_none():
    dc, telemetry, tuner = make_tuner()
    pool = dc.pool(DeviceType.CPU)
    alloc = pool.allocate(4, "t")
    for device in pool.devices:
        device.failed = True
    assert tuner.migrate("m", alloc, "t") is None


# ------------------------------------------------------------ profiler


def test_profile_covers_candidates_and_amounts():
    task = TaskModule(name="t", work=40.0, device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    result = DryRunProfiler().profile(task)
    types = {e.device_type for e in result.entries}
    assert types == {DeviceType.CPU, DeviceType.GPU}
    assert len(result.entries) == 6  # 2 types x 3 amounts


def test_fastest_is_gpu_cheapest_is_cpu():
    task = TaskModule(name="t", work=40.0, device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    result = DryRunProfiler().profile(task)
    assert result.fastest().device_type == DeviceType.GPU
    assert result.cheapest().device_type == DeviceType.CPU


def test_profile_exposes_overallocation():
    task = TaskModule(name="t", work=40.0, max_parallelism=1)
    result = DryRunProfiler().profile(task, amounts=[1.0, 4.0])
    one = next(e for e in result.entries if e.amount == 1.0)
    four = next(e for e in result.entries if e.amount == 4.0)
    assert one.wall_seconds == four.wall_seconds   # no speedup
    assert four.cost > one.cost                     # but more expensive
    assert four.utilization == pytest.approx(0.25)


def test_recommend_meets_latency_target():
    task = TaskModule(name="t", work=40.0, device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    profiler = DryRunProfiler()
    # 40 work on CPU@1 = 40 s; on GPU@1 = 1 s.
    aspect = profiler.recommend(task, latency_target_s=2.0)
    assert aspect.device == DeviceType.GPU
    relaxed = profiler.recommend(task, latency_target_s=3600.0)
    assert relaxed.device == DeviceType.CPU


def test_recommend_without_target_is_cheapest():
    task = TaskModule(name="t", work=40.0, device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    aspect = DryRunProfiler().recommend(task)
    assert aspect.device == DeviceType.CPU


def test_unprofilable_task_rejected():
    # FPGA spec exists, so fabricate a task with no rate by passing a
    # custom spec table with zero-rate entries.
    from repro.hardware.devices import DEFAULT_SPECS, DeviceSpec

    task = TaskModule(name="t", device_candidates=frozenset({DeviceType.CPU}))
    crippled = dict(DEFAULT_SPECS)
    crippled[DeviceType.CPU] = DeviceSpec(
        DeviceType.CPU, capacity=32, compute_rate=0.0, min_grain=0.25
    )
    with pytest.raises(ValueError, match="no profilable"):
        DryRunProfiler(specs=crippled).profile(task)
