"""The public API snapshot stays in lockstep with ``repro.__all__``."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_api_surface_matches_snapshot():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_api_surface.py")],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, (
        f"public API surface drifted from docs/api-surface.txt:\n"
        f"{proc.stdout}{proc.stderr}"
    )


def test_every_public_name_importable():
    import repro

    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert not missing, f"__all__ names missing from package: {missing}"
