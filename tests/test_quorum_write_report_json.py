"""Tests for W-quorum writes and RunResult JSON export."""

import json

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.distsem.consistency import ConsistencyLevel
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import ReplicatedStore
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter

CLIENT = Location(0, 0, 99)


def make_store(factor=3):
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
    placement = ReplicaPlacer(dc.pool(DeviceType.SSD)).place(
        10, "t", ReplicationPolicy(factor=factor))
    return dc, ReplicatedStore(dc.sim, dc.fabric, "S", placement,
                               ConsistencyLevel.EVENTUAL)


def run(dc, generator):
    process = dc.sim.process(generator)
    return dc.sim.run(until_event=process)


# ------------------------------------------------------------ write quorum


def test_write_quorum_acks_at_w():
    dc, store = make_store()
    stats = run(dc, store.write_quorum(CLIENT, "k", b"v", 512, quorum=2))
    assert stats.op == "write-quorum"
    assert stats.served_by == "quorum-2"
    applied = sum(1 for r in store.replicas if "k" in r.data)
    assert applied >= 2
    dc.sim.run()  # stragglers finish in the background
    assert all("k" in r.data for r in store.replicas)


def test_w1_faster_than_w3():
    dc1, store1 = make_store()
    w1 = run(dc1, store1.write_quorum(CLIENT, "k", b"v", 512, quorum=1))
    dc3, store3 = make_store()
    w3 = run(dc3, store3.write_quorum(CLIENT, "k", b"v", 512, quorum=3))
    assert w1.latency_s < w3.latency_s


def test_r_plus_w_over_n_reads_latest():
    """W=2, R=2, N=3: a quorum read after a quorum write sees the write."""
    dc, store = make_store(factor=3)

    def scenario():
        yield dc.sim.process(
            store.write_quorum(CLIENT, "k", b"newest", 512, quorum=2))
        value, stats = yield dc.sim.process(
            store.read_quorum(CLIENT, "k", quorum=2))
        return value, stats

    value, stats = run(dc, scenario())
    assert value == b"newest"


def test_write_quorum_validation():
    dc, store = make_store()
    with pytest.raises(ValueError):
        list(store.write_quorum(CLIENT, "k", b"v", 512, quorum=0))
    with pytest.raises(ValueError):
        list(store.write_quorum(CLIENT, "k", b"v", 512, quorum=9))


def test_write_quorum_default_is_majority():
    dc, store = make_store(factor=3)
    stats = run(dc, store.write_quorum(CLIENT, "k", b"v", 512))
    assert stats.served_by == "quorum-2"


# ------------------------------------------------------------ report JSON


def test_run_result_json_roundtrip():
    app = AppBuilder("jsonable")

    @app.task(name="t", work=2.0)
    def t(ctx):
        return 1

    store = app.data("d", size_gb=1)
    app.writes("t", store)
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1,
                                                         racks_per_pod=4)))
    result = runtime.run(
        app.build(),
        {"d": {"distributed": {"replication": 2}}},
    )
    payload = json.loads(json.dumps(result.to_json_dict()))
    assert payload["app"] == "jsonable"
    assert payload["total_failures"] == 0
    assert payload["makespan_s"] > 0
    modules = {m["name"]: m for m in payload["modules"]}
    assert modules["d"]["replication"] == 2
    assert modules["t"]["kind"] == "task"
    assert isinstance(payload["conflicts_resolved"], dict)
