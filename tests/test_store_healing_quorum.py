"""Tests for quorum reads, read-repair, replica healing, and pool
defragmentation."""

import pytest

from repro.core.telemetry import Telemetry
from repro.core.tuner import FineTuner
from repro.distsem.consistency import ConsistencyLevel
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import ReplicatedStore
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter

CLIENT = Location(0, 0, 99)


def make_store(factor=3, racks=4, consistency=ConsistencyLevel.EVENTUAL):
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=racks))
    placer = ReplicaPlacer(dc.pool(DeviceType.SSD))
    placement = placer.place(10, "t", ReplicationPolicy(factor=factor))
    store = ReplicatedStore(dc.sim, dc.fabric, "S", placement, consistency)
    return dc, placer, store


def run(dc, generator):
    process = dc.sim.process(generator)
    return dc.sim.run(until_event=process)


def _write_without_propagation(dc, store, key, value):
    """Apply a write at one replica only (manufactures staleness)."""
    version = store._next_version(key)
    store.replicas[0].apply(key, version, value)
    return version


# ------------------------------------------------------------ quorum reads


def test_quorum_read_returns_freshest_in_quorum():
    dc, _placer, store = make_store()
    _write_without_propagation(dc, store, "k", b"v1")

    value, stats = run(dc, store.read_quorum(CLIENT, "k", quorum=3))
    assert value == b"v1"
    assert stats.staleness == 0
    assert stats.op == "read-quorum"


def test_quorum_read_costs_scale_with_quorum():
    dc1, _p1, store1 = make_store()
    run(dc1, store1.write(CLIENT, "k", b"v", 512))
    _value, one = run(dc1, store1.read_quorum(CLIENT, "k", quorum=1))
    dc3, _p3, store3 = make_store()
    run(dc3, store3.write(CLIENT, "k", b"v", 512))
    _value, three = run(dc3, store3.read_quorum(CLIENT, "k", quorum=3))
    assert three.messages > one.messages


def test_quorum_read_repairs_stale_members():
    dc, _placer, store = make_store()
    _write_without_propagation(dc, store, "k", b"fresh")
    assert all("k" not in b.data for b in store.backups)

    value, _stats = run(dc, store.read_quorum(CLIENT, "k", quorum=3))
    assert value == b"fresh"
    dc.sim.run()  # drain repair traffic
    for replica in store.replicas:
        assert replica.data["k"][1] == b"fresh"


def test_quorum_validation():
    dc, _placer, store = make_store()
    with pytest.raises(ValueError):
        list(store.read_quorum(CLIENT, "k", quorum=0))
    with pytest.raises(ValueError):
        list(store.read_quorum(CLIENT, "k", quorum=9))


def test_quorum_read_missing_key_returns_none():
    dc, _placer, store = make_store()
    value, stats = run(dc, store.read_quorum(CLIENT, "ghost"))
    assert value is None
    assert stats.staleness == 0


# ------------------------------------------------------------ healing


def test_heal_rebuilds_failed_replica():
    dc, placer, store = make_store(factor=3)
    run(dc, store.write(CLIENT, "k", b"precious", 512))
    dc.sim.run()
    casualty = store.replicas[1]
    casualty.device.failed = True

    rebuilt = store.heal(placer)
    assert rebuilt == 1
    dc.sim.run()  # state transfer
    assert len(store.live_replicas()) == 3
    replacement = store.replicas[1]
    assert replacement.device is not casualty.device
    assert replacement.data["k"][1] == b"precious"


def test_heal_prefers_new_rack():
    dc, placer, store = make_store(factor=2, racks=4)
    store.replicas[1].device.failed = True
    store.heal(placer)
    survivor_rack = (store.replicas[0].location.pod,
                     store.replicas[0].location.rack)
    new_rack = (store.replicas[1].location.pod,
                store.replicas[1].location.rack)
    assert new_rack != survivor_rack


def test_heal_noop_without_failures():
    dc, placer, store = make_store()
    assert store.heal(placer) == 0


def test_heal_with_no_survivors_raises():
    dc, placer, store = make_store(factor=1)
    store.replicas[0].device.failed = True
    with pytest.raises(RuntimeError, match="no surviving"):
        store.heal(placer)


def test_healed_store_serves_reads():
    dc, placer, store = make_store(factor=2,
                                   consistency=ConsistencyLevel.SEQUENTIAL)
    run(dc, store.write(CLIENT, "k", b"v", 512))
    store.primary.device.failed = True
    store.heal(placer)
    dc.sim.run()
    value, _stats = run(dc, store.read(CLIENT, "k"))
    assert value == b"v"


# ------------------------------------------------------------ defragmentation


def make_tuner():
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2))
    return dc, FineTuner(datacenter=dc, telemetry=Telemetry())


def test_defragment_drains_emptiest_devices():
    dc, tuner = make_tuner()
    pool = dc.pool(DeviceType.CPU)
    # Scatter small allocations across many devices.
    allocations = []
    for index in range(6):
        allocations.append(pool.allocate(2, "t", device=pool.devices[index]))
    used_devices_before = sum(1 for d in pool.devices if d.used > 0)
    drained = tuner.defragment(DeviceType.CPU)
    used_devices_after = sum(1 for d in pool.devices if d.used > 0)
    assert drained > 0
    assert used_devices_after < used_devices_before
    assert pool.total_used == 12  # nothing lost
    for allocation in allocations:
        assert allocation.alloc_id in allocation.device.allocations


def test_defragment_never_moves_single_tenant():
    dc, tuner = make_tuner()
    pool = dc.pool(DeviceType.CPU)
    pinned = pool.allocate(1, "alice", single_tenant=True,
                           device=pool.devices[0])
    pool.allocate(16, "bob", device=pool.devices[1])
    device_before = pinned.device
    tuner.defragment(DeviceType.CPU)
    assert pinned.device is device_before


def test_defragment_disabled_tuner_noop():
    dc, tuner = make_tuner()
    tuner.enabled = False
    pool = dc.pool(DeviceType.CPU)
    pool.allocate(1, "t", device=pool.devices[0])
    pool.allocate(1, "t", device=pool.devices[1])
    assert tuner.defragment(DeviceType.CPU) == 0


def test_defragment_accounting_consistent():
    """After defrag, device-level sums still match the pool's view."""
    dc, tuner = make_tuner()
    pool = dc.pool(DeviceType.CPU)
    for index in range(5):
        pool.allocate(3, f"tenant-{index % 2}",
                      device=pool.devices[index % 4])
    before = pool.total_used
    tuner.defragment(DeviceType.CPU)
    assert pool.total_used == before
    for device in pool.devices:
        assert device.used == sum(device.allocations.values())
        assert device.used <= device.spec.capacity + 1e-9