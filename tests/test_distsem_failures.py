"""Tests for checkpointing, failure injection, recovery, and ordering."""

import pytest

from repro.distsem.checkpoint import CheckpointStore
from repro.distsem.failures import Failure, FailureInjector
from repro.distsem.network_order import (
    OrderingScheme,
    run_ordered_writes,
)
from repro.distsem.recovery import RecoveryStrategy, plan_recovery
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.simulator.engine import Interrupt


def make_ckpt_store():
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2))
    device = dc.pool(DeviceType.SSD).devices[0]
    return dc, CheckpointStore(dc.sim, dc.fabric, device)


SOURCE = Location(0, 0, 42)


def run(dc, generator):
    process = dc.sim.process(generator)
    return dc.sim.run(until_event=process)


# ------------------------------------------------------------ checkpoints


def test_checkpoint_then_latest():
    dc, store = make_ckpt_store()
    snap = run(dc, store.checkpoint("A2", SOURCE, 0.5, 1 << 20))
    assert store.latest("A2") is snap
    assert snap.progress == 0.5
    assert store.count("A2") == 1
    assert store.bytes_written == 1 << 20


def test_checkpoint_costs_time():
    dc, store = make_ckpt_store()
    run(dc, store.checkpoint("A2", SOURCE, 0.25, 10 << 20))
    assert dc.sim.now > 0
    assert store.checkpoint_seconds > 0


def test_latest_returns_most_recent():
    dc, store = make_ckpt_store()

    def scenario():
        yield dc.sim.process(store.checkpoint("A2", SOURCE, 0.25, 1000))
        yield dc.sim.process(store.checkpoint("A2", SOURCE, 0.75, 1000))

    run(dc, scenario())
    assert store.latest("A2").progress == 0.75


def test_restore_returns_snapshot_and_costs_time():
    dc, store = make_ckpt_store()
    run(dc, store.checkpoint("A2", SOURCE, 0.5, 1 << 20))
    before = dc.sim.now
    snap = run(dc, store.restore("A2", SOURCE))
    assert snap.progress == 0.5
    assert dc.sim.now > before


def test_restore_without_snapshot_returns_none():
    dc, store = make_ckpt_store()
    assert run(dc, store.restore("never", SOURCE)) is None


def test_restore_from_failed_device_degrades_to_none():
    """A failed backing device must not crash the recovery path: restore
    answers None (re-execute from scratch), counts the miss, and the
    snapshot is still usable once the device is repaired."""
    dc, store = make_ckpt_store()
    run(dc, store.checkpoint("A2", SOURCE, 0.5, 1000))
    store.device.failed = True
    assert run(dc, store.restore("A2", SOURCE)) is None
    assert store.stats.restore_failures == 1
    assert store.stats.restores == 0
    store.device.failed = False
    snap = run(dc, store.restore("A2", SOURCE))
    assert snap.progress == 0.5
    assert store.stats.restores == 1


def test_restore_degradation_reruns_task_from_scratch():
    """End to end: a checkpointing task whose restore device has failed
    re-executes from scratch (telemetry notes the degradation) instead
    of the run dying inside its own recovery."""
    from repro.appmodel.annotations import AppBuilder
    from repro.core.runtime import UDCRuntime

    app = AppBuilder("ckpt-degrade")

    @app.task(name="job", work=20.0)
    def job(ctx):
        return "done"

    dag = app.build()
    definition = {"job": {"resource": {"device": "cpu", "amount": 1},
                          "distributed": {"checkpoint": True}}}
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2))
    runtime = UDCRuntime(dc)
    submission = runtime.submit(dag, definition, tenant="t")
    # Fail the task mid-run with every storage device (the checkpoint
    # store's backing device among them) already down, so the recovery's
    # restore finds the device failed.
    runtime.injector.fail_at(10.0, "fd:job")

    def fail_storage():
        yield dc.sim.timeout(9.0)
        for device_type in (DeviceType.SSD, DeviceType.NVM, DeviceType.HDD):
            if device_type in dc.pools:
                for device in dc.pool(device_type).devices:
                    device.failed = True

    dc.sim.process(fail_storage())
    runtime.drain()
    result = submission.result
    assert result is not None
    assert result.outputs.get("job") == "done"
    degraded = [e for e in runtime.telemetry.events
                if e.kind == "restore-degraded"]
    assert degraded, "expected a restore-degraded telemetry event"


def test_invalid_progress_rejected():
    dc, store = make_ckpt_store()
    with pytest.raises(ValueError):
        list(store.checkpoint("A2", SOURCE, 1.5, 1000))


# ------------------------------------------------------------ recovery planning


def test_plan_rerun():
    outcome = plan_recovery(RecoveryStrategy.RERUN, "A2", None)
    assert outcome.resume_progress == 0.0
    assert outcome.strategy == RecoveryStrategy.RERUN


def test_plan_checkpoint_restore_uses_latest():
    dc, store = make_ckpt_store()
    run(dc, store.checkpoint("A2", SOURCE, 0.5, 1000))
    outcome = plan_recovery(RecoveryStrategy.CHECKPOINT_RESTORE, "A2", store)
    assert outcome.resume_progress == 0.5
    assert outcome.checkpoint is not None


def test_plan_checkpoint_restore_degrades_to_rerun():
    dc, store = make_ckpt_store()
    outcome = plan_recovery(RecoveryStrategy.CHECKPOINT_RESTORE, "A2", store)
    assert outcome.strategy == RecoveryStrategy.RERUN
    assert outcome.resume_progress == 0.0


def test_plan_none_is_fatal():
    outcome = plan_recovery(RecoveryStrategy.NONE, "A2", None)
    assert outcome.strategy == RecoveryStrategy.NONE


# ------------------------------------------------------------ failure injection


def test_fail_at_marks_devices_and_interrupts():
    dc = build_datacenter()
    injector = FailureInjector(dc.sim)
    domain = injector.domain("fd1")
    device = dc.devices[0]
    domain.devices.append(device)
    caught = []

    def victim():
        try:
            yield dc.sim.timeout(100)
        except Interrupt as interrupt:
            caught.append(interrupt.cause)

    process = dc.sim.process(victim())
    domain.register_process(process)
    injector.fail_at(5.0, "fd1")
    dc.sim.run()
    assert device.failed
    assert len(caught) == 1
    assert isinstance(caught[0], Failure)
    assert caught[0].at == 5.0


def test_repair_restores_devices():
    dc = build_datacenter()
    injector = FailureInjector(dc.sim)
    domain = injector.domain("fd1")
    device = dc.devices[0]
    domain.devices.append(device)
    injector.fail_at(5.0, "fd1", repair_after=10.0)
    dc.sim.run(until=6.0)
    assert device.failed
    dc.sim.run()
    assert not device.failed
    assert not domain.failed


def test_listeners_notified():
    dc = build_datacenter()
    injector = FailureInjector(dc.sim)
    injector.domain("fd1")
    seen = []
    injector.subscribe(lambda failure, domain: seen.append(domain.name))
    injector.fail_at(1.0, "fd1")
    dc.sim.run()
    assert seen == ["fd1"]


def test_random_failures_deterministic():
    from repro.simulator.rng import RngRegistry

    dc1 = build_datacenter()
    inj1 = FailureInjector(dc1.sim, RngRegistry(9))
    s1 = inj1.random_failures(["a", "b"], horizon_s=1000, mtbf_s=200)
    dc2 = build_datacenter()
    inj2 = FailureInjector(dc2.sim, RngRegistry(9))
    s2 = inj2.random_failures(["a", "b"], horizon_s=1000, mtbf_s=200)
    # Same seed -> the exact same (time, domain) schedule, not just the
    # same count; a different seed diverges.
    assert s1 == s2 and len(s1) > 0
    inj3 = FailureInjector(build_datacenter().sim, RngRegistry(10))
    assert inj3.random_failures(["a", "b"], horizon_s=1000, mtbf_s=200) != s1


def test_interrupting_finished_process_is_safe():
    dc = build_datacenter()
    injector = FailureInjector(dc.sim)
    domain = injector.domain("fd1")

    def quick():
        yield dc.sim.timeout(1)

    process = dc.sim.process(quick())
    domain.register_process(process)
    injector.fail_at(10.0, "fd1")
    dc.sim.run()  # no exception


# ------------------------------------------------------------ in-network ordering


def test_sequencer_beats_software_schemes_on_latency():
    results = {
        scheme: run_ordered_writes(scheme, num_writes=30, num_replicas=3)
        for scheme in OrderingScheme
    }
    sequencer = results[OrderingScheme.SWITCH_SEQUENCER]
    assert sequencer.mean_latency_s < results[
        OrderingScheme.PRIMARY_BACKUP].mean_latency_s
    assert sequencer.mean_latency_s < results[
        OrderingScheme.CONSENSUS].mean_latency_s


def test_sequencer_no_replica_coordination():
    result = run_ordered_writes(OrderingScheme.SWITCH_SEQUENCER, 10, 3)
    assert result.replica_to_replica_messages == 0
    for scheme in (OrderingScheme.PRIMARY_BACKUP, OrderingScheme.CONSENSUS):
        assert run_ordered_writes(scheme, 10, 3).replica_to_replica_messages > 0


def test_ordering_message_counts_scale_with_replicas():
    small = run_ordered_writes(OrderingScheme.PRIMARY_BACKUP, 10, 3)
    large = run_ordered_writes(OrderingScheme.PRIMARY_BACKUP, 10, 5)
    assert large.total_messages > small.total_messages


def test_ordering_single_replica_degenerate():
    result = run_ordered_writes(OrderingScheme.PRIMARY_BACKUP, 5, 1)
    assert result.replica_to_replica_messages == 0
    assert result.writes == 5


def test_ordering_validation():
    with pytest.raises(ValueError):
        run_ordered_writes(OrderingScheme.CONSENSUS, 5, 0)
