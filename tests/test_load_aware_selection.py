"""Tests for load-aware goal-directed device selection (§3.2)."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

SPEC = DatacenterSpec(
    pods=1, racks_per_pod=1,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 1,
                      DeviceType.DRAM: 1, DeviceType.SSD: 1},
)


def flexible_app(name="flex"):
    app = AppBuilder(name)

    @app.task(name="work", work=40.0,
              devices={DeviceType.CPU, DeviceType.GPU})
    def work(ctx):
        return None

    return app.build()


def test_fastest_prefers_gpu_when_free():
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(flexible_app(), {"work": {"resource": "fastest"}})
    assert result.row("work").device == "gpu"


def test_fastest_falls_back_when_gpu_pool_exhausted():
    """§3.2: goal selection accounts for load — a saturated GPU pool
    sends a FASTEST task to the next-best available hardware instead of
    failing."""
    runtime = UDCRuntime(build_datacenter(SPEC))
    pool = runtime.datacenter.pool(DeviceType.GPU)
    hog = pool.allocate(8, "hog")  # the single GPU board, fully taken
    result = runtime.run(flexible_app(), {"work": {"resource": "fastest"}})
    assert result.row("work").device == "cpu"
    pool.release(hog)


def test_fastest_returns_to_gpu_after_release():
    runtime = UDCRuntime(build_datacenter(SPEC))
    pool = runtime.datacenter.pool(DeviceType.GPU)
    hog = pool.allocate(8, "hog")
    first = runtime.run(flexible_app("a"), {"work": {"resource": "fastest"}})
    pool.release(hog)
    second = runtime.run(flexible_app("b"), {"work": {"resource": "fastest"}})
    assert first.row("work").device == "cpu"
    assert second.row("work").device == "gpu"


def test_explicit_device_not_rerouted_by_load():
    """An explicit pin is a contract: a full pool is an error (or a
    queueing event), never a silent substitution."""
    from repro.core.scheduler import SchedulerError

    runtime = UDCRuntime(build_datacenter(SPEC))
    runtime.datacenter.pool(DeviceType.GPU).allocate(8, "hog")
    with pytest.raises(SchedulerError):
        runtime.run(flexible_app(), {"work": {"resource": {"device": "gpu",
                                                           "amount": 8}}})


def test_amount_larger_than_remaining_gpu_falls_back():
    runtime = UDCRuntime(build_datacenter(SPEC))
    runtime.datacenter.pool(DeviceType.GPU).allocate(6, "hog")  # 2 left
    result = runtime.run(
        flexible_app(),
        {"work": {"resource": {"goal": "fastest", "amount": 4}}},
    )
    # 4 GPUs don't fit on the remaining 2; CPU has room.
    assert result.row("work").device == "cpu"
