"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_timeout_carries_value():
    sim = Simulator()
    t = sim.timeout(1.0, value="payload")
    sim.run()
    assert t.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).callbacks.append(
            lambda _e, d=delay: order.append(d)
        )
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.timeout(1.0).callbacks.append(lambda _e, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_returns_generator_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(2.0)
        return 42

    process = sim.process(worker())
    assert sim.run(until_event=process) == 42
    assert sim.now == 2.0


def test_process_sequential_timeouts_accumulate():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        yield sim.timeout(2.5)
        return sim.now

    process = sim.process(worker())
    assert sim.run(until_event=process) == 3.5


def test_process_receives_event_value():
    sim = Simulator()

    def worker():
        value = yield sim.timeout(1.0, value="hello")
        return value

    process = sim.process(worker())
    assert sim.run(until_event=process) == "hello"


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def waiter():
        try:
            yield sim.process(failing())
        except ValueError as exc:
            return f"caught {exc}"

    process = sim.process(waiter())
    assert sim.run(until_event=process) == "caught boom"


def test_process_waits_on_manual_event():
    sim = Simulator()
    gate = sim.event()

    def worker():
        value = yield gate
        return value

    process = sim.process(worker())
    sim.call_at(4.0, lambda: gate.succeed("opened"))
    assert sim.run(until_event=process) == "opened"
    assert sim.now == 4.0


def test_interrupt_raises_inside_process():
    sim = Simulator()
    caught = []

    def worker():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append(interrupt.cause)
            return "interrupted"
        return "finished"

    process = sim.process(worker())
    sim.call_at(5.0, lambda: process.interrupt("failure"))
    assert sim.run(until_event=process) == "interrupted"
    assert caught == ["failure"]
    assert sim.now == 5.0


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return "done"

    process = sim.process(worker())
    sim.run(until_event=process)
    process.interrupt("late")  # must not raise
    assert process.value == "done"


def test_uncaught_interrupt_terminates_with_cause():
    sim = Simulator()

    def worker():
        yield sim.timeout(100.0)

    process = sim.process(worker())
    sim.call_at(1.0, lambda: process.interrupt("killed"))
    assert sim.run(until_event=process) == "killed"


def test_any_of_returns_first_winner():
    sim = Simulator()

    def worker():
        winner = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        return winner[1]

    process = sim.process(worker())
    assert sim.run(until_event=process) == "fast"
    assert sim.now == 1.0


def test_all_of_waits_for_everything():
    sim = Simulator()

    def worker():
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
        return values

    process = sim.process(worker())
    assert sim.run(until_event=process) == ["a", "b"]
    assert sim.now == 3.0


def test_all_of_with_already_fired_events():
    sim = Simulator()
    t1 = sim.timeout(1.0, "x")
    sim.run()  # t1 now processed

    def worker():
        values = yield sim.all_of([t1, sim.timeout(1.0, "y")])
        return values

    process = sim.process(worker())
    assert sim.run(until_event=process) == ["x", "y"]


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_deadlock_detection():
    sim = Simulator()
    never = sim.event()

    def worker():
        yield never

    process = sim.process(worker())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until_event=process)


def test_call_at_in_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(2.0, lambda: None)


def test_nested_processes():
    sim = Simulator()

    def inner(n):
        yield sim.timeout(n)
        return n * 10

    def outer():
        a = yield sim.process(inner(1))
        b = yield sim.process(inner(2))
        return a + b

    process = sim.process(outer())
    assert sim.run(until_event=process) == 30
    assert sim.now == 3.0
