"""Tests for named RNG streams (determinism properties)."""

from repro.simulator.rng import RngRegistry, derive_seed


def test_same_seed_same_stream():
    a = RngRegistry(7).stream("arrivals")
    b = RngRegistry(7).stream("arrivals")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    registry = RngRegistry(7)
    a = [registry.stream("arrivals").random() for _ in range(5)]
    b = [registry.stream("failures").random() for _ in range(5)]
    assert a != b


def test_stream_cached():
    registry = RngRegistry(0)
    assert registry.stream("x") is registry.stream("x")


def test_adding_consumer_does_not_perturb_existing():
    """The whole point of named streams: draws from stream A are identical
    whether or not stream B is ever used."""
    solo = RngRegistry(3)
    solo_values = [solo.stream("a").random() for _ in range(5)]

    mixed = RngRegistry(3)
    mixed.stream("b").random()  # a second consumer appears
    mixed_values = [mixed.stream("a").random() for _ in range(5)]
    assert solo_values == mixed_values


def test_fork_independent_of_parent():
    parent = RngRegistry(3)
    child = parent.fork("child")
    assert parent.stream("a").random() != child.stream("a").random()


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")
    assert derive_seed(1, "x") != derive_seed(2, "x")
    assert 0 <= derive_seed(123, "anything") < 2 ** 64


# ----------------------------------------------- per-stream state capture


def test_getstate_setstate_round_trip():
    registry = RngRegistry(5)
    stream = registry.stream("jitter")
    stream.random()
    state = registry.getstate("jitter")
    expected = [stream.random() for _ in range(5)]
    registry.setstate("jitter", state)
    assert [stream.random() for _ in range(5)] == expected


def test_capture_restore_across_registries():
    """A captured state dict rebuilds the exact draw sequence in a fresh
    registry — the property snapshot/restore depends on."""
    source = RngRegistry(5)
    for name in ("a", "b", "c"):
        source.stream(name).random()
    states = source.capture()
    expected = {n: [source.stream(n).random() for _ in range(4)]
                for n in ("a", "b", "c")}

    target = RngRegistry(5)
    target.restore(states)
    assert {n: [target.stream(n).random() for _ in range(4)]
            for n in ("a", "b", "c")} == expected


def test_state_fingerprint_tracks_draws():
    a, b = RngRegistry(5), RngRegistry(5)
    a.stream("x"); b.stream("x")
    assert a.state_fingerprint() == b.state_fingerprint()
    a.stream("x").random()
    assert a.state_fingerprint() != b.state_fingerprint()
    b.stream("x").random()
    assert a.state_fingerprint() == b.state_fingerprint()
    assert RngRegistry(6).state_fingerprint() != RngRegistry(5).state_fingerprint()


try:
    import hypothesis.strategies as st
    from hypothesis import given, settings

    @given(
        seed=st.integers(0, 2**32 - 1),
        names=st.lists(st.sampled_from(["a", "b", "retry:x", "fd"]),
                       min_size=1, max_size=4, unique=True),
        warmup=st.integers(0, 20),
        draws=st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_capture_then_restore_equals_uninterrupted(seed, names, warmup,
                                                       draws):
        """Property: for any seed, stream set, and draw position,
        capture -> restore -> draw produces exactly the draws an
        uninterrupted stream would have produced."""
        registry = RngRegistry(seed)
        for name in names:
            for _ in range(warmup):
                registry.stream(name).random()
        states = registry.capture()
        uninterrupted = {n: [registry.stream(n).random()
                             for _ in range(draws)] for n in names}

        restored = RngRegistry(seed)
        restored.restore(states)
        assert {n: [restored.stream(n).random() for _ in range(draws)]
                for n in names} == uninterrupted
except ImportError:  # pragma: no cover - hypothesis is in the dev image
    pass
