"""Tests for named RNG streams (determinism properties)."""

from repro.simulator.rng import RngRegistry, derive_seed


def test_same_seed_same_stream():
    a = RngRegistry(7).stream("arrivals")
    b = RngRegistry(7).stream("arrivals")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    registry = RngRegistry(7)
    a = [registry.stream("arrivals").random() for _ in range(5)]
    b = [registry.stream("failures").random() for _ in range(5)]
    assert a != b


def test_stream_cached():
    registry = RngRegistry(0)
    assert registry.stream("x") is registry.stream("x")


def test_adding_consumer_does_not_perturb_existing():
    """The whole point of named streams: draws from stream A are identical
    whether or not stream B is ever used."""
    solo = RngRegistry(3)
    solo_values = [solo.stream("a").random() for _ in range(5)]

    mixed = RngRegistry(3)
    mixed.stream("b").random()  # a second consumer appears
    mixed_values = [mixed.stream("a").random() for _ in range(5)]
    assert solo_values == mixed_values


def test_fork_independent_of_parent():
    parent = RngRegistry(3)
    child = parent.fork("child")
    assert parent.stream("a").random() != child.stream("a").random()


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")
    assert derive_seed(1, "x") != derive_seed(2, "x")
    assert 0 <= derive_seed(123, "anything") < 2 ** 64
