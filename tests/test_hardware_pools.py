"""Tests for devices and exact-amount pool allocation."""

import pytest

from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceSpec, DeviceType
from repro.hardware.pools import AllocationError, ResourcePool


def make_pool(device_type=DeviceType.CPU, devices=2, clock=None):
    pool = ResourcePool(device_type, clock=clock)
    for _ in range(devices):
        pool.add_device(Device(spec=DEFAULT_SPECS[device_type]))
    return pool


def test_exact_fractional_allocation():
    pool = make_pool()
    alloc = pool.allocate(2.5, "tenant-a")
    assert alloc.amount == 2.5
    assert pool.total_used == 2.5
    pool.release(alloc)
    assert pool.total_used == 0.0


def test_sub_grain_request_rounds_up_to_grain():
    pool = make_pool()
    alloc = pool.allocate(0.1, "tenant-a")  # CPU grain is 0.25
    assert alloc.amount == 0.25


def test_wrong_device_type_rejected():
    pool = ResourcePool(DeviceType.CPU)
    with pytest.raises(ValueError):
        pool.add_device(Device(spec=DEFAULT_SPECS[DeviceType.GPU]))


def test_overcommit_rejected():
    pool = make_pool(devices=1)
    pool.allocate(30, "a")
    with pytest.raises(AllocationError):
        pool.allocate(3, "b")  # only 2 left on the single 32-core device


def test_nonpositive_amount_rejected():
    pool = make_pool()
    with pytest.raises(AllocationError):
        pool.allocate(0, "a")
    with pytest.raises(AllocationError):
        pool.allocate(-1, "a")


def test_best_fit_prefers_fuller_device():
    pool = make_pool(devices=2)
    first = pool.allocate(30, "a")  # device now has 2 free
    second = pool.allocate(2, "b")  # best fit: the 2-free device
    assert second.device is first.device


def test_single_tenant_excludes_other_tenants():
    pool = make_pool(devices=1)
    pool.allocate(1, "alice", single_tenant=True)
    with pytest.raises(AllocationError):
        pool.allocate(1, "bob")
    # Alice herself can still grow on her device.
    again = pool.allocate(1, "alice")
    assert again.amount == 1


def test_single_tenant_requires_empty_device():
    pool = make_pool(devices=1)
    pool.allocate(1, "alice")
    with pytest.raises(AllocationError):
        pool.allocate(1, "bob", single_tenant=True)


def test_single_tenant_pin_clears_after_release():
    pool = make_pool(devices=1)
    alloc = pool.allocate(1, "alice", single_tenant=True)
    pool.release(alloc)
    assert pool.devices[0].single_tenant_of is None
    assert pool.allocate(1, "bob").amount == 1


def test_single_tenant_billed_for_whole_device():
    pool = make_pool(devices=1)
    shared = pool.allocate(1, "a")
    assert shared.hourly_cost == pytest.approx(1 * 0.048)
    pool.release(shared)
    exclusive = pool.allocate(1, "a", single_tenant=True)
    assert exclusive.hourly_cost == pytest.approx(32 * 0.048)


def test_release_idempotent():
    pool = make_pool()
    alloc = pool.allocate(1, "a")
    pool.release(alloc)
    pool.release(alloc)  # no error
    assert pool.total_used == 0


def test_resize_grow_and_shrink():
    pool = make_pool(devices=1)
    alloc = pool.allocate(4, "a")
    pool.resize(alloc, 8)
    assert alloc.amount == 8
    assert pool.total_used == 8
    pool.resize(alloc, 2)
    assert pool.total_used == 2


def test_resize_beyond_device_capacity_fails():
    pool = make_pool(devices=1)
    alloc = pool.allocate(4, "a")
    pool.allocate(27, "a")
    with pytest.raises(AllocationError):
        pool.resize(alloc, 6)  # device has only 1 free


def test_resize_released_allocation_fails():
    pool = make_pool()
    alloc = pool.allocate(1, "a")
    pool.release(alloc)
    with pytest.raises(AllocationError):
        pool.resize(alloc, 2)


def test_failed_device_excluded_from_capacity_and_allocation():
    pool = make_pool(devices=2)
    pool.devices[0].failed = True
    assert pool.total_capacity == 32
    for _ in range(2):
        alloc = pool.allocate(16, "a")
        assert alloc.device is pool.devices[1]
    with pytest.raises(AllocationError):
        pool.allocate(1, "a")


def test_preferred_location_wins():
    from repro.hardware.fabric import Location

    pool = ResourcePool(DeviceType.CPU)
    near = Device(spec=DEFAULT_SPECS[DeviceType.CPU], location=Location(0, 0))
    far = Device(spec=DEFAULT_SPECS[DeviceType.CPU], location=Location(0, 1))
    pool.add_device(far)
    pool.add_device(near)
    alloc = pool.allocate(1, "a", preferred_location=Location(0, 0))
    assert alloc.device is near


def test_mean_utilization_time_weighted():
    clock = {"t": 0.0}
    pool = make_pool(devices=1, clock=lambda: clock["t"])
    alloc = pool.allocate(16, "a")   # 50% of 32
    clock["t"] = 10.0
    pool.release(alloc)              # used 50% for 10s
    clock["t"] = 20.0
    # 10s at 50% + 10s at 0% = 25% mean
    assert pool.mean_utilization() == pytest.approx(0.25)


def test_allocations_for_tenant():
    pool = make_pool()
    pool.allocate(1, "a")
    pool.allocate(2, "a")
    pool.allocate(3, "b")
    assert len(pool.allocations_for("a")) == 2
    assert len(pool.allocations_for("b")) == 1


def test_device_spec_validation():
    with pytest.raises(ValueError):
        DeviceSpec(DeviceType.CPU, capacity=0)
    with pytest.raises(ValueError):
        DeviceSpec(DeviceType.CPU, capacity=8, min_grain=16)


def test_device_tenants_property():
    pool = make_pool(devices=1)
    pool.allocate(1, "a")
    pool.allocate(1, "b")
    assert pool.devices[0].tenants == {"a", "b"}


def test_device_class_taxonomy():
    assert DeviceType.GPU.device_class.value == "compute"
    assert DeviceType.DRAM.device_class.value == "memory"
    assert DeviceType.SSD.device_class.value == "storage"
    assert DeviceType.SWITCH.device_class.value == "network"
    assert DeviceType.CPU.unit == "cores"
    assert DeviceType.NVM.unit == "GB"
