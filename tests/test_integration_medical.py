"""End-to-end integration tests: Figure 2 + Table 1 on the full stack."""

import pytest

from repro.core.runtime import UDCRuntime
from repro.core.verify import verify_run
from repro.execenv.attestation import Verifier
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.workloads.medical import build_medical_app, table1_definition

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)

INPUTS = {
    "A1": {"pixels": list(range(128)), "patient": "p-7"},
    "A3": {"patient": "p-7"},
    "B1": {"consented": True},
}


@pytest.fixture(scope="module")
def medical_run():
    dag, definition = build_medical_app()
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(dag, definition, tenant="hospital", inputs=INPUTS)
    return runtime, result


def test_all_modules_complete(medical_run):
    _runtime, result = medical_run
    assert set(result.outputs) == {"A1", "A2", "A3", "A4", "B1", "B2"}
    assert result.total_failures == 0


def test_diagnosis_produced(medical_run):
    _runtime, result = medical_run
    diagnosis = result.outputs["A4"]
    assert diagnosis["patient"] == "p-7"
    assert "diagnosis" in diagnosis
    assert result.outputs["B2"]["cohort_size"] == 1


def test_table1_resource_cells(medical_run):
    """Every resource cell of Table 1 is fulfilled."""
    _runtime, result = medical_run
    assert result.row("A2").device == "gpu"
    assert result.row("A3").device == "gpu"
    assert result.row("A4").device == "cpu"
    assert result.row("S1").device == "ssd"
    assert result.row("S3").device == "dram"
    # "Fastest" for A1 resolves to GPU (co-located with A2).
    assert result.row("A1").device == "gpu"
    # "Cheapest" compute resolves to CPU.
    assert result.row("B1").device == "cpu"
    assert result.row("B2").device == "cpu"


def test_table1_execenv_cells(medical_run):
    _runtime, result = medical_run
    # A4: single-tenant SGX enclave (the strongest tier).
    assert result.row("A4").env == "sgx-enclave"
    assert result.row("A4").single_tenant
    # A2/A3: single-tenant on GPU -> physically isolated bare metal.
    assert result.row("A2").single_tenant
    assert result.row("A3").single_tenant
    # B2: containers.
    assert result.row("B2").env == "container"


def test_table1_distributed_cells(medical_run):
    _runtime, result = medical_run
    assert result.row("S1").replication == 3
    assert result.row("S1").consistency == "sequential"
    assert result.row("S2").replication == 2
    assert result.row("S3").replication == 2
    assert result.row("S4").replication == 1
    assert result.row("S4").consistency == "release"
    # Checkpointing cells: A2/A3/A4 took checkpoints.
    for name in ("A2", "A3", "A4"):
        assert result.objects[name].record.checkpoints_taken > 0


def test_colocation_honored(medical_run):
    _runtime, result = medical_run
    a1_dev = result.objects["A1"].primary_allocation.device
    a2_dev = result.objects["A2"].primary_allocation.device
    assert a1_dev is a2_dev


def test_a4_standby_allocated(medical_run):
    """Table 1: A4 'Rep 2x' -> a hot standby on another CPU device."""
    _runtime, result = medical_run
    cpu_allocs = [a for a in result.objects["A4"].allocations
                  if a.device_type.value == "cpu"]
    assert len(cpu_allocs) == 2
    assert cpu_allocs[0].device is not cpu_allocs[1].device


def test_fulfillment_verifies(medical_run):
    runtime, result = medical_run
    report = verify_run(result.objects, result.records,
                        Verifier(runtime.root_of_trust))
    assert report.ok
    # A4's enclave is attested; replication factors are trusted claims.
    a4 = {c.prop: c.status for c in report.for_module("A4")}
    assert a4["env_kind"] == "attested"
    s1 = {c.prop: c.status for c in report.for_module("S1")}
    assert s1["replication"] == "trusted"


def test_protection_costs_charged_on_secured_paths(medical_run):
    _runtime, result = medical_run
    # S1/S2/S3 are encrypted+integrity: their readers pay protection time.
    assert result.objects["A1"].record.protection_s > 0   # reads S3
    assert result.objects["B1"].record.protection_s > 0   # reads S1+S2


def test_run_is_deterministic():
    dag, definition = build_medical_app()
    results = []
    for _ in range(2):
        runtime = UDCRuntime(build_datacenter(SPEC))
        results.append(
            runtime.run(dag, definition, tenant="hospital", inputs=INPUTS)
        )
    assert results[0].makespan_s == results[1].makespan_s
    assert results[0].total_cost == pytest.approx(results[1].total_cost)
    assert results[0].outputs["A4"] == results[1].outputs["A4"]


def test_warm_pool_cuts_medical_makespan():
    dag, definition = build_medical_app()
    cold = UDCRuntime(build_datacenter(SPEC)).run(
        dag, definition, tenant="hospital")
    warm = UDCRuntime(
        build_datacenter(SPEC), warm_pool=WarmPool(enabled=True), prewarm=True
    ).run(dag, definition, tenant="hospital")
    assert warm.makespan_s < cold.makespan_s * 0.5


def test_fallback_all_defaults_runs():
    """Footnote 1: no definition at all falls back to today's cloud."""
    dag, _definition = build_medical_app()
    result = UDCRuntime(build_datacenter(SPEC)).run(
        dag, None, tenant="hospital", inputs=INPUTS)
    assert set(result.outputs) == {"A1", "A2", "A3", "A4", "B1", "B2"}
    # Provider defaults: weak isolation containers, single replicas.
    assert result.row("B2").env == "container"
    assert result.row("S1").replication == 1


def test_survives_gpu_failure_mid_diagnosis():
    dag, definition = build_medical_app()
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(
        dag, definition, tenant="hospital", inputs=INPUTS,
        failure_plan=[(50.0, "fd:A3")],
    )
    assert result.outputs["A4"] is not None
    assert result.row("A3").failures >= 1
