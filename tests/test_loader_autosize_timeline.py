"""Tests for the IR loader, the autosizer, and the timeline renderer."""

import json

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.dag import DagValidationError
from repro.appmodel.ir import compile_dag
from repro.appmodel.loader import load_program, load_program_file
from repro.core.autosize import autosize
from repro.core.runtime import UDCRuntime
from repro.core.timeline import ascii_gantt, build_timeline
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter


def sample_app():
    app = AppBuilder("roundtrip")

    @app.task(name="prep", work=2.0,
              devices={DeviceType.CPU, DeviceType.GPU})
    def prep(ctx):
        return 1

    @app.task(name="infer", work=40.0, devices={DeviceType.GPU})
    def infer(ctx):
        return 2

    store = app.data("out", size_gb=2)
    app.flows("prep", "infer", bytes_=1 << 20)
    app.writes("infer", store, bytes_per_run=4096)
    app.colocate("prep", "infer")
    return app.build()


# ------------------------------------------------------------ loader


def test_ir_roundtrip_preserves_structure():
    original = sample_app()
    ir_dict = compile_dag(original).to_dict()
    loaded = load_program(ir_dict)
    recompiled = compile_dag(loaded).to_dict()
    assert set(recompiled["modules"]) == set(ir_dict["modules"])
    for name in ir_dict["modules"]:
        a, b = ir_dict["modules"][name], recompiled["modules"][name]
        for key in ("kind", "work", "device_candidates", "inputs",
                    "outputs", "colocate_with", "affinities", "code_hash"):
            assert a[key] == b[key], f"{name}.{key}: {a[key]} != {b[key]}"
    assert sorted(map(tuple, recompiled["edges"])) \
        == sorted(map(tuple, ir_dict["edges"]))


def test_loaded_program_runs_with_reattached_functions():
    original = sample_app()
    ir_dict = compile_dag(original).to_dict()
    loaded = load_program(
        ir_dict,
        functions={"prep": lambda ctx: 10, "infer": lambda ctx: ctx["prep"] * 2},
    )
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)))
    result = runtime.run(loaded, {"infer": {"resource": {"device": "gpu"}}})
    assert result.outputs["infer"] == 20


def test_loader_file_roundtrip(tmp_path):
    path = tmp_path / "app.json"
    path.write_text(json.dumps(compile_dag(sample_app()).to_dict()))
    loaded = load_program_file(str(path))
    assert set(loaded.modules) == {"prep", "infer", "out"}


def test_loader_rejects_malformed_ir():
    with pytest.raises(DagValidationError):
        load_program({"no_modules": True})
    with pytest.raises(DagValidationError, match="unknown device"):
        load_program({"modules": {"t": {"kind": "task",
                                        "device_candidates": ["abacus"]}},
                      "edges": []})
    with pytest.raises(DagValidationError, match="unknown kind"):
        load_program({"modules": {"x": {"kind": "mystery"}}, "edges": []})
    with pytest.raises(DagValidationError, match="malformed edge"):
        load_program({"modules": {"t": {"kind": "task"}},
                      "edges": [["only-two", "items"]]})


# ------------------------------------------------------------ autosize


def standalone_app():
    """Like sample_app but without the co-location constraint."""
    app = AppBuilder("standalone")

    @app.task(name="prep", work=2.0,
              devices={DeviceType.CPU, DeviceType.GPU})
    def prep(ctx):
        return 1

    @app.task(name="infer", work=40.0, devices={DeviceType.GPU})
    def infer(ctx):
        return 2

    app.flows("prep", "infer", bytes_=1 << 20)
    return app.build()


def test_autosize_cost_picks_cpu_speed_picks_gpu():
    dag = standalone_app()
    cheap = autosize(dag, optimize="cost")
    fast = autosize(dag, optimize="speed")
    assert cheap.bundle_for("prep").resource.device == DeviceType.CPU
    assert fast.bundle_for("prep").resource.device == DeviceType.GPU
    # infer is GPU-only either way.
    assert cheap.bundle_for("infer").resource.device == DeviceType.GPU


def test_autosize_respects_colocation_groups():
    """sample_app colocates prep~infer; infer is GPU-only, so prep must be
    sized on GPU too even when optimizing for cost."""
    definition = autosize(sample_app(), optimize="cost")
    assert definition.bundle_for("prep").resource.device == DeviceType.GPU


def test_autosize_latency_budget_splits_across_stages():
    dag = sample_app()
    # Two stages; 4 s end-to-end -> 2 s per stage -> prep needs >= 1 cpu
    # at work 2.0 (2 s) or a GPU; infer needs GPU regardless.
    definition = autosize(dag, end_to_end_latency_s=4.0)
    prep = definition.bundle_for("prep").resource
    assert prep is not None
    # Whatever it chose must meet the 2 s budget.
    from repro.hardware.devices import DEFAULT_SPECS

    spec = DEFAULT_SPECS[prep.device]
    assert dag.task("prep").execution_seconds(
        prep.device, prep.amount, spec.compute_rate) <= 2.0 + 1e-9


def test_autosize_output_is_runnable():
    dag = sample_app()
    definition = autosize(dag)
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)))
    result = runtime.run(dag, definition)
    assert result.total_failures == 0


def test_autosize_validation():
    with pytest.raises(ValueError, match="optimize"):
        autosize(sample_app(), optimize="vibes")


# ------------------------------------------------------------ timeline


def run_sample():
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)))
    return runtime.run(sample_app(), {"infer": {"resource": {"device": "gpu"}}})


def test_timeline_spans_cover_tasks_in_order():
    result = run_sample()
    spans = build_timeline(result)
    assert [s.module for s in spans] == ["prep", "infer"]
    prep, infer = spans
    assert infer.start_s >= prep.end_s  # dependency respected
    assert prep.duration_s > 0
    assert prep.compute_s > 0


def test_timeline_serializable():
    result = run_sample()
    payload = json.dumps([s.to_dict() for s in build_timeline(result)])
    assert "duration_s" in payload


def test_ascii_gantt_renders_all_tasks():
    result = run_sample()
    chart = ascii_gantt(result, width=40)
    assert "prep" in chart and "infer" in chart
    assert "legend" in chart
    lines = chart.splitlines()
    assert len(lines) == 4  # header + two tasks + legend


def test_ascii_gantt_marks_failures():
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)))
    app = AppBuilder("fail")

    @app.task(name="victim", work=50.0)
    def victim(ctx):
        return None

    result = runtime.run(app.build(), None, failure_plan=[(10.0, "fd:victim")])
    chart = ascii_gantt(result)
    assert "!" in chart
