"""Tests for isolation tiers, environment profiles, and warm pools."""

import pytest

from repro.execenv.environments import (
    ENV_PROFILES,
    EnvKind,
    ExecutionEnvironment,
    environments_for_level,
)
from repro.execenv.isolation import (
    IsolationLevel,
    Threat,
    coverage_for,
    verifiable_by_user,
)
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType


# ------------------------------------------------------------ isolation tiers


def test_isolation_rank_order():
    levels = [IsolationLevel.NONE, IsolationLevel.WEAK, IsolationLevel.MEDIUM,
              IsolationLevel.STRONG, IsolationLevel.STRONGEST]
    ranks = [l.rank for l in levels]
    assert ranks == sorted(ranks)
    assert IsolationLevel.STRONGEST.at_least(IsolationLevel.WEAK)
    assert not IsolationLevel.WEAK.at_least(IsolationLevel.STRONG)


def test_strongest_covers_side_channels():
    assert Threat.HW_SIDE_CHANNEL in coverage_for(IsolationLevel.STRONGEST)
    assert Threat.HW_SIDE_CHANNEL not in coverage_for(IsolationLevel.STRONG)


def test_only_top_tiers_user_verifiable():
    assert verifiable_by_user(IsolationLevel.STRONGEST)
    assert verifiable_by_user(IsolationLevel.STRONG)
    assert not verifiable_by_user(IsolationLevel.MEDIUM)
    assert not verifiable_by_user(IsolationLevel.WEAK)


# ------------------------------------------------------------ env profiles


def test_all_kinds_have_profiles():
    assert set(ENV_PROFILES) == set(EnvKind)


def test_startup_cost_ordering_matches_literature():
    """unikernel < microVM < container < gVisor < SGX < VM < SEV < bare metal."""
    order = [
        EnvKind.UNIKERNEL, EnvKind.MICRO_VM, EnvKind.CONTAINER,
        EnvKind.SANDBOXED_CONTAINER, EnvKind.SGX_ENCLAVE, EnvKind.VM,
        EnvKind.SEV_VM, EnvKind.BARE_METAL,
    ]
    starts = [ENV_PROFILES[k].cold_start_s for k in order]
    assert starts == sorted(starts)


def test_warm_start_always_cheaper_than_cold():
    for profile in ENV_PROFILES.values():
        assert profile.warm_start_s < profile.cold_start_s


def test_tees_are_cpu_only():
    for kind in (EnvKind.SGX_ENCLAVE, EnvKind.SEV_VM):
        assert ENV_PROFILES[kind].requires_device == frozenset({DeviceType.CPU})


def test_strongest_on_cpu_offers_tees():
    kinds = {p.kind for p in environments_for_level(
        IsolationLevel.STRONGEST, DeviceType.CPU)}
    assert EnvKind.SGX_ENCLAVE in kinds


def test_strongest_on_gpu_falls_back_to_bare_metal():
    """§3.3: TEEs don't exist on GPUs; physically isolated bare metal is
    the paper's proposed alternative."""
    profiles = environments_for_level(IsolationLevel.STRONGEST, DeviceType.GPU)
    assert [p.kind for p in profiles] == [EnvKind.BARE_METAL]


def test_weak_is_container_everywhere():
    for device in (DeviceType.CPU, DeviceType.GPU):
        profiles = environments_for_level(IsolationLevel.WEAK, device)
        assert [p.kind for p in profiles] == [EnvKind.CONTAINER]


def test_medium_on_cpu_offers_choices():
    kinds = {p.kind for p in environments_for_level(
        IsolationLevel.MEDIUM, DeviceType.CPU)}
    assert EnvKind.UNIKERNEL in kinds and EnvKind.MICRO_VM in kinds


# ------------------------------------------------------------ env instances


def make_env(kind=EnvKind.SGX_ENCLAVE, single=False):
    return ExecutionEnvironment(
        profile=ENV_PROFILES[kind], tenant="t", single_tenant=single
    )


def test_tee_plus_single_tenant_is_strongest():
    assert make_env(single=True).effective_isolation == IsolationLevel.STRONGEST
    assert make_env(single=False).effective_isolation == IsolationLevel.STRONG


def test_single_tenancy_extends_coverage():
    env = make_env(single=True)
    assert Threat.HW_SIDE_CHANNEL in env.effective_coverage
    assert Threat.HW_SIDE_CHANNEL not in make_env(single=False).effective_coverage


def test_compute_time_applies_overhead():
    env = make_env()  # SGX: 1.35x
    assert env.compute_time(10.0) == pytest.approx(13.5)


def test_warm_env_starts_fast():
    env = make_env()
    assert env.startup_time() == ENV_PROFILES[EnvKind.SGX_ENCLAVE].cold_start_s
    env.from_warm_pool = True
    assert env.startup_time() == ENV_PROFILES[EnvKind.SGX_ENCLAVE].warm_start_s


# ------------------------------------------------------------ warm pool


def test_warmpool_hit_and_miss():
    pool = WarmPool()
    pool.prewarm(EnvKind.SGX_ENCLAVE, False, count=1)
    assert pool.try_acquire(EnvKind.SGX_ENCLAVE, False)
    assert not pool.try_acquire(EnvKind.SGX_ENCLAVE, False)
    assert pool.stats.hits == 1 and pool.stats.misses == 1
    assert pool.stats.hit_rate == pytest.approx(0.5)


def test_warmpool_tenancy_keys_distinct():
    pool = WarmPool()
    pool.prewarm(EnvKind.VM, single_tenant=False, count=1)
    assert not pool.try_acquire(EnvKind.VM, single_tenant=True)


def test_warmpool_disabled_always_misses():
    pool = WarmPool(enabled=False)
    pool.prewarm(EnvKind.VM, False, count=5)
    assert not pool.try_acquire(EnvKind.VM, False)


def test_warmpool_refill_restocks_known_keys():
    pool = WarmPool(target_depth=2)
    pool.try_acquire(EnvKind.MICRO_VM, False)  # miss registers the key
    added = pool.refill()
    assert added == 2
    assert pool.depth(EnvKind.MICRO_VM, False) == 2
    assert pool.try_acquire(EnvKind.MICRO_VM, False)


def test_warmpool_savings_accounting():
    pool = WarmPool()
    pool.prewarm(EnvKind.BARE_METAL, True, count=1)
    pool.try_acquire(EnvKind.BARE_METAL, True)
    profile = ENV_PROFILES[EnvKind.BARE_METAL]
    assert pool.stats.startup_seconds_saved == pytest.approx(
        profile.cold_start_s - profile.warm_start_s
    )


def test_warmpool_negative_depth_rejected():
    with pytest.raises(ValueError):
        WarmPool(target_depth=-1)
