"""Integration-level tests for the UDC runtime."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.conflicts import ConflictError, ConflictPolicy
from repro.core.runtime import RuntimeError_, UDCRuntime
from repro.execenv.environments import EnvKind
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter


def small_dc(racks=4):
    return build_datacenter(DatacenterSpec(pods=1, racks_per_pod=racks))


def two_stage_app(work1=1.0, work2=2.0):
    app = AppBuilder("two-stage")

    @app.task(name="first", work=work1)
    def first(ctx):
        return (ctx.get("input") or 0) + 1

    @app.task(name="second", work=work2)
    def second(ctx):
        return ctx["first"] * 10

    app.flows("first", "second", bytes_=1 << 10)
    return app.build()


def test_functional_dataflow():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(two_stage_app(), inputs={"first": 4})
    assert result.outputs["first"] == 5
    assert result.outputs["second"] == 50


def test_second_waits_for_first():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(two_stage_app())
    first = result.objects["first"].record
    second = result.objects["second"].record
    assert second.started_at >= first.finished_at


def test_default_run_uses_container_and_cheapest():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(two_stage_app())
    row = result.row("first")
    assert row.env == "container"
    assert row.device == "cpu"


def test_task_allocations_released_after_completion():
    dc = small_dc()
    runtime = UDCRuntime(dc)
    runtime.run(two_stage_app())
    assert dc.pool(DeviceType.CPU).total_used == 0.0


def test_total_cost_positive_and_settled():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(two_stage_app())
    assert result.total_cost > 0
    # Every allocation's meter closed: ledgers empty, owners cleared.
    assert all(not s.cost_ledger for s in runtime._submissions)
    assert not runtime._owner_of


def test_unknown_module_in_definition_rejected():
    runtime = UDCRuntime(small_dc())
    with pytest.raises(RuntimeError_, match="not in the application"):
        runtime.run(two_stage_app(), {"ghost": {"resource": "fastest"}})


def test_definition_applies_env_kind():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(
        two_stage_app(),
        {"first": {"execenv": {"env": "micro-vm"}}},
    )
    assert result.row("first").env == "micro-vm"
    assert result.row("second").env == "container"


def test_protection_cost_charged():
    app = AppBuilder("protected")

    @app.task(name="producer", work=1.0, output_bytes=10 << 20)
    def producer(ctx):
        return None

    store = app.data("vault", size_gb=1)
    app.writes("producer", store, bytes_per_run=10 << 20)
    dag = app.build()

    runtime = UDCRuntime(small_dc())
    result = runtime.run(
        dag, {"producer": {"execenv": {"protection": ["encrypt", "integrity"]}}}
    )
    assert result.objects["producer"].record.protection_s > 0


def test_checkpoint_cells_taken():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(
        two_stage_app(work1=10.0),
        {"first": {"distributed": {"checkpoint": True,
                                   "checkpoint_interval": 0.25}}},
    )
    record = result.objects["first"].record
    assert record.checkpoints_taken == 3  # at 25/50/75%
    assert record.checkpoint_s > 0


def test_failure_rerun_recovers():
    runtime = UDCRuntime(small_dc())
    dag = two_stage_app(work1=100.0)  # first runs 100 s
    result = runtime.run(
        dag,
        {"first": {"distributed": {"recovery": "rerun"}}},
        failure_plan=[(50.0, "fd:first")],
    )
    record = result.objects["first"].record
    assert record.failures == 1
    assert record.migrations == 1
    assert result.outputs["second"] is not None
    # Reran from scratch: ~50 s lost + full 100 s re-execution.
    assert result.makespan_s > 148
    # compute_s counts completed telemetry chunks: one 25-s chunk finished
    # before the failure landed mid-second-chunk (startup offsets the
    # chunk boundaries past t=50), plus the full 100-s re-execution.
    assert record.compute_s == pytest.approx(125.0, rel=0.05)


def test_failure_checkpoint_restore_faster_than_rerun():
    definition_ckpt = {"first": {"distributed": {
        "checkpoint": True, "checkpoint_interval": 0.1}}}
    definition_rerun = {"first": {"distributed": {"recovery": "rerun"}}}
    results = {}
    for label, definition in (("ckpt", definition_ckpt),
                              ("rerun", definition_rerun)):
        runtime = UDCRuntime(small_dc())
        results[label] = runtime.run(
            two_stage_app(work1=100.0), definition,
            failure_plan=[(90.0, "fd:first")],
        )
    assert results["ckpt"].makespan_s < results["rerun"].makespan_s


def test_failure_strategy_none_is_fatal_but_terminates():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(
        two_stage_app(work1=100.0),
        {"first": {"distributed": {"recovery": "none"}}},
        failure_plan=[(50.0, "fd:first")],
    )
    assert result.outputs.get("first") is None
    assert result.row("first").failures == 1


def test_custom_failure_domain_couples_modules():
    app = AppBuilder("coupled")

    @app.task(name="a", work=50.0)
    def a(ctx):
        return 1

    @app.task(name="b", work=50.0)
    def b(ctx):
        return 2

    dag = app.build()
    runtime = UDCRuntime(small_dc())
    definition = {
        "a": {"distributed": {"failure_domain": "shared"}},
        "b": {"distributed": {"failure_domain": "shared"}},
    }
    result = runtime.run(dag, definition, failure_plan=[(10.0, "shared")])
    assert result.row("a").failures == 1
    assert result.row("b").failures == 1


def test_warm_pool_reduces_makespan():
    definition = {"first": {"execenv": {"isolation": "strong"}},
                  "second": {"execenv": {"isolation": "strong"}}}
    cold = UDCRuntime(small_dc()).run(two_stage_app(), definition)
    warm_runtime = UDCRuntime(
        small_dc(), warm_pool=WarmPool(enabled=True), prewarm=True
    )
    warm = warm_runtime.run(two_stage_app(), definition)
    assert warm.makespan_s < cold.makespan_s
    assert warm.warm_hits == 2


def test_conflict_error_policy_propagates():
    app = AppBuilder("conflict")

    @app.task(name="t1")
    def t1(ctx):
        return None

    @app.task(name="t2")
    def t2(ctx):
        return None

    store = app.data("d")
    app.reads("t1", store)
    app.reads("t2", store)
    dag = app.build()
    definition = {
        "t1": {"distributed": {"data_consistency": {"d": "sequential"}}},
        "t2": {"distributed": {"data_consistency": {"d": "release"}}},
    }
    strict_runtime = UDCRuntime(small_dc(),
                                conflict_policy=ConflictPolicy.ERROR)
    with pytest.raises(ConflictError):
        strict_runtime.run(dag, definition)

    lenient = UDCRuntime(small_dc()).run(dag, definition)
    assert lenient.records["d"].consistency == "sequential"
    assert len(lenient.conflicts.conflicts) == 1


def test_attestation_quote_attached_for_sgx():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(
        two_stage_app(), {"first": {"execenv": {"env": "sgx-enclave"}}}
    )
    assert result.objects["first"].quote is not None
    assert result.objects["second"].quote is None  # container: no quote


def test_tuner_shrinks_overdeclared_task():
    app = AppBuilder("greedy")

    @app.task(name="hog", work=20.0, max_parallelism=2)
    def hog(ctx):
        return None

    dag = app.build()
    runtime = UDCRuntime(small_dc())
    result = runtime.run(
        dag,
        {"hog": {"resource": {"device": "cpu", "amount": 8},
                 "distributed": {"checkpoint": True}}},
    )
    shrinks = [a for a in runtime.tuner.actions if a.kind == "shrink"]
    assert shrinks and shrinks[0].new_amount == 2.0


def test_tuner_acts_without_checkpointing():
    """Telemetry chunking is independent of checkpointing: the tuner
    shrinks an over-declared task even when no checkpoints are taken."""
    app = AppBuilder("plain-hog")

    @app.task(name="hog", work=20.0, max_parallelism=2)
    def hog(ctx):
        return None

    runtime = UDCRuntime(small_dc())
    result = runtime.run(
        app.build(), {"hog": {"resource": {"device": "cpu", "amount": 8}}}
    )
    shrinks = [a for a in runtime.tuner.actions if a.kind == "shrink"]
    assert shrinks and shrinks[0].new_amount == 2.0
    assert result.objects["hog"].record.checkpoints_taken == 0


def test_report_table_renders():
    runtime = UDCRuntime(small_dc())
    result = runtime.run(two_stage_app())
    table = result.format_table()
    assert "first" in table and "makespan" in table
