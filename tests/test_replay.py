"""Tests for deterministic checkpoint/replay (journal, snapshot, bisect).

The load-bearing assertions here are *byte*-equalities: a crashed and
resumed run must produce the exact same journal lines, final report
bytes, and metric snapshots as an uninterrupted run — not approximately,
not modulo timestamps, byte for byte.
"""

import json
import os

import pytest

from repro.replay import (
    JournalError,
    JournalEvent,
    JournalWriter,
    ReplayRunner,
    RunConfig,
    SimulatedCrash,
    SnapshotError,
    bisect_replay,
    first_divergence,
    list_snapshots,
    load_snapshot,
    read_journal,
    save_snapshot,
)
from repro.replay.snapshot import snapshot_path

FIG2 = RunConfig(workload="fig2-medical",
                 params={"patients": 4, "round_every": 2}, seed=7)
FIG2_FAULTS = RunConfig(
    workload="fig2-medical",
    params={"patients": 3, "round_every": 1,
            "faults": [[4.0, "fd:A2"]]},
    seed=11,
)
TRACE = RunConfig(workload="tenant-trace",
                  params={"tenants": 4, "minutes": 8.0, "round_every": 4},
                  seed=3)
AUTOPILOT = RunConfig(
    workload="tenant-trace",
    params={"tenants": 4, "minutes": 8.0, "round_every": 4,
            "spot_fraction": 0.5, "budget": 0.05, "slo_s": 120.0},
    seed=3, warm=True, autopilot=True,
)


def record_baseline(config, tmp_path, name="base"):
    journal = str(tmp_path / f"{name}.jsonl")
    runner = ReplayRunner(config)
    service = runner.record(journal)
    return runner, service, journal


# ------------------------------------------------------------ journal


def test_journal_round_trips(tmp_path):
    runner, _service, journal = record_baseline(FIG2, tmp_path)
    config, events, torn = read_journal(journal)
    assert not torn
    assert RunConfig.from_json_dict(config) == FIG2
    assert [e.eid for e in events] == list(range(len(events)))
    assert len(events) == len(runner.script.commands)
    for event in events:
        assert set(event.fingerprint) == {"clock", "rng", "state"}


def test_journal_rejects_noncontiguous_eids(tmp_path):
    journal = str(tmp_path / "j.jsonl")
    with JournalWriter(journal, FIG2.to_json_dict()) as writer:
        writer.append(JournalEvent(eid=0, op="drain"))
        with pytest.raises(JournalError, match="contiguous"):
            writer.append(JournalEvent(eid=2, op="drain"))


def test_journal_torn_tail_dropped(tmp_path):
    _runner, _service, journal = record_baseline(FIG2, tmp_path)
    _, intact, _ = read_journal(journal)
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "event", "eid": 99, "op": "dr')  # crash mid-write
    config, events, torn = read_journal(journal)
    assert torn
    assert len(events) == len(intact)


def test_journal_mid_file_corruption_raises(tmp_path):
    _runner, _service, journal = record_baseline(FIG2, tmp_path)
    with open(journal, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    lines[2] = lines[2][:10]  # corrupt a non-final line
    with open(journal, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt"):
        read_journal(journal)


def test_journal_resume_refuses_other_config(tmp_path):
    _runner, _service, journal = record_baseline(FIG2, tmp_path)
    with pytest.raises(JournalError, match="different"):
        JournalWriter(journal, TRACE.to_json_dict(), resume=True)


# ------------------------------------------------------------ snapshots


def test_snapshot_round_trip(tmp_path):
    runner, service, _journal = record_baseline(FIG2, tmp_path)
    path = snapshot_path(str(tmp_path), 7)
    save_snapshot(path, service, 7)
    eid, restored = load_snapshot(path)
    assert eid == 7
    # The restored service answers the same canonical report bytes.
    assert runner.report_bytes(restored) == runner.report_bytes(service)


def test_snapshot_refuses_non_quiescent():
    config = RunConfig(workload="fig2-medical",
                       params={"patients": 1, "round_every": 1}, seed=0)
    runner = ReplayRunner(config)
    service = runner._fresh_service()
    service.register_tenant("hospital")
    service.submit("hospital", runner.script.apps["medical"],
                   runner.script.definitions["medical"],
                   inputs=runner.script.commands[1].args["inputs"])
    service.dispatch_round()
    assert not service.runtime.sim.is_quiescent
    with pytest.raises(SnapshotError, match="quiescent"):
        save_snapshot(snapshot_path("/tmp", 0), service, 0)


def test_snapshot_detects_corruption(tmp_path):
    _runner, service, _journal = record_baseline(FIG2, tmp_path)
    path = snapshot_path(str(tmp_path), 3)
    save_snapshot(path, service, 3)
    with open(path, "r+b") as fh:
        fh.seek(-20, os.SEEK_END)
        fh.write(b"\x00\x00\x00\x00")
    with pytest.raises(SnapshotError, match="digest"):
        load_snapshot(path)


def test_snapshot_detects_truncation(tmp_path):
    _runner, service, _journal = record_baseline(FIG2, tmp_path)
    path = snapshot_path(str(tmp_path), 3)
    save_snapshot(path, service, 3)
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size - 100)
    with pytest.raises(SnapshotError, match="truncated"):
        load_snapshot(path)


def test_restored_service_is_resnapshottable(tmp_path):
    """A restored service must itself be snapshot-able (its generator
    stubs look exhausted) — resume re-snapshots on the same cadence."""
    _runner, service, _journal = record_baseline(FIG2, tmp_path)
    first = snapshot_path(str(tmp_path), 1)
    save_snapshot(first, service, 1)
    _eid, restored = load_snapshot(first)
    second = snapshot_path(str(tmp_path), 2)
    save_snapshot(second, restored, 2)  # must not raise
    assert load_snapshot(second)[0] == 2


def test_list_snapshots_sorted(tmp_path):
    _runner, service, _journal = record_baseline(FIG2, tmp_path)
    for eid in (5, 1, 3):
        save_snapshot(snapshot_path(str(tmp_path), eid), service, eid)
    (tmp_path / "not-a-snapshot.txt").write_text("x")
    assert [eid for eid, _ in list_snapshots(str(tmp_path))] == [1, 3, 5]


# ------------------------------------------- crash-resume equivalence


@pytest.mark.parametrize("crash_frac", [0.2, 0.5, 0.85])
@pytest.mark.parametrize("config", [FIG2, TRACE, FIG2_FAULTS, AUTOPILOT],
                         ids=["fig2", "tenant-trace", "fig2-faults",
                              "autopilot"])
def test_crash_resume_byte_identical(tmp_path, config, crash_frac):
    """The acceptance gate: crash at several distinct event indices,
    resume, and the final report bytes AND the journal itself are
    byte-identical to the uninterrupted run."""
    baseline_runner, baseline_service, baseline_journal = \
        record_baseline(config, tmp_path)
    baseline_bytes = baseline_runner.report_bytes(baseline_service)
    _, baseline_events, _ = read_journal(baseline_journal)

    crash_at = max(0, int(len(baseline_events) * crash_frac))
    journal = str(tmp_path / "crashed.jsonl")
    snapshots = str(tmp_path / "snaps")
    with pytest.raises(SimulatedCrash):
        ReplayRunner(config).record(journal, snapshot_dir=snapshots,
                                    snapshot_every=2, crash_at=crash_at)
    _, crashed_events, _ = read_journal(journal)
    assert crashed_events[-1].eid == crash_at  # durable through the crash

    resumer = ReplayRunner(config)
    resumed = resumer.resume(journal, snapshot_dir=snapshots,
                             snapshot_every=2)
    assert resumer.report_bytes(resumed) == baseline_bytes
    _, resumed_events, _ = read_journal(journal)
    assert ([e.to_json_dict() for e in resumed_events]
            == [e.to_json_dict() for e in baseline_events])


def test_resume_without_snapshots_replays_from_scratch(tmp_path):
    baseline_runner, baseline_service, _ = record_baseline(FIG2, tmp_path)
    journal = str(tmp_path / "crashed.jsonl")
    with pytest.raises(SimulatedCrash):
        ReplayRunner(FIG2).record(journal, crash_at=4)
    resumer = ReplayRunner(FIG2)
    resumed = resumer.resume(journal)  # no snapshot_dir at all
    assert (resumer.report_bytes(resumed)
            == baseline_runner.report_bytes(baseline_service))


def test_resume_skips_corrupt_snapshot(tmp_path):
    """A half-written snapshot from the crash is skipped, falling back
    to an older one (or scratch) — never restored."""
    baseline_runner, baseline_service, _ = record_baseline(FIG2, tmp_path)
    journal = str(tmp_path / "crashed.jsonl")
    snapshots = str(tmp_path / "snaps")
    with pytest.raises(SimulatedCrash):
        ReplayRunner(FIG2).record(journal, snapshot_dir=snapshots,
                                  snapshot_every=2, crash_at=5)
    newest = list_snapshots(snapshots)[-1][1]
    size = os.path.getsize(newest)
    with open(newest, "r+b") as fh:
        fh.truncate(size // 2)
    resumer = ReplayRunner(FIG2)
    resumed = resumer.resume(journal, snapshot_dir=snapshots)
    assert (resumer.report_bytes(resumed)
            == baseline_runner.report_bytes(baseline_service))


def test_resume_after_torn_journal_tail(tmp_path):
    """Crash mid-append: the torn line is dropped and the run still
    resumes to a byte-identical report."""
    baseline_runner, baseline_service, _ = record_baseline(FIG2, tmp_path)
    journal = str(tmp_path / "crashed.jsonl")
    with pytest.raises(SimulatedCrash):
        ReplayRunner(FIG2).record(journal, crash_at=4)
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "event", "eid": 5, "op": "dra')
    resumer = ReplayRunner(FIG2)
    resumed = resumer.resume(journal)
    assert (resumer.report_bytes(resumed)
            == baseline_runner.report_bytes(baseline_service))
    _, events, torn = read_journal(journal)
    assert not torn and events[-1].eid == len(events) - 1


def test_resume_detects_divergent_journal(tmp_path):
    """If the journal's fingerprints don't match re-execution (foreign
    journal, perturbed run), resume refuses rather than silently
    producing a different run."""
    from repro.replay import ReplayDivergence

    journal = str(tmp_path / "perturbed.jsonl")
    with pytest.raises(SimulatedCrash):
        ReplayRunner(FIG2, perturb={"eid": 2, "stream": "x"}).record(
            journal, crash_at=5)
    with pytest.raises(ReplayDivergence, match="event 2"):
        ReplayRunner(FIG2).resume(journal)


def test_metrics_snapshot_identical_after_resume(tmp_path):
    """Beyond the report: the full metrics registry dict is equal."""
    _r, baseline_service, _ = record_baseline(TRACE, tmp_path)
    baseline_metrics = baseline_service.runtime.metrics_snapshot().to_dict()
    journal = str(tmp_path / "crashed.jsonl")
    snapshots = str(tmp_path / "snaps")
    with pytest.raises(SimulatedCrash):
        ReplayRunner(TRACE).record(journal, snapshot_dir=snapshots,
                                   snapshot_every=3, crash_at=8)
    resumed = ReplayRunner(TRACE).resume(journal, snapshot_dir=snapshots)
    assert resumed.runtime.metrics_snapshot().to_dict() == baseline_metrics


# ------------------------------------------------------------ replay


def test_replay_prefix_verifies(tmp_path):
    _runner, _service, journal = record_baseline(FIG2, tmp_path)
    runner = ReplayRunner(FIG2)
    service, replayed = runner.replay(journal, until=3)
    assert [e.eid for e in replayed] == [0, 1, 2, 3]
    assert service.runtime.sim.is_quiescent


def test_replay_full_journal(tmp_path):
    baseline_runner, baseline_service, journal = \
        record_baseline(FIG2, tmp_path)
    runner = ReplayRunner(FIG2)
    service, replayed = runner.replay(journal)
    assert len(replayed) == len(runner.script.commands)
    assert (runner.report_bytes(service)
            == baseline_runner.report_bytes(baseline_service))


def test_replay_flags_perturbed_journal(tmp_path):
    from repro.replay import ReplayDivergence

    journal = str(tmp_path / "perturbed.jsonl")
    ReplayRunner(FIG2, perturb={"eid": 3, "stream": "x"}).record(journal)
    with pytest.raises(ReplayDivergence, match="event 3"):
        ReplayRunner(FIG2).replay(journal)


# ------------------------------------------------------------ bisect


def test_bisect_pinpoints_seeded_divergence(tmp_path):
    """The acceptance gate: a deliberately perturbed RNG stream at event
    K is localized to exactly K by both journal-diff and replay-probe
    bisection."""
    _runner, _service, clean = record_baseline(FIG2, tmp_path, "clean")
    _, clean_events, _ = read_journal(clean)
    for target in (1, 3, len(clean_events) - 1):
        perturbed = str(tmp_path / f"perturbed-{target}.jsonl")
        ReplayRunner(FIG2, perturb={
            "eid": target, "stream": "retry:segment",
        }).record(perturbed)
        _, perturbed_events, _ = read_journal(perturbed)

        divergence = first_divergence(clean_events, perturbed_events)
        assert divergence is not None
        assert divergence.eid == target
        assert divergence.field == "fingerprint"

        probed = bisect_replay(perturbed_events,
                               ReplayRunner(FIG2).fingerprint_at)
        assert probed is not None and probed.eid == target


def test_bisect_identical_runs_return_none(tmp_path):
    _r1, _s1, a = record_baseline(FIG2, tmp_path, "a")
    _r2, _s2, b = record_baseline(FIG2, tmp_path, "b")
    _, events_a, _ = read_journal(a)
    _, events_b, _ = read_journal(b)
    assert first_divergence(events_a, events_b) is None
    assert bisect_replay(events_a, ReplayRunner(FIG2).fingerprint_at) is None


def test_bisect_prefix_journal_diverges_at_missing(tmp_path):
    _r, _s, journal = record_baseline(FIG2, tmp_path)
    _, events, _ = read_journal(journal)
    divergence = first_divergence(events, events[:4])
    assert divergence is not None
    assert divergence.eid == 4 and divergence.field == "missing"


def test_first_divergence_nonmonotone_falls_back_to_scan():
    """Synthetic non-monotone input (matches after a mismatch): the
    safety check must still find the true first disagreement."""
    def ev(eid, fp):
        return JournalEvent(eid=eid, op="drain", fingerprint={"state": fp})

    a = [ev(0, "x"), ev(1, "x"), ev(2, "x"), ev(3, "x")]
    b = [ev(0, "x"), ev(1, "y"), ev(2, "x"), ev(3, "z")]
    divergence = first_divergence(a, b)
    assert divergence is not None and divergence.eid == 1


# ------------------------------------------------------------ CLI


def run_cli(*argv):
    from repro.cli import main

    return main(list(argv))


def test_cli_record_crash_resume_bisect(tmp_path, capsys):
    a = str(tmp_path / "a.jsonl")
    ra = str(tmp_path / "a.report")
    params = json.dumps(FIG2.params)
    assert run_cli("record", "--workload", "fig2-medical",
                   "--params", params, "--seed", "7",
                   "--journal", a, "--report", ra) == 0

    b = str(tmp_path / "b.jsonl")
    rb = str(tmp_path / "b.report")
    snaps = str(tmp_path / "snaps")
    assert run_cli("record", "--workload", "fig2-medical",
                   "--params", params, "--seed", "7",
                   "--journal", b, "--snapshot-dir", snaps,
                   "--snapshot-every", "2", "--crash-at", "4") == 3
    assert run_cli("replay", b, "--resume", "--snapshot-dir", snaps,
                   "--report", rb) == 0
    with open(ra, "rb") as fa, open(rb, "rb") as fb:
        assert fa.read() == fb.read()

    assert run_cli("bisect", a, b) == 0
    capsys.readouterr()

    p = str(tmp_path / "p.jsonl")
    runner = ReplayRunner(FIG2, perturb={"eid": 3, "stream": "x"})
    runner.record(p)
    assert run_cli("bisect", a, p) == 4
    out = capsys.readouterr().out
    assert "event 3" in out
    assert run_cli("bisect", p) == 4  # probe mode finds it too


def test_cli_replay_until(tmp_path):
    journal = str(tmp_path / "a.jsonl")
    assert run_cli("record", "--workload", "fig2-medical",
                   "--params", json.dumps(FIG2.params), "--seed", "7",
                   "--journal", journal) == 0
    assert run_cli("replay", journal, "--until", "3") == 0


def test_cli_replay_detects_divergence(tmp_path, capsys):
    journal = str(tmp_path / "p.jsonl")
    ReplayRunner(FIG2, perturb={"eid": 2, "stream": "x"}).record(journal)
    assert run_cli("replay", journal) == 2
    assert "DIVERGED" in capsys.readouterr().err


# ------------------------------------------------------- autopilot runs


def test_autopilot_journal_replays_with_economics_fingerprints(tmp_path):
    """The autopilot's budget/forecaster state rides in the replay
    fingerprints: a full replay verifies, and the recorded service's
    economics are live (spot tenants registered, budgets enforced)."""
    baseline_runner, baseline_service, journal = \
        record_baseline(AUTOPILOT, tmp_path, "autopilot")
    assert baseline_service.economics_fingerprint() is not None
    assert baseline_service.budget.active
    assert baseline_service.check_budget_accounting() == []
    tiers = {baseline_service.tier_of(f"tenant-{i:02d}") for i in range(4)}
    assert tiers == {"spot", "firm"}
    runner = ReplayRunner(AUTOPILOT)
    service, replayed = runner.replay(journal)
    assert len(replayed) == len(runner.script.commands)
    assert (runner.report_bytes(service)
            == baseline_runner.report_bytes(baseline_service))


def test_inert_autopilot_leaves_fingerprints_unchanged(tmp_path):
    """autopilot=False runs fingerprint exactly as before the autopilot
    existed — the economics key only appears when economics are live."""
    _, service, journal = record_baseline(TRACE, tmp_path, "inert")
    assert service.economics_fingerprint() is None
    config, events, _ = read_journal(journal)
    assert config["autopilot"] is False
    for event in events:
        assert "economics" not in json.dumps(event.fingerprint or {})
