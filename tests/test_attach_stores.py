"""Tests for shared standing stores across submissions (event services)."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def storage_app():
    app = AppBuilder("state")
    app.data("journal", size_gb=5)
    return app.build()


def writer_app(tag):
    app = AppBuilder(f"writer-{tag}")

    @app.task(name="append", work=1.0)
    def append(ctx):
        return tag

    journal = app.data("journal", size_gb=5)
    app.writes("append", journal, bytes_per_run=1 << 16)
    return app.build()


STORAGE_DEF = {"journal": {"resource": "ssd",
                           "distributed": {"replication": 2,
                                           "consistency": "sequential"}}}


def deploy_state(runtime):
    deployment = runtime.submit(storage_app(), STORAGE_DEF, tenant="svc",
                                persistent=True)
    runtime.drain()
    return deployment


def test_attached_store_not_replaced():
    runtime = UDCRuntime(build_datacenter(SPEC))
    deployment = deploy_state(runtime)
    ssd_used = runtime.datacenter.pool(DeviceType.SSD).total_used
    assert ssd_used == 10.0  # 2 x 5 GB, once

    for tag in ("a", "b", "c"):
        runtime.submit(writer_app(tag), None, tenant="svc",
                       attach_stores=deployment.stores)
    runtime.drain()
    # Still exactly one placement of the journal.
    assert runtime.datacenter.pool(DeviceType.SSD).total_used == 10.0


def test_attached_store_accumulates_cross_invocation_state():
    runtime = UDCRuntime(build_datacenter(SPEC))
    deployment = deploy_state(runtime)
    store = deployment.stores["journal"]

    for tag in ("a", "b", "c"):
        runtime.submit(writer_app(tag), None, tenant="svc",
                       attach_stores=deployment.stores)
    runtime.drain()
    # Three invocations each bulk-wrote once into the same store.
    writes = [op for op in store.op_log if op.op == "write"]
    assert len(writes) == 3
    # Data landed on both replicas (sequential protocol).
    assert all(len(r.data) == 3 for r in store.replicas)


def test_attached_store_billed_to_owner_only():
    runtime = UDCRuntime(build_datacenter(SPEC))
    deployment = deploy_state(runtime)
    invocation = runtime.submit(writer_app("x"), None, tenant="svc",
                                attach_stores=deployment.stores)
    results = runtime.drain()
    # The invocation's data object holds no allocations of its own.
    assert invocation.objects["journal"].allocations == []
    # The standing storage kept billing the deployment the whole window;
    # decommission finalizes that bill, which dwarfs the invocation's
    # task-compute-only bill.
    settled = runtime.decommission(deployment)
    assert settled > 0
    assert deployment.result.total_cost == pytest.approx(settled)
    # The invocation paid for its task compute, nothing for the storage
    # it merely attached to (its only allocations were the task's).
    assert invocation.result.total_cost > 0
    assert all(a.device_type == DeviceType.CPU
               for a in invocation.objects["append"].allocations)
    assert not runtime._owner_of


def test_attaching_unknown_store_name_is_ignored():
    """attach_stores entries that don't match a data module are harmless."""
    runtime = UDCRuntime(build_datacenter(SPEC))
    deployment = deploy_state(runtime)
    result = runtime.run(writer_app("y"), None, tenant="svc",
                         attach_stores={"journal": deployment.stores["journal"],
                                        "ghost": deployment.stores["journal"]})
    assert result.total_failures == 0


def test_heal_of_shared_store_bills_owner():
    runtime = UDCRuntime(build_datacenter(SPEC))
    deployment = deploy_state(runtime)
    # Long-running invocation attached to the store while a replica dies.
    app = AppBuilder("slow")

    @app.task(name="slowtask", work=100.0)
    def slowtask(ctx):
        return None

    journal = app.data("journal", size_gb=5)
    app.writes("slowtask", journal, bytes_per_run=1 << 16)
    runtime.submit(app.build(), None, tenant="svc",
                   attach_stores=deployment.stores)
    runtime.injector.fail_at(10.0, "fd:journal:r0")
    runtime.drain()
    # Healed replica exists and is owned by the deployment.
    store = deployment.stores["journal"]
    assert len(store.live_replicas()) == 2
    healed_alloc = store.placement.allocations[0]
    assert healed_alloc in deployment.objects["journal"].allocations
    # All meters close once the standing service is decommissioned.
    runtime.decommission(deployment)
    assert not runtime._owner_of
