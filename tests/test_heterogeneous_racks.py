"""Tests for heterogeneous rack profiles (specialized GPU/storage rows)."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

#: compute rows, GPU rows, storage rows — a realistic specialized fleet
PROFILES = [
    {DeviceType.CPU: 6, DeviceType.DRAM: 2},
    {DeviceType.GPU: 4, DeviceType.CPU: 2},
    {DeviceType.SSD: 3, DeviceType.HDD: 2, DeviceType.NVM: 1},
]


def hetero_dc(pods=1, racks=6):
    return build_datacenter(
        DatacenterSpec(pods=pods, racks_per_pod=racks,
                       rack_profiles=PROFILES)
    )


def test_profiles_assigned_round_robin():
    dc = hetero_dc(racks=6)
    # Rack 0/3: compute; rack 1/4: GPU; rack 2/5: storage.
    for rack in (0, 3):
        types = {d.device_type for d in dc.devices
                 if d.location.rack == rack}
        assert types == {DeviceType.CPU, DeviceType.DRAM}
    for rack in (1, 4):
        types = {d.device_type for d in dc.devices
                 if d.location.rack == rack}
        assert types == {DeviceType.GPU, DeviceType.CPU}
    for rack in (2, 5):
        types = {d.device_type for d in dc.devices
                 if d.location.rack == rack}
        assert types == {DeviceType.SSD, DeviceType.HDD, DeviceType.NVM}


def test_pool_set_covers_union_of_profiles():
    dc = hetero_dc()
    for device_type in (DeviceType.CPU, DeviceType.GPU, DeviceType.DRAM,
                        DeviceType.SSD, DeviceType.HDD, DeviceType.NVM):
        assert device_type in dc.pools


def test_homogeneous_default_unchanged():
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2))
    rack0 = {d.device_type for d in dc.devices if d.location.rack == 0}
    rack1 = {d.device_type for d in dc.devices if d.location.rack == 1}
    assert rack0 == rack1


def test_app_runs_on_specialized_fleet():
    app = AppBuilder("hetero")

    @app.task(name="crunch", work=5.0, devices={DeviceType.GPU})
    def crunch(ctx):
        return "done"

    archive = app.data("archive", size_gb=10)
    app.writes("crunch", archive, bytes_per_run=1 << 20)
    dag = app.build()
    runtime = UDCRuntime(hetero_dc())
    result = runtime.run(dag, {
        "crunch": {"resource": {"device": "gpu", "amount": 2}},
        "archive": {"resource": "ssd",
                    "distributed": {"replication": 2}},
    })
    assert result.outputs["crunch"] == "done"
    crunch_rack = result.objects["crunch"].location.rack
    assert crunch_rack in (1, 4)  # placed on a GPU row
    for alloc in result.objects["archive"].allocations:
        assert alloc.device.location.rack in (2, 5)  # storage rows


def test_replica_anti_affinity_across_storage_rows():
    """With only two storage rows, a 2x replica set lands on both."""
    app = AppBuilder("spread")
    app.data("d", size_gb=5)
    runtime = UDCRuntime(hetero_dc())
    result = runtime.run(app.build(), {
        "d": {"resource": "ssd", "distributed": {"replication": 2}},
    })
    racks = {a.device.location.rack
             for a in result.objects["d"].allocations}
    assert racks == {2, 5}


def test_locality_pulls_compute_toward_gpu_row_with_data():
    """A GPU task reading SSD data cannot co-rack with it (different
    rows); the scheduler still places it on the nearest GPU row and the
    transfer happens — specialization is a constraint locality must
    respect, not break."""
    app = AppBuilder("cross-row")

    @app.task(name="train", work=5.0, devices={DeviceType.GPU})
    def train(ctx):
        return None

    dataset = app.data("dataset", size_gb=20)
    app.reads("train", dataset, bytes_per_run=64 << 20)
    runtime = UDCRuntime(hetero_dc())
    result = runtime.run(app.build(), {
        "dataset": {"resource": "ssd"},
    })
    assert result.total_failures == 0
    assert result.objects["train"].location.rack in (1, 4)
