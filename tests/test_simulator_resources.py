"""Unit tests for Store, Gate, and CapacityResource."""

import pytest

from repro.simulator import CapacityResource, Gate, SimulationError, Simulator, Store


# ---------------------------------------------------------------- Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def worker():
        yield store.put("item")
        value = yield store.get()
        return value

    process = sim.process(worker())
    assert sim.run(until_event=process) == "item"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        value = yield store.get()
        return (value, sim.now)

    def producer():
        yield sim.timeout(3.0)
        yield store.put("late")

    consumer_p = sim.process(consumer())
    sim.process(producer())
    assert sim.run(until_event=consumer_p) == ("late", 3.0)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for index in range(3):
        store.put(index)
    received = []

    def consumer():
        for _ in range(3):
            value = yield store.get()
            received.append(value)

    process = sim.process(consumer())
    sim.run(until_event=process)
    assert received == [0, 1, 2]


def test_store_getters_served_fifo():
    sim = Simulator()
    store = Store(sim)
    results = {}

    def consumer(tag):
        value = yield store.get()
        results[tag] = value

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.run(until=0.5)
    store.put("a")
    store.put("b")
    sim.run(until=1.0)
    assert results == {"first": "a", "second": "b"}


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    progress = []

    def producer():
        yield store.put("x")
        progress.append(("x", sim.now))
        yield store.put("y")
        progress.append(("y", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        yield store.get()

    producer_p = sim.process(producer())
    sim.process(consumer())
    sim.run(until_event=producer_p)
    assert progress[0] == ("x", 0.0)
    assert progress[1][1] == 5.0  # second put admitted when capacity freed


def test_store_capacity_validation():
    with pytest.raises(SimulationError):
        Store(Simulator(), capacity=0)


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


# ---------------------------------------------------------------- Gate


def test_gate_open_releases_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    released = []

    def waiter(tag):
        yield gate.wait()
        released.append((tag, sim.now))

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.call_at(2.0, gate.open)
    sim.run()
    assert released == [("a", 2.0), ("b", 2.0)]


def test_open_gate_does_not_block():
    sim = Simulator()
    gate = Gate(sim, open_=True)

    def waiter():
        yield gate.wait()
        return sim.now

    process = sim.process(waiter())
    assert sim.run(until_event=process) == 0.0


def test_gate_reclose():
    sim = Simulator()
    gate = Gate(sim, open_=True)
    gate.close()
    assert not gate.is_open
    event = gate.wait()
    assert not event.triggered
    gate.open()
    assert event.triggered


# ---------------------------------------------------------------- CapacityResource


def test_capacity_acquire_release():
    sim = Simulator()
    resource = CapacityResource(sim, capacity=2)

    def worker():
        yield resource.acquire(2)
        assert resource.available == 0
        resource.release(2)
        return resource.available

    process = sim.process(worker())
    assert sim.run(until_event=process) == 2


def test_capacity_blocks_when_full():
    sim = Simulator()
    resource = CapacityResource(sim, capacity=1)
    timeline = []

    def holder():
        yield resource.acquire()
        yield sim.timeout(4.0)
        resource.release()

    def waiter():
        yield resource.acquire()
        timeline.append(sim.now)
        resource.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert timeline == [4.0]


def test_capacity_no_overtaking():
    """A small request queued behind a large one must not jump the queue."""
    sim = Simulator()
    resource = CapacityResource(sim, capacity=4)
    order = []

    def holder():
        yield resource.acquire(4)
        yield sim.timeout(1.0)
        resource.release(4)

    def big():
        yield resource.acquire(3)
        order.append("big")
        resource.release(3)

    def small():
        yield resource.acquire(1)
        order.append("small")
        resource.release(1)

    sim.process(holder())
    sim.process(big())
    sim.process(small())
    sim.run()
    assert order == ["big", "small"]


def test_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        CapacityResource(sim, capacity=0)
    resource = CapacityResource(sim, capacity=2)
    with pytest.raises(SimulationError):
        resource.acquire(3)
    with pytest.raises(SimulationError):
        resource.release(1)  # nothing held
