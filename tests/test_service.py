"""Tests for the multi-tenant serving layer (PR 4).

Covers the tentpole contract — quotas at the front door, weighted
fair-share ordering under contention, result-cache hit/miss/eviction,
and batched-vs-serial placement identity on the fig2 medical pipeline —
plus the satellite API work: the fluent definition builder and the
``dag=`` deprecation shim.
"""

import warnings

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.cli import main as cli_main
from repro.core.admission import FifoAdmission, WeightedFairShare
from repro.core.builder import define
from repro.core.runtime import UDCRuntime
from repro.core.spec import SpecError, parse_definition
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service import QuotaExceeded, TenantQuota, UDCService
from repro.workloads.medical import build_medical_app

#: one rack, 16 GPUs total: a 16-GPU job owns the whole datacenter
TINY = DatacenterSpec(
    pods=1, racks_per_pod=1,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 2,
                      DeviceType.DRAM: 1, DeviceType.SSD: 1},
)


def gpu_job(name, gpus=16, work=20.0):
    app = AppBuilder(name)

    @app.task(name="train", work=work, devices={DeviceType.GPU})
    def train(ctx):
        return name

    return app.build(), {"train": {"resource": {"device": "gpu",
                                                "amount": gpus}}}


def cpu_job(name, work=2.0):
    app = AppBuilder(name)

    @app.task(name="crunch", work=work)
    def crunch(ctx):
        return name

    return app.build(), {"crunch": {"resource": "cheapest"}}


# ---------------------------------------------------------------- quotas


def test_in_flight_quota_rejects_at_the_front_door():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("t", quota=TenantQuota(max_in_flight=2))
    for index in range(2):
        app, spec = cpu_job(f"job{index}")
        service.submit("t", app, spec)
    app, spec = cpu_job("job2")
    with pytest.raises(QuotaExceeded):
        service.submit("t", app, spec)
    assert service.ledger.usage("t").rejected == 1
    # Completion frees the slots: the same submission is accepted after.
    service.drain()
    handle = service.submit("t", app, spec)
    service.drain()
    assert handle.status == "done"


def test_lifetime_quota_is_cumulative():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("t", quota=TenantQuota(max_submissions=2))
    for index in range(2):
        app, spec = cpu_job(f"job{index}")
        service.submit("t", app, spec)
        service.drain()
    app, spec = cpu_job("job2")
    with pytest.raises(QuotaExceeded):
        service.submit("t", app, spec)


def test_quota_rejection_spends_no_capacity():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("t", quota=TenantQuota(max_in_flight=1))
    app, spec = cpu_job("held")
    service.submit("t", app, spec)
    with pytest.raises(QuotaExceeded):
        service.submit("t", *cpu_job("rejected"))
    # The rejected submission never reached the runtime.
    assert len(service.runtime._submissions) == 0  # still buffered
    service.drain()
    assert service.ledger.usage("t").completed == 1


# ------------------------------------------------------- fair share


def test_fair_share_order_under_contention():
    """Weight-3 tenant gets 3 admissions for light tenant's 1, and the
    exact interleaving is deterministic (stride scheduling + seq)."""
    service = UDCService(
        build_datacenter(TINY),
        policy=WeightedFairShare(weights={"heavy": 3.0, "light": 1.0}),
    )
    service.register_tenant("heavy", weight=3.0)
    service.register_tenant("light", weight=1.0)
    handles = []
    for index in range(3):  # interleaved submission: h, l, h, l, h, l
        handles.append(service.submit("heavy", *gpu_job(f"h{index}")))
        handles.append(service.submit("light", *gpu_job(f"l{index}")))
    service.drain()
    assert all(h.status == "done" for h in handles)
    started = sorted(handles, key=lambda h: h.submission.submitted_at)
    order = [h.app for h in started]
    # h0 admits first (all vtimes tied, lowest seq).  light then trails
    # one admission for every three heavy ones.
    assert order == ["h0", "l0", "h1", "h2", "l1", "l2"]


def test_fifo_policy_preserves_submission_order():
    service = UDCService(build_datacenter(TINY), policy=FifoAdmission())
    service.register_tenant("heavy", weight=3.0)
    service.register_tenant("light", weight=1.0)
    handles = []
    for index in range(2):
        handles.append(service.submit("heavy", *gpu_job(f"h{index}")))
        handles.append(service.submit("light", *gpu_job(f"l{index}")))
    service.drain()
    started = sorted(handles, key=lambda h: h.submission.submitted_at)
    assert [h.app for h in started] == ["h0", "l0", "h1", "l1"]


def test_fairness_index_reporting():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("a")
    service.register_tenant("b")
    service.submit("a", *cpu_job("a0"))
    service.submit("b", *cpu_job("b0"))
    service.drain()
    assert service.fairness_index() == pytest.approx(1.0)
    service.submit("a", *cpu_job("a1"))
    service.submit("a", *cpu_job("a2"))
    service.drain()
    assert service.fairness_index() < 1.0


# ----------------------------------------------------------- result cache


def test_result_cache_hit_miss_eviction():
    service = UDCService(build_datacenter(TINY), result_cache_capacity=1)
    app, spec = cpu_job("memo")
    first = service.submit("t", app, spec, inputs={"crunch": 1})
    service.drain()
    assert first.status == "done"
    assert service.cache_stats.misses == 1 and service.cache_stats.size == 1

    # Identical resubmission: served from cache, born done, cost credited.
    hit = service.submit("t", app, spec, inputs={"crunch": 1})
    assert hit.status == "cached" and hit.done
    assert hit.result is first.result
    assert service.cache_stats.hits == 1
    assert service.ledger.usage("t").cost_saved == pytest.approx(
        first.result.total_cost)

    # Different inputs miss; finishing evicts the older entry (cap 1).
    other = service.submit("t", app, spec, inputs={"crunch": 2})
    service.drain()
    assert other.status == "done"
    assert service.cache_stats.evictions == 1

    # The evicted entry misses again.
    again = service.submit("t", app, spec, inputs={"crunch": 1})
    assert again.status == "pending"
    assert service.cache_stats.hits == 1
    assert service.cache_stats.misses == 3
    service.drain()


def test_cached_submission_skips_quota():
    service = UDCService(build_datacenter(TINY))
    service.register_tenant("t", quota=TenantQuota(max_submissions=1))
    app, spec = cpu_job("memo")
    service.submit("t", app, spec, inputs={"crunch": 1})
    service.drain()
    # Lifetime quota is exhausted, but a cache hit is served anyway: it
    # consumes no capacity.
    hit = service.submit("t", app, spec, inputs={"crunch": 1})
    assert hit.status == "cached"
    with pytest.raises(QuotaExceeded):
        service.submit("t", app, spec, inputs={"crunch": 2})


def test_cache_capacity_zero_disables_memoization():
    service = UDCService(build_datacenter(TINY), result_cache_capacity=0)
    app, spec = cpu_job("memo")
    service.submit("t", app, spec, inputs={"crunch": 1})
    service.drain()
    second = service.submit("t", app, spec, inputs={"crunch": 1})
    assert second.status == "pending"
    service.drain()
    assert service.cache_stats.size == 0


# ----------------------------------------- batched vs serial placement


def _placement_bytes(service):
    """Serialize every submission's placements at physical-device
    granularity.  Device ids are globally numbered across datacenter
    instances, so they are normalized to per-datacenter positions."""
    datacenter = service.runtime.datacenter
    position = {device.device_id: index
                for index, device in enumerate(datacenter.devices)}
    rows = []
    for handle in service.handles:
        result = handle.result
        placed = []
        for name in sorted(result.objects):
            obj = result.objects[name]
            placed.append((name, [(position[a.device.device_id], a.amount)
                                  for a in obj.allocations]))
        table = [(row.name, row.kind, row.device, row.amount, row.env,
                  row.replication) for row in result.rows]
        rows.append((placed, table))
    return repr(rows).encode()


def test_batched_placements_byte_identical_on_medical():
    """Batched mode (admission memo + batch telemetry) must not change a
    single placement decision vs serial submission in the same order."""
    app, definition = build_medical_app()
    streams = {}
    for batched in (False, True):
        service = UDCService(build_datacenter(DatacenterSpec()),
                             batched=batched, result_cache_capacity=0)
        for index in range(4):
            service.submit("hospital", app, definition,
                           inputs={"A1": index})
        service.drain()
        assert all(h.status == "done" for h in service.handles)
        streams[batched] = _placement_bytes(service)
    assert streams[False] == streams[True]


def test_plan_rows_identical_under_batch_round():
    # plan() releases its allocations, so the same runtime can preview
    # the same stream twice — once serial, once under a batch round —
    # and must report identical rows.
    app, definition = build_medical_app()
    runtime = UDCRuntime(build_datacenter(DatacenterSpec()))
    serial_rows = [runtime.plan(app, definition) for _ in range(3)]
    with runtime.scheduler.batch_round(3):
        batched_rows = [runtime.plan(app, definition) for _ in range(3)]
    assert repr(serial_rows) == repr(batched_rows)


def test_admission_memo_reused_across_identical_apps():
    app, definition = build_medical_app()
    service = UDCService(build_datacenter(DatacenterSpec()),
                         result_cache_capacity=0)
    for index in range(3):
        service.submit("hospital", app, definition, inputs={"A1": index})
    service.drain()
    memo = service.runtime.admission_memo
    assert memo is not None
    assert memo.stats.hits == 2  # first admission built the template


# -------------------------------------------------- deprecation shim


def test_dag_keyword_warns_and_still_works():
    runtime = UDCRuntime(build_datacenter(TINY))
    app, spec = cpu_job("legacy")
    with pytest.warns(DeprecationWarning, match="dag=.*deprecated"):
        result = runtime.run(dag=app, definition=spec)
    assert result.outputs["crunch"] == "legacy"


def test_dag_keyword_warns_on_submit_and_plan():
    runtime = UDCRuntime(build_datacenter(TINY))
    app, spec = cpu_job("legacy")
    with pytest.warns(DeprecationWarning):
        runtime.plan(dag=app, definition=spec)
    with pytest.warns(DeprecationWarning):
        submission = runtime.submit(dag=app, definition=spec)
    runtime.drain()
    assert submission.status == "done"


def test_both_app_and_dag_is_an_error():
    runtime = UDCRuntime(build_datacenter(TINY))
    app, spec = cpu_job("legacy")
    with pytest.raises(TypeError, match="both 'app' and the deprecated"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runtime.run(app, dag=app, definition=spec)
    with pytest.raises(TypeError, match="missing required argument"):
        runtime.run(definition=spec)
    with pytest.raises(TypeError, match="unexpected keyword"):
        runtime.run(app, spec, dagg=app)


# ------------------------------------------------------ fluent builder


def test_builder_compiles_identically_to_raw_dict():
    raw = {
        "infer": {"resource": {"device": "gpu", "amount": 1},
                  "execenv": {"isolation": "strong"}},
        "store": {"resource": "ssd",
                  "distributed": {"replication": 2,
                                  "consistency": "sequential"}},
    }
    built = (define()
             .module("infer").resource(device="gpu", amount=1)
                             .execenv(isolation="strong")
             .module("store").resource("ssd")
                             .distributed(replication=2,
                                          consistency="sequential"))
    assert repr(sorted(built.build().bundles.items())) == \
        repr(sorted(parse_definition(raw).bundles.items()))


def test_builder_spec_errors_match_raw_dict():
    with pytest.raises(SpecError) as from_builder:
        define().module("x").resource(device="quantum").build()
    with pytest.raises(SpecError) as from_raw:
        parse_definition({"x": {"resource": {"device": "quantum"}}})
    assert str(from_builder.value) == str(from_raw.value)


def test_builder_accepted_by_runtime_and_service():
    runtime = UDCRuntime(build_datacenter(TINY))
    app, _ = cpu_job("fluent")
    builder = define().module("crunch").resource("cheapest")
    result = runtime.run(app, builder)
    assert result.outputs["crunch"] == "fluent"

    service = UDCService(build_datacenter(TINY))
    handle = service.submit("t", app, builder)
    service.drain()
    assert handle.status == "done"


# ----------------------------------------------------------------- CLI


def test_cli_serve_smoke(capsys):
    rc = cli_main(["serve", "--tenants", "3", "--minutes", "5",
                   "--rate", "0.3", "--round-every", "4", "--json"])
    assert rc == 0
    out = capsys.readouterr().out
    assert '"fairness_completed"' in out
    assert '"tenants"' in out


# ------------------------------------------------- handle result access


def test_outputs_raises_before_drain_not_silent_empty():
    """Regression: an unfinished handle's ``outputs`` used to answer
    ``{}`` — indistinguishable from "finished with no outputs", hiding
    lost results.  It must raise until the drain finalizes the result."""
    from repro.service import ResultNotReady

    service = UDCService(build_datacenter(TINY))
    dag, definition = cpu_job("r1")
    handle = service.submit("t", dag, definition)
    assert handle.status == "pending"  # batched: buffered, not dispatched
    with pytest.raises(ResultNotReady, match="no result yet"):
        handle.outputs
    assert handle.outputs_or_none() is None

    service.drain()
    assert handle.done
    assert handle.outputs["crunch"] == "r1"
    assert handle.outputs_or_none() == handle.outputs


def test_outputs_ready_immediately_for_cache_hits():
    service = UDCService(build_datacenter(TINY))
    dag, definition = cpu_job("r2")
    first = service.submit("t", dag, definition)
    service.drain()
    hit = service.submit("t", dag, definition)
    assert hit.cached
    assert hit.outputs == first.outputs
