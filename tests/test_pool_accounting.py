"""Incremental capacity accounting: live-capacity unification + index sync.

Covers the PR-2 accounting rebuild: one definition of "live capacity"
(``ResourcePool._device_is_live``) serves ``total_capacity``,
``total_used``, ``utilization``, the ``_sample`` integral, and the
utilization report; cached device counters never drift from a re-sum;
and the placement index follows failures, repairs, resizes, rehomes,
and releases.
"""

import pytest

from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceType
from repro.hardware.fabric import Location
from repro.hardware.pools import AllocationError, ResourcePool


def make_pool(devices=4, indexed=True, clock=None, device_type=DeviceType.CPU):
    pool = ResourcePool(device_type, clock=clock, indexed=indexed)
    for index in range(devices):
        pool.add_device(Device(
            spec=DEFAULT_SPECS[device_type],
            location=Location(0, index % 2, index),
        ))
    return pool


@pytest.mark.parametrize("indexed", [True, False])
def test_live_capacity_unified_across_failure(indexed):
    """Failing a loaded device removes its capacity AND its used amount
    from every aggregate at once; repair restores both."""
    pool = make_pool(devices=2, indexed=indexed)
    alloc = pool.allocate(16, "a", device=pool.devices[0])
    pool.allocate(8, "b", device=pool.devices[1])
    assert pool.total_capacity == 64
    assert pool.total_used == 24
    assert pool.utilization() == pytest.approx(24 / 64)

    pool.devices[0].failed = True
    assert pool.total_capacity == 32
    assert pool.total_used == 8
    assert pool.total_free == 24
    assert pool.utilization() == pytest.approx(8 / 32)

    pool.devices[0].failed = False
    assert pool.total_capacity == 64
    assert pool.total_used == 24
    pool.check_accounting()
    # Releasing the allocation that lived through the failure still
    # settles cleanly.
    pool.release(alloc)
    assert pool.total_used == 8
    pool.check_accounting()


def test_release_on_failed_device_keeps_totals_consistent():
    """A failed device's used was already removed from the live total;
    releasing its allocations must not double-subtract."""
    pool = make_pool(devices=2)
    alloc = pool.allocate(16, "a", device=pool.devices[0])
    pool.devices[0].failed = True
    assert pool.total_used == 0
    pool.release(alloc)
    assert pool.total_used == 0
    pool.devices[0].failed = False
    assert pool.total_used == 0
    pool.check_accounting()


def test_breaker_gating_does_not_change_capacity():
    """Open breakers steer placement away but never shrink live
    capacity — a gated device is still powered and billed."""
    pool = make_pool(devices=2)
    gated = pool.devices[0]
    pool.admission_filter = lambda d: d is not gated
    before_cap, before_used = pool.total_capacity, pool.total_used
    alloc = pool.allocate(4, "a")
    assert alloc.device is not gated
    assert pool.total_capacity == before_cap
    assert pool.total_used == before_used + 4
    # All gated: placement falls back to the ungated order rather than
    # failing (degraded beats unplaceable) — and capacity still counts.
    pool.admission_filter = lambda d: False
    fallback = pool.allocate(4, "b")
    assert fallback.amount == 4
    pool.check_accounting()


def test_incremental_matches_recompute_through_churn():
    pool = make_pool(devices=6)
    live = []
    for step in range(200):
        if step % 3 == 2 and live:
            pool.release(live.pop(step % len(live)))
        else:
            amount = 0.25 * (1 + step % 8)
            try:
                live.append(pool.allocate(amount, f"t{step % 5}"))
            except AllocationError:
                if live:
                    pool.release(live.pop(0))
        if step % 4 == 0 and live:
            target = min(live[0].amount * 2, 4.0)
            try:
                pool.resize(live[0], target)
            except AllocationError:
                pass
        pool.check_accounting()
    for alloc in live:
        pool.release(alloc)
    pool.check_accounting()
    assert pool.total_used == 0.0


def test_index_follows_rehome():
    pool = make_pool(devices=3)
    a = pool.allocate(8, "a", device=pool.devices[0])
    pool.allocate(4, "b", device=pool.devices[1])
    pool.rehome(a, pool.devices[1])
    assert a.device is pool.devices[1]
    assert pool.devices[0].used == 0
    assert pool.devices[1].used == 12
    assert pool.devices[1].tenants == {"a", "b"}
    pool.check_accounting()
    # Best-fit now sees device 1 as the fullest fitting device.
    best = pool.allocate(2, "c")
    assert best.device is pool.devices[1]


def test_peak_used_incremental():
    pool = make_pool(devices=2)
    a = pool.allocate(10, "a")
    b = pool.allocate(20, "b")
    pool.release(a)
    assert pool.peak_used == 30
    pool.resize(b, 32)
    assert pool.peak_used == 32
    pool.check_accounting()


def test_mean_utilization_time_weighted_with_failure():
    clock = {"t": 0.0}
    pool = make_pool(devices=1, clock=lambda: clock["t"])
    pool.allocate(16, "a")     # 50% of one 32-core device
    clock["t"] = 10.0
    pool.allocate(8, "a")      # samples [0,10) at 50%
    clock["t"] = 20.0
    # 10s @ 16 + 10s @ 24 over 20s * 32 cap
    assert pool.mean_utilization() == pytest.approx((160 + 240) / (20 * 32))


def test_max_free_and_devices_by_seq():
    pool = make_pool(devices=3)
    assert pool.max_free() == 32
    pool.allocate(30, "a", device=pool.devices[0])
    pool.allocate(12, "a", device=pool.devices[1])
    assert pool.max_free() == 32
    pool.allocate(5, "a", device=pool.devices[2])
    assert pool.max_free() == 27
    ordered = pool.devices_by_seq()
    assert [d.seq for d in ordered] == sorted(d.seq for d in pool.devices)
    pool.devices[2].failed = True
    assert pool.max_free() == 20


def test_live_rack_locations_tracks_failures():
    pool = make_pool(devices=4)  # racks 0 and 1, two devices each
    racks = pool.live_rack_locations()
    assert [(r.pod, r.rack) for r in racks] == [(0, 0), (0, 1)]
    for device in pool.devices:
        if device.location.rack == 1:
            device.failed = True
    racks = pool.live_rack_locations()
    assert [(r.pod, r.rack) for r in racks] == [(0, 0)]


def test_tenant_refcounts_clear_single_tenant_pin():
    pool = make_pool(devices=1)
    first = pool.allocate(1, "alice", single_tenant=True)
    second = pool.allocate(1, "alice")
    pool.release(first)
    # Alice still holds an allocation: the pin must survive.
    assert pool.devices[0].single_tenant_of == "alice"
    pool.release(second)
    assert pool.devices[0].single_tenant_of is None
    pool.check_accounting()
