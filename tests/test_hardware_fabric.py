"""Tests for the fabric latency/bandwidth model and topology builder."""

import pytest

from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Fabric, Location, transfer_plan_cost
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.simulator import Simulator


def make_fabric():
    return Fabric(Simulator())


def test_latency_hierarchy():
    fabric = make_fabric()
    a = Location(0, 0, 0)
    same_rack = Location(0, 0, 1)
    other_rack = Location(0, 1, 0)
    other_pod = Location(1, 0, 0)
    assert fabric.latency(a, a) == 0.0
    assert fabric.latency(a, same_rack) < fabric.latency(a, other_rack)
    assert fabric.latency(a, other_rack) < fabric.latency(a, other_pod)


def test_hop_kinds():
    fabric = make_fabric()
    a = Location(0, 0, 0)
    assert fabric.hop_kind(a, a) == "local"
    assert fabric.hop_kind(a, Location(0, 0, 5)) == "rack"
    assert fabric.hop_kind(a, Location(0, 3, 0)) == "pod"
    assert fabric.hop_kind(a, Location(2, 0, 0)) == "dc"


def test_transfer_time_includes_serialization():
    fabric = make_fabric()
    src, dst = Location(0, 0, 0), Location(0, 0, 1)
    small = fabric.transfer_time(src, dst, 1000)
    large = fabric.transfer_time(src, dst, 10_000_000)
    assert large > small
    # 10 MB at 100 Gbps = 0.8 ms of serialization
    assert large == pytest.approx(fabric.intra_rack_latency_s + 8e-4)


def test_local_transfer_free():
    fabric = make_fabric()
    loc = Location(0, 0, 0)
    assert fabric.transfer_time(loc, loc, 10**9) == 0.0


def test_send_delivers_after_delay():
    sim = Simulator()
    fabric = Fabric(sim)
    event = fabric.send(Location(0, 0, 0), Location(0, 1, 0), 1_000_000)
    sim.run()
    message = event.value
    assert message.size_bytes == 1_000_000
    assert sim.now == pytest.approx(fabric.transfer_time(
        Location(0, 0, 0), Location(0, 1, 0), 1_000_000))


def test_stats_accumulate():
    sim = Simulator()
    fabric = Fabric(sim)
    fabric.send(Location(0, 0, 0), Location(0, 0, 1), 100)       # rack
    fabric.send(Location(0, 0, 0), Location(0, 1, 0), 200)       # pod
    fabric.send(Location(0, 0, 0), Location(1, 0, 0), 400)       # dc
    sim.run()
    assert fabric.stats.messages == 3
    assert fabric.stats.bytes_total == 700
    assert fabric.stats.bytes_cross_rack == 600
    assert fabric.stats.bytes_cross_pod == 400
    assert fabric.stats.by_hop == {"rack": 1, "pod": 1, "dc": 1}


def test_via_pays_both_hops_and_stamps():
    sim = Simulator()
    fabric = Fabric(sim)
    switch = Location(0, -1, 0)
    stamped = []
    fabric.attach_sequencer(switch, lambda m: stamped.append(m))
    src, dst = Location(0, 0, 0), Location(0, 1, 0)
    direct = fabric.transfer_time(src, dst, 1000)
    event = fabric.send(src, dst, 1000, via=switch)
    sim.run()
    assert sim.now > direct  # two hops cost more than one
    assert stamped and stamped[0] is event.value


def test_multicast_counts_each_destination():
    sim = Simulator()
    fabric = Fabric(sim)
    events = fabric.multicast(
        Location(0, 0, 0), [Location(0, 1, 0), Location(0, 2, 0)], 100
    )
    sim.run()
    assert len(events) == 2
    assert fabric.stats.messages == 2


def test_transfer_plan_cost_sums():
    fabric = make_fabric()
    a, b = Location(0, 0, 0), Location(0, 1, 0)
    moves = [(a, b, 1000), (b, a, 1000)]
    assert transfer_plan_cost(fabric, moves) == pytest.approx(
        2 * fabric.transfer_time(a, b, 1000)
    )


# ------------------------------------------------------------- topology


def test_build_datacenter_counts():
    spec = DatacenterSpec(pods=2, racks_per_pod=3)
    dc = build_datacenter(spec)
    per_rack = sum(spec.devices_per_rack.values())
    assert len(dc.devices) == 2 * 3 * per_rack
    assert len(dc.switch_locations) == 2
    assert len(dc.rack_locations()) == 6


def test_pools_wired_to_sim_clock():
    dc = build_datacenter()
    pool = dc.pool(DeviceType.CPU)
    alloc = pool.allocate(16, "t")
    dc.sim.timeout(100.0)
    dc.sim.run()
    assert pool.mean_utilization() > 0


def test_find_device():
    dc = build_datacenter()
    device = dc.devices[0]
    assert dc.find_device(device.device_id) is device
    assert dc.find_device("nope") is None


def test_devices_at_location():
    dc = build_datacenter()
    loc = dc.devices[0].location
    assert dc.devices[0] in dc.devices_at(loc)


def test_unknown_pool_raises():
    dc = build_datacenter(DatacenterSpec(devices_per_rack={DeviceType.CPU: 1}))
    with pytest.raises(KeyError):
        dc.pool(DeviceType.TPU)
