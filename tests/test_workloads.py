"""Tests for workload generators and the medical app definition."""

import pytest

from repro.workloads.generators import (
    ARCHETYPES,
    heterogeneous_mix,
    skewed_demands,
)
from repro.workloads.inference import poisson_inference_trace
from repro.workloads.medical import build_medical_app, table1_definition


def test_heterogeneous_mix_deterministic():
    a = heterogeneous_mix(100, seed=5)
    b = heterogeneous_mix(100, seed=5)
    assert [d.name for d in a.demands] == [d.name for d in b.demands]
    assert a.totals() == b.totals()
    assert heterogeneous_mix(100, seed=6).totals() != a.totals()


def test_heterogeneous_mix_shapes_valid():
    mix = heterogeneous_mix(200, seed=1)
    assert len(mix) == 200
    for demand in mix.demands:
        assert demand.cpus > 0 and demand.mem_gb > 0
        assert demand.gpus == int(demand.gpus)  # whole GPUs
        assert 0.55 <= demand.duty <= 0.95


def test_archetype_weights_normalized_enough():
    assert sum(a[4] for a in ARCHETYPES) == pytest.approx(1.0)


def test_mix_validation():
    with pytest.raises(ValueError):
        heterogeneous_mix(-1)
    with pytest.raises(ValueError):
        heterogeneous_mix(1, duty_range=(0.9, 0.5))


def test_skewed_mix_fractions():
    mix = skewed_demands(1000, cpu_heavy_fraction=0.7, seed=2)
    cpu_heavy = sum(1 for d in mix.demands if d.cpus == 8.0)
    assert 600 < cpu_heavy < 800
    with pytest.raises(ValueError):
        skewed_demands(10, cpu_heavy_fraction=1.5)


def test_inference_trace_rate_and_determinism():
    trace = poisson_inference_trace(rate_hz=0.5, horizon_s=2000, seed=4)
    # Expect ~1000 arrivals; allow generous slack.
    assert 800 < len(trace) < 1200
    assert trace.mean_interarrival_s == pytest.approx(2.0, rel=0.2)
    again = poisson_inference_trace(rate_hz=0.5, horizon_s=2000, seed=4)
    assert [r.arrival_s for r in again.requests] == \
        [r.arrival_s for r in trace.requests]


def test_inference_trace_sorted_and_bounded():
    trace = poisson_inference_trace(rate_hz=0.1, horizon_s=500, seed=1)
    arrivals = [r.arrival_s for r in trace.requests]
    assert arrivals == sorted(arrivals)
    assert all(0 <= t < 500 for t in arrivals)


def test_burstiness_increases_count():
    calm = poisson_inference_trace(rate_hz=0.1, horizon_s=5000, seed=7)
    bursty = poisson_inference_trace(rate_hz=0.1, horizon_s=5000, seed=7,
                                     burstiness=0.5)
    assert len(bursty) > len(calm)


def test_trace_validation():
    with pytest.raises(ValueError):
        poisson_inference_trace(rate_hz=0, horizon_s=10)
    with pytest.raises(ValueError):
        poisson_inference_trace(rate_hz=1, horizon_s=10, burstiness=1.0)


def test_medical_app_modules_match_figure2():
    dag, definition = build_medical_app()
    assert set(dag.modules) == {"A1", "A2", "A3", "A4", "B1", "B2",
                                "S1", "S2", "S3", "S4"}
    assert set(definition) == set(dag.modules)


def test_table1_definition_parses():
    from repro.core.spec import parse_definition

    parsed = parse_definition(table1_definition())
    assert parsed.bundle_for("S1").distributed.replication.factor == 3
    assert parsed.bundle_for("A4").execenv.single_tenant


def test_medical_dag_valid_and_staged():
    dag, _definition = build_medical_app()
    dag.validate()
    stages = dag.task_stages()
    flat = [name for stage in stages for name in stage]
    assert sorted(flat) == ["A1", "A2", "A3", "A4", "B1", "B2"]
    # A4 strictly after A2 and A3; B2 after B1.
    position = {name: i for i, stage in enumerate(stages) for name in stage}
    assert position["A4"] > position["A2"]
    assert position["A4"] > position["A3"]
    assert position["B2"] > position["B1"]
    # B1 reads S1 which A4 writes: analytics follows diagnosis.
    assert position["B1"] > position["A4"]
