"""Tests for monolithic servers, bin packing, and the instance catalog."""

import pytest

from repro.hardware.catalog import UNIT_PRICES, default_catalog
from repro.hardware.server import (
    Server,
    ServerCluster,
    ServerSpec,
    WorkloadDemand,
)

SPEC = ServerSpec(cpus=32, mem_gb=128, gpus=0, name="std")


def test_server_place_and_residual():
    server = Server(spec=SPEC)
    server.place(WorkloadDemand(cpus=8, mem_gb=32))
    assert server.residual["cpus"] == 24
    assert server.used("mem_gb") == 32


def test_server_rejects_overflow():
    server = Server(spec=SPEC)
    with pytest.raises(ValueError):
        server.place(WorkloadDemand(cpus=64))


def test_ffd_packs_tightly():
    cluster = ServerCluster(SPEC)
    demands = [WorkloadDemand(cpus=16, mem_gb=64, name=f"j{i}") for i in range(4)]
    placement = cluster.pack(demands)
    assert placement.servers_used == 2
    assert not placement.unplaced


def test_oversized_job_unplaced():
    cluster = ServerCluster(SPEC)
    placement = cluster.pack([WorkloadDemand(cpus=100)])
    assert placement.unplaced and placement.servers_used == 0


def test_max_servers_cap():
    cluster = ServerCluster(SPEC, max_servers=1)
    demands = [WorkloadDemand(cpus=32) for _ in range(2)]
    placement = cluster.pack(demands)
    assert placement.servers_used == 1
    assert len(placement.unplaced) == 1


def test_skew_strands_capacity():
    """CPU-heavy jobs fill cores and strand memory on monolithic servers."""
    cluster = ServerCluster(SPEC)
    cluster.pack([WorkloadDemand(cpus=8, mem_gb=4, name=f"c{i}") for i in range(8)])
    assert cluster.utilization("cpus") == pytest.approx(1.0)
    # 8 jobs x 4 GB = 32 GB across two 128 GB servers
    assert cluster.utilization("mem_gb") == pytest.approx(32 / 256)
    assert cluster.demanded_utilization() < 0.7


def test_demanded_utilization_ignores_undemanded_dims():
    spec = ServerSpec(cpus=32, mem_gb=128, gpus=8)
    cluster = ServerCluster(spec)
    cluster.pack([WorkloadDemand(cpus=32, mem_gb=128)])
    # GPUs were never demanded: excluded from the metric.
    assert cluster.demanded_utilization() == pytest.approx(1.0)


def test_duty_validation():
    with pytest.raises(ValueError):
        WorkloadDemand(cpus=1, duty=0.0)
    with pytest.raises(ValueError):
        WorkloadDemand(cpus=1, duty=1.5)


# ---------------------------------------------------------------- catalog


def test_catalog_cheapest_fit_basic():
    catalog = default_catalog()
    choice = catalog.cheapest_fit(WorkloadDemand(cpus=2, mem_gb=4))
    assert choice.name == "c5.large"


def test_paper_example_8_gpus_forces_p3_16xlarge():
    """§1: an 8-GPU job must rent p3.16xlarge (64 vCPUs) even needing few."""
    catalog = default_catalog()
    choice = catalog.cheapest_fit(WorkloadDemand(cpus=4, mem_gb=16, gpus=8))
    assert choice.name == "p3.16xlarge"
    assert choice.vcpus == 64


def test_unfittable_demand_returns_none():
    catalog = default_catalog()
    assert catalog.cheapest_fit(WorkloadDemand(gpus=16)) is None


def test_unit_prices_reconstruct_p3_prices():
    """The unit decomposition must reproduce the real p3 prices closely."""
    catalog = default_catalog()
    for name in ("p3.2xlarge", "p3.8xlarge", "p3.16xlarge"):
        instance = catalog.get(name)
        reconstructed = (
            instance.vcpus * UNIT_PRICES["vcpu"]
            + instance.mem_gb * UNIT_PRICES["mem_gb"]
            + instance.gpus * UNIT_PRICES["gpu"]
        )
        assert reconstructed == pytest.approx(instance.price_hour, rel=0.01)


def test_exact_cost_below_instance_price():
    """Per-unit billing never exceeds the covering instance's price."""
    catalog = default_catalog()
    demand = WorkloadDemand(cpus=4, mem_gb=16, gpus=8)
    instance = catalog.cheapest_fit(demand)
    assert catalog.exact_cost(demand) < instance.price_hour


def test_waste_fraction_zero_for_perfect_match():
    catalog = default_catalog()
    instance = catalog.get("c5.large")
    demand = WorkloadDemand(cpus=2, mem_gb=4)
    assert instance.waste_fraction(demand, UNIT_PRICES) == pytest.approx(0.0, abs=1e-9)


def test_catalog_sorted_by_price():
    catalog = default_catalog()
    prices = [i.price_hour for i in catalog]
    assert prices == sorted(prices)


def test_empty_catalog_rejected():
    from repro.hardware.catalog import InstanceCatalog

    with pytest.raises(ValueError):
        InstanceCatalog([])
