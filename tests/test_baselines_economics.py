"""Tests for the IaaS/FaaS/coarse baselines and the economics models."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.baselines.coarse import CoarseOrchestrator
from repro.baselines.iaas import IaasCloud, udc_exact_hourly_cost
from repro.baselines.serverless import (
    FaasPlatform,
    always_on_gpu_vm_cost,
)
from repro.economics.cost import compare_costs
from repro.economics.devops_matrix import (
    decoupled_cost,
    matrix_cost,
    sweep_growth,
)
from repro.economics.pricing import pricing_window
from repro.hardware.catalog import default_catalog
from repro.hardware.server import WorkloadDemand
from repro.workloads.inference import poisson_inference_trace


# ------------------------------------------------------------ IaaS baseline


def test_provision_picks_cheapest_fit():
    cloud = IaasCloud(default_catalog())
    allocation = cloud.provision(WorkloadDemand(cpus=2, mem_gb=4))
    assert allocation.instance.name == "c5.large"
    assert allocation.waste_fraction == pytest.approx(0.0, abs=1e-9)


def test_gpu_job_waste_matches_paper_example():
    """§1: 8-GPU job with few vCPUs pays for 64 vCPUs + 488 GB."""
    cloud = IaasCloud(default_catalog())
    allocation = cloud.provision(WorkloadDemand(cpus=4, mem_gb=16, gpus=8))
    assert allocation.instance.name == "p3.16xlarge"
    # 60 of 64 vCPUs and 472 of 488 GB are paid for but unused.
    assert allocation.instance.vcpus - allocation.demand.cpus == 60
    assert allocation.waste_fraction > 0.10


def test_duty_increases_waste():
    cloud = IaasCloud(default_catalog())
    full = cloud.provision(WorkloadDemand(cpus=2, mem_gb=4, duty=1.0))
    idle = cloud.provision(WorkloadDemand(cpus=2, mem_gb=4, duty=0.5))
    assert idle.waste_fraction > full.waste_fraction


def test_unplaceable_tracked():
    cloud = IaasCloud(default_catalog())
    assert cloud.provision(WorkloadDemand(gpus=64)) is None
    assert len(cloud.unplaceable) == 1


def test_udc_exact_cost_below_iaas():
    demands = [WorkloadDemand(cpus=3, mem_gb=5, duty=0.7, name=f"j{i}")
               for i in range(10)]
    cloud = IaasCloud(default_catalog()).provision_all(demands)
    assert udc_exact_hourly_cost(demands) < cloud.total_hourly_cost
    assert udc_exact_hourly_cost(demands, tuned=False) \
        > udc_exact_hourly_cost(demands, tuned=True)


def test_instance_histogram():
    cloud = IaasCloud(default_catalog())
    cloud.provision(WorkloadDemand(cpus=2, mem_gb=4))
    cloud.provision(WorkloadDemand(cpus=2, mem_gb=4))
    assert cloud.instance_histogram() == {"c5.large": 2}


# ------------------------------------------------------------ serverless


def test_gpu_functions_much_faster():
    trace = poisson_inference_trace(rate_hz=0.05, horizon_s=1800, seed=3)
    cpu = FaasPlatform(gpu=False).run_trace(trace)
    gpu = FaasPlatform(gpu=True).run_trace(trace)
    assert gpu.mean_latency_s < cpu.mean_latency_s / 5


def test_sparse_trace_mostly_cold_starts():
    trace = poisson_inference_trace(rate_hz=0.001, horizon_s=7200, seed=3)
    result = FaasPlatform(gpu=False, keepalive_s=60).run_trace(trace)
    assert result.cold_start_fraction > 0.8


def test_dense_trace_mostly_warm():
    trace = poisson_inference_trace(rate_hz=2.0, horizon_s=600, seed=3)
    result = FaasPlatform(gpu=False).run_trace(trace)
    assert result.cold_start_fraction < 0.2


def test_serverless_gpu_cheaper_than_always_on_vm_when_sparse():
    """The paper's economic motivation for GPU serverless."""
    horizon = 3600.0
    trace = poisson_inference_trace(rate_hz=0.01, horizon_s=horizon, seed=3)
    serverless = FaasPlatform(gpu=True).run_trace(trace)
    assert serverless.total_cost < always_on_gpu_vm_cost(horizon) / 10


def test_percentiles_monotone():
    trace = poisson_inference_trace(rate_hz=0.05, horizon_s=1800, seed=3)
    result = FaasPlatform(gpu=False).run_trace(trace)
    assert result.percentile_latency_s(50) <= result.percentile_latency_s(99)


def test_billing_components():
    trace = poisson_inference_trace(rate_hz=0.05, horizon_s=600, seed=3)
    result = FaasPlatform(gpu=True).run_trace(trace)
    assert result.compute_cost > 0
    assert result.request_fees == pytest.approx(
        result.invocations * 0.20 / 1e6)


# ------------------------------------------------------------ coarse orchestrator


def coarse_app():
    app = AppBuilder("svc")
    for name in ("a", "b", "c", "d"):
        @app.task(name=name, work=1.0)
        def tsk(ctx):
            return None
    return app.build()


def test_pod_replication_drags_neighbors():
    dag = coarse_app()
    orchestrator = CoarseOrchestrator(modules_per_pod=2)
    pods = orchestrator.deploy(dag, replication_demand={"a": 3})
    pod_of_a = next(p for p in pods if "a" in p.modules)
    assert pod_of_a.replicas == 3
    assert len(pod_of_a.modules) == 2  # the neighbor replicates too


def test_coarse_costs_more_than_fine():
    dag = coarse_app()
    demand = {"a": 3}
    orchestrator = CoarseOrchestrator(modules_per_pod=4)
    pods = orchestrator.deploy(dag, demand)
    coarse = CoarseOrchestrator.total_units(pods)
    fine = CoarseOrchestrator.fine_grained_units(dag, demand)
    assert coarse["cpu"] > fine["cpu"]


def test_pod_size_validation():
    with pytest.raises(ValueError):
        CoarseOrchestrator(modules_per_pod=0)


# ------------------------------------------------------------ economics


def test_matrix_superlinear_vs_decoupled_linear():
    assert matrix_cost(10, 10) + matrix_cost(30, 30) \
        > 2 * matrix_cost(20, 20) - 1e9  # sanity: well defined
    # The cross term is exactly bilinear: isolate it by inclusion-
    # exclusion and check it quadruples when both dimensions double.
    def cross(s, f):
        return (matrix_cost(s, f) - matrix_cost(s, 0)
                - matrix_cost(0, f) + matrix_cost(0, 0))

    assert cross(20, 20) == pytest.approx(4 * cross(10, 10))
    # decoupled is exactly linear
    assert decoupled_cost(20, 20) - decoupled_cost(10, 10) == \
        pytest.approx(decoupled_cost(30, 30) - decoupled_cost(20, 20))


def test_growth_crossover_happens_early():
    scenario = sweep_growth(horizon_years=10)
    assert 0 <= scenario.crossover_year <= 3
    assert scenario.matrix[-1] > scenario.decoupled[-1] * 2


def test_matrix_validation():
    with pytest.raises(ValueError):
        matrix_cost(-1, 5)
    with pytest.raises(ValueError):
        decoupled_cost(5, -1)


def test_pricing_window_exists_at_paper_parameters():
    window = pricing_window(waste_fraction=0.35, consolidation_gain=2.0)
    assert window.exists
    assert window.provider_breakeven < 1.2
    assert window.user_breakeven == pytest.approx(1 / 0.65)
    mid = window.midpoint
    assert window.user_saving_at(mid) > 0
    assert window.provider_profit_gain_at(mid) > 0


def test_pricing_window_closes_without_consolidation_or_waste():
    no_gain = pricing_window(waste_fraction=0.0, consolidation_gain=1.0)
    assert not no_gain.exists or no_gain.width == pytest.approx(0.0)


def test_pricing_validation():
    with pytest.raises(ValueError):
        pricing_window(1.5, 2.0)
    with pytest.raises(ValueError):
        pricing_window(0.3, 0.0)
    with pytest.raises(ValueError):
        pricing_window(0.3, 2.0, provider_margin=1.0)


def test_compare_costs_helpers():
    comparison = compare_costs("iaas", 100.0, "udc", 60.0)
    assert comparison.ratio == pytest.approx(100 / 60)
    assert comparison.saving_fraction == pytest.approx(0.4)
    with pytest.raises(ValueError):
        compare_costs("a", -1, "b", 1)
