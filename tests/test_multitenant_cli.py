"""Tests for concurrent multi-tenant submissions and the CLI."""

import json

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.ir import compile_dag
from repro.cli import main
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter


def small_app(name="app", work=10.0):
    app = AppBuilder(name)

    @app.task(name="stage", work=work)
    def stage(ctx):
        return name

    return app.build()


def big_dc():
    return build_datacenter(DatacenterSpec(pods=2, racks_per_pod=4))


# ------------------------------------------------------------ multi-tenant


def test_two_tenants_run_concurrently():
    runtime = UDCRuntime(big_dc())
    a = runtime.submit(small_app("a"), tenant="alice")
    b = runtime.submit(small_app("b"), tenant="bravo")
    results = runtime.drain()
    assert {r.tenant for r in results} == {"alice", "bravo"}
    # Concurrency: both finished in ~one job's time, not two.
    solo = UDCRuntime(big_dc()).run(small_app("solo"))
    for result in results:
        assert result.makespan_s < solo.makespan_s * 1.5


def test_costs_attributed_per_tenant():
    runtime = UDCRuntime(big_dc())
    runtime.submit(small_app("a", work=10.0), tenant="alice")
    runtime.submit(small_app("b", work=40.0), tenant="bravo")
    results = {r.tenant: r for r in runtime.drain()}
    assert results["alice"].total_cost > 0
    assert results["bravo"].total_cost > results["alice"].total_cost
    assert not runtime._owner_of  # all meters closed


def test_single_tenant_isolation_across_tenants():
    """Alice's single-tenant device is never shared with Bravo."""
    spec = {"stage": {"execenv": {"isolation": "strong",
                                  "single_tenant": True}}}
    runtime = UDCRuntime(big_dc())
    a = runtime.submit(small_app("a"), spec, tenant="alice")
    b = runtime.submit(small_app("b"), spec, tenant="bravo")
    alice_dev = a.objects["stage"].primary_allocation.device
    bravo_dev = b.objects["stage"].primary_allocation.device
    assert alice_dev is not bravo_dev
    assert alice_dev.single_tenant_of == "alice"
    runtime.drain()


def test_sequential_runs_still_work_after_submit_api():
    runtime = UDCRuntime(big_dc())
    first = runtime.run(small_app("one"))
    second = runtime.run(small_app("two"))
    assert first.outputs["stage"] == "one"
    assert second.outputs["stage"] == "two"


def test_failure_in_one_tenant_does_not_touch_other():
    runtime = UDCRuntime(big_dc())
    runtime.submit(small_app("a", work=50.0), tenant="alice",
                   failure_plan=[(5.0, "fd:stage")])
    runtime.submit(small_app("b", work=50.0), tenant="bravo")
    results = {r.tenant: r for r in runtime.drain()}
    # NOTE: module-default domains are per-module-name; both tenants named
    # their module "stage", so the SHARED domain couples them — precisely
    # the footgun the paper's failure-domain aspect exists to avoid.
    assert results["alice"].row("stage").failures >= 1


def test_distinct_failure_domains_isolate_tenants():
    runtime = UDCRuntime(big_dc())
    runtime.submit(
        small_app("a", work=50.0),
        {"stage": {"distributed": {"failure_domain": "alice-fd"}}},
        tenant="alice", failure_plan=[(5.0, "alice-fd")],
    )
    runtime.submit(
        small_app("b", work=50.0),
        {"stage": {"distributed": {"failure_domain": "bravo-fd"}}},
        tenant="bravo",
    )
    results = {r.tenant: r for r in runtime.drain()}
    assert results["alice"].row("stage").failures >= 1
    assert results["bravo"].row("stage").failures == 0


# ------------------------------------------------------------ CLI


@pytest.fixture()
def app_json(tmp_path):
    app = AppBuilder("cli-app")

    @app.task(name="prep", work=2.0)
    def prep(ctx):
        return None

    @app.task(name="infer", work=40.0,
              devices={DeviceType.CPU, DeviceType.GPU})
    def infer(ctx):
        return None

    app.flows("prep", "infer", bytes_=1 << 16)
    path = tmp_path / "app.json"
    path.write_text(json.dumps(compile_dag(app.build()).to_dict()))
    return str(path)


def test_cli_run(app_json, capsys):
    code = main(["run", app_json, "--timeline"])
    out = capsys.readouterr().out
    assert code == 0
    assert "makespan" in out
    assert "legend" in out


def test_cli_run_with_spec_and_verify(app_json, tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(
        {"infer": {"resource": {"device": "gpu", "amount": 1}}}))
    code = main(["run", app_json, "--spec", str(spec), "--verify"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 violated" in out
    assert "gpu" in out


def test_cli_profile(app_json, capsys):
    assert main(["profile", app_json]) == 0
    out = capsys.readouterr().out
    assert "infer:" in out and "x gpu" in out


def test_cli_autosize_emits_valid_spec(app_json, capsys):
    assert main(["autosize", app_json, "--latency", "5"]) == 0
    spec = json.loads(capsys.readouterr().out)
    assert spec["infer"]["resource"]["device"] == "gpu"
    from repro.core.spec import parse_definition

    parse_definition(spec)  # must parse cleanly


def test_cli_partition(tmp_path, capsys):
    graph = tmp_path / "graph.json"
    graph.write_text(json.dumps({
        "edges": [["a", "b", 5], ["b", "c", 5], ["c", "d", 1],
                  ["d", "e", 5], ["e", "f", 5]],
        "hints": [["a", "b"]],
    }))
    assert main(["partition", str(graph), "-k", "2"]) == 0
    out = capsys.readouterr().out
    assert "segment 0" in out and "cross-segment" in out


def test_cli_catalog(tmp_path, capsys):
    demands = tmp_path / "demands.json"
    demands.write_text(json.dumps(
        [{"cpus": 4, "mem_gb": 16, "gpus": 8, "name": "ml"}]))
    assert main(["catalog", str(demands)]) == 0
    out = capsys.readouterr().out
    assert "p3.16xlarge" in out
    assert "waste" in out
