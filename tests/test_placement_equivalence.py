"""Placement-equivalence golden tests.

The indexed allocator (bisect free-lists + incremental accounting) must
make **byte-identical placement decisions** to the preserved naive path
(scan-and-sort + per-call re-sum).  These tests run real workloads — the
Figure-2 medical pipeline and a seeded E17-style churn day — on both
allocators and assert the full allocation traces match: same devices, in
the same order, with the same amounts, for the same tenants.

The process-global device/allocation id counters are reset before each
build: tie-breaks that involve ``device_id`` strings (ReplicaPlacer)
compare lexicographically, so a fleet whose ids span a digit boundary
("ssd-9" vs "ssd-10") would order differently between two builds of the
same spec.  Pinning the counters gives both runs identical ids; seqs are
additionally normalized to per-pool positions for readable diffs.
"""

import itertools

import pytest

import repro.hardware.devices as devices_mod
import repro.hardware.pools as pools_mod
from repro.core.cells import partition_datacenter
from repro.core.runtime import UDCRuntime
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service import UDCService
from repro.workloads.cluster import generate_cluster_trace
from repro.workloads.medical import build_medical_app


def _traced_datacenter(spec, indexed):
    """Build a datacenter whose pools all log allocations into one list."""
    devices_mod._device_ids = itertools.count()
    pools_mod._alloc_ids = itertools.count()
    dc = build_datacenter(spec, indexed_pools=indexed)
    log = []
    for pool in dc.pools:
        # Wrap the shared list so entries carry the pool's device type.
        pool.alloc_log = _TypedLog(pool.device_type.value, log)
    return dc, log


class _TypedLog:
    """List adapter tagging each entry with the owning pool's type."""

    def __init__(self, dtype, sink):
        self.dtype = dtype
        self.sink = sink

    def append(self, entry):
        seq, amount, tenant = entry
        self.sink.append((self.dtype, seq, amount, tenant))


def _normalize(dc, log):
    """Map global device seqs to per-pool positions (stable across
    datacenters built from the same spec)."""
    pos = {}
    for pool in dc.pools:
        for index, device in enumerate(pool.devices):
            pos[(pool.device_type.value, device.seq)] = index
    return [
        (dtype, pos[(dtype, seq)], amount, tenant)
        for dtype, seq, amount, tenant in log
    ]


def _medical_trace(indexed):
    spec = DatacenterSpec(pods=1, racks_per_pod=4)
    dc, log = _traced_datacenter(spec, indexed)
    dag, definition = build_medical_app()
    runtime = UDCRuntime(dc, warm_pool=WarmPool(enabled=True), prewarm=True)
    inputs = {
        "A1": {"pixels": list(range(64)), "patient": "p-golden"},
        "A3": {"patient": "p-golden"},
        "B1": {"consented": True},
    }
    result = runtime.run(dag, definition, tenant="hospital", inputs=inputs)
    for pool in dc.pools:
        pool.check_accounting()
    return _normalize(dc, log), result


def _churn_trace(indexed, seed=11, horizon_s=600.0):
    spec = DatacenterSpec(pods=2, racks_per_pod=4)
    dc, log = _traced_datacenter(spec, indexed)
    trace = generate_cluster_trace(1.0, horizon_s, seed=seed)
    runtime = UDCRuntime(
        dc, warm_pool=WarmPool(enabled=True, target_depth=4), prewarm=True
    )
    for arrival in trace.arrivals:
        runtime.submit_at(
            arrival.arrival_s, arrival.dag, arrival.definition,
            tenant=arrival.tenant,
        )
    results = runtime.drain()
    for pool in dc.pools:
        pool.check_accounting()
    return _normalize(dc, log), results


def test_medical_pipeline_traces_identical():
    indexed_trace, indexed_result = _medical_trace(indexed=True)
    naive_trace, naive_result = _medical_trace(indexed=False)
    assert len(indexed_trace) > 0
    assert indexed_trace == naive_trace
    assert indexed_result.makespan_s == naive_result.makespan_s
    assert indexed_result.total_cost == naive_result.total_cost


def test_churn_day_traces_identical():
    indexed_trace, indexed_results = _churn_trace(indexed=True)
    naive_trace, naive_results = _churn_trace(indexed=False)
    assert len(indexed_trace) > 20
    assert indexed_trace == naive_trace
    assert [r.makespan_s for r in indexed_results] \
        == [r.makespan_s for r in naive_results]
    assert [r.total_cost for r in indexed_results] \
        == [r.total_cost for r in naive_results]


def test_indexed_run_is_self_deterministic():
    """Two indexed runs of the same seed are bit-for-bit identical —
    the index introduces no iteration-order nondeterminism."""
    first, _ = _churn_trace(indexed=True, seed=5, horizon_s=300.0)
    second, _ = _churn_trace(indexed=True, seed=5, horizon_s=300.0)
    assert first == second


# -------------------------------------------- placement cells (PR 7)

def _churn_trace_partitioned(seed=11, horizon_s=600.0):
    """The churn-day trace run on a datacenter partitioned into ONE
    placement cell: same devices, same seqs, fresh per-cell pools."""
    spec = DatacenterSpec(pods=2, racks_per_pod=4)
    dc, _parent_log = _traced_datacenter(spec, indexed=True)
    (cell,) = partition_datacenter(dc, 1)
    # The partition built fresh pools: attach the typed log to those.
    log = []
    for pool in cell.pools:
        pool.alloc_log = _TypedLog(pool.device_type.value, log)
    trace = generate_cluster_trace(1.0, horizon_s, seed=seed)
    runtime = UDCRuntime(
        cell, warm_pool=WarmPool(enabled=True, target_depth=4), prewarm=True
    )
    for arrival in trace.arrivals:
        runtime.submit_at(
            arrival.arrival_s, arrival.dag, arrival.definition,
            tenant=arrival.tenant,
        )
    results = runtime.drain()
    for pool in cell.pools:
        pool.check_accounting()
    return _normalize(cell, log), results


def test_single_cell_partition_traces_identical_to_global():
    """Partitioning into one cell changes nothing: fresh per-cell pools
    over the same devices make byte-identical placement decisions."""
    global_trace, global_results = _churn_trace(indexed=True)
    cell_trace, cell_results = _churn_trace_partitioned()
    assert len(cell_trace) > 20
    assert cell_trace == global_trace
    assert [r.makespan_s for r in cell_results] \
        == [r.makespan_s for r in global_results]
    assert [r.total_cost for r in cell_results] \
        == [r.total_cost for r in global_results]


def _service_trace(cells=None):
    """A batched service workload traced at the pool level.  ``None``
    builds the service exactly as before PR 7 (no ``cells`` argument)."""
    spec = DatacenterSpec(pods=1, racks_per_pod=4)
    dc, log = _traced_datacenter(spec, indexed=True)
    kwargs = {} if cells is None else {"cells": cells}
    service = UDCService(dc, **kwargs)
    dag, definition = build_medical_app()
    inputs = {
        "A1": {"pixels": list(range(16)), "patient": "p-cells"},
        "A3": {"patient": "p-cells"},
        "B1": {"consented": True},
    }
    for patient in range(3):
        service.submit("hospital", dag, definition, inputs=inputs)
        if patient % 2:
            service.drain()
    service.drain()
    return _normalize(dc, log)


def test_service_cells1_traces_identical_to_default():
    """``UDCService(dc, cells=1)`` is the pre-PR service: one runtime,
    no router, byte-identical placements and seq streams."""
    default_trace = _service_trace(cells=None)
    single_cell_trace = _service_trace(cells=1)
    assert len(default_trace) > 0
    assert default_trace == single_cell_trace
