"""Whole-program analyzer + module-cutter tests (claim C11).

Four layers:

* **extraction/taint/cut golden** — the Figure-2 monolith compiles to
  the pinned roles, labels, and cut (module names, byte totals), so the
  deterministic search can never silently drift;
* **legality** — no emitted module ever mixes kinds or sensitivity
  labels, and the emitted definition of every corpus app re-lints to
  zero findings;
* **property** — randomly generated in-subset legacy programs always
  compile to lint-clean, byte-deterministic definitions (hypothesis);
* **wiring** — the CLI round-trips into ``udc lint -``, the auto-cut
  app runs end to end, and the ``fig2-legacy`` replay workload records
  byte-identical journals.
"""

import io
import json
import sys
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import analyze_definition
from repro.analysis.program import (
    ProgramAnalysisError,
    attach_functions,
    cut_program,
    extract_program,
    infer_labels,
    input_payload,
    modularize,
)
from repro.cli import main as cli_main
from repro.core.runtime import UDCRuntime
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.replay.runner import ReplayRunner, RunConfig

REPO = Path(__file__).resolve().parent.parent
LEGACY = REPO / "examples" / "legacy"
FIG2 = LEGACY / "fig2_monolith.py"

MB = 1 << 20


@pytest.fixture(scope="module")
def fig2_result():
    return modularize(FIG2.read_text(encoding="utf-8"),
                      name="fig2_monolith")


# ------------------------------------------------------------- extraction


def test_fig2_roles_and_inputs(fig2_result):
    model = fig2_result.model
    assert model.drivers == ("run_pipeline",)
    assert sorted(model.tasks) == [
        "anonymize_consented", "cohort_analytics", "detect_objects",
        "diagnose", "preprocess", "retrieve_history",
    ]
    assert model.helpers == ()
    assert model.dead == ()
    assert sorted(model.stores) == [
        "consent_forms", "image_buffer", "patient_records", "research_db",
    ]
    assert list(model.input_params) == ["image", "patient", "consented"]


def test_directive_size_suffixes():
    source = '''
queue: "udc: sensitivity=public size_gb=2 record_bytes=4kb" = []

def produce(x):
    """udc: work=3 output_bytes=2mb write=queue:1gb"""
    queue.append(x)
    return x

def run(x):
    y = produce(x)
    return y
'''
    model = extract_program(source, name="suffixes")
    assert model.stores["queue"].record_bytes == 4 * 1024
    assert model.functions["produce"].output_bytes == 2 * MB
    (edge,) = [e for e in model.flows if e.kind == "write"]
    assert edge.bytes == 1 << 30


def test_helper_inlining_merges_store_accesses():
    source = (LEGACY / "sensor_rollup.py").read_text(encoding="utf-8")
    model = extract_program(source, name="sensor_rollup")
    assert model.helpers == ("_dedupe",)
    assert "_dedupe" not in model.tasks


def test_write_only_store_access_is_not_also_a_read():
    source = '''
sink: "udc: sensitivity=public size_gb=1" = []

def emit(x):
    """udc: work=1 output_bytes=1kb write=sink:1kb"""
    sink.append(x)
    return x

def run(x):
    y = emit(x)
    return y
'''
    model = extract_program(source, name="write-only")
    assert model.functions["emit"].writes == ("sink",)
    assert model.functions["emit"].reads == ()


def test_out_of_subset_driver_raises():
    source = '''
def work(x):
    """udc: work=1 output_bytes=1kb"""
    return x

def run(items):
    out = []
    for item in items:
        out.append(work(item))
    return out
'''
    with pytest.raises(ProgramAnalysisError) as err:
        extract_program(source, name="loopy")
    assert "run" in str(err.value)


def test_detached_task_raises():
    source = '''
def island(x):
    """udc: work=1 output_bytes=1kb"""
    return x

def run(x):
    y = island(x)
    return y
'''
    with pytest.raises(ProgramAnalysisError) as err:
        extract_program(source, name="island")
    assert "neither accesses a store nor exchanges data" in str(err.value)


# ------------------------------------------------------------------ taint


def test_fig2_labels(fig2_result):
    taint = fig2_result.taint
    for task in ("preprocess", "detect_objects", "retrieve_history",
                 "diagnose", "anonymize_consented"):
        assert taint.task_in[task] == "phi" or task == "preprocess", task
    assert taint.task_in["preprocess"] == "phi"      # reads image_buffer
    assert taint.task_out["anonymize_consented"] == "anonymized"
    assert taint.task_in["cohort_analytics"] == "anonymized"
    assert taint.store_label["research_db"] == "anonymized"
    assert taint.raised == ()


def test_unlabeled_store_is_raised_to_its_writers():
    source = (LEGACY / "churn_report.py").read_text(encoding="utf-8")
    model = extract_program(source, name="churn_report")
    taint = infer_labels(model)
    assert taint.raised == ("summaries",)
    assert taint.store_label["summaries"] == "anonymized"


# -------------------------------------------------------------------- cut


def test_fig2_cut_golden(fig2_result):
    cut = fig2_result.cut
    task_groups = sorted(g.name for g in cut.groups if g.kind == "task")
    assert task_groups == [
        "anonymize_consented", "cohort_analytics", "diagnose",
        "preprocess+detect_objects", "retrieve_history",
    ]
    assert cut.cross_bytes == 349372416
    assert cut.internal_bytes == 4 * MB
    assert cut.merges == 1
    assert cut.parallel_loss == 0.0


def test_cut_matches_hand_cut_traffic(fig2_result):
    """The auto cut's cross-module traffic equals the hand-cut app's
    (colocated A1+A2 counted as one unit, where the auto cut merges)."""
    from repro.workloads.medical import build_medical_app

    dag, _definition = build_medical_app()
    groups = dag.merged_colocation_groups()

    def unit(name):
        for index, group in enumerate(groups):
            if name in group:
                return f"g{index}"
        return name

    hand_cross = sum(e.bytes_transferred for e in dag.edges
                     if unit(e.src) != unit(e.dst))
    assert fig2_result.cut.cross_bytes <= hand_cross == 349372416


def test_cut_never_mixes_kinds_or_labels(fig2_result):
    taint = fig2_result.taint
    for group in fig2_result.cut.groups:
        kinds = {("task" if m in fig2_result.model.tasks else "store")
                 for m in group.members}
        assert kinds == {group.kind}
        if group.kind == "task":
            assert len({taint.task_in[m] for m in group.members}) == 1
        else:
            assert len({taint.store_label[m] for m in group.members}) == 1


def test_cut_respects_parallel_branches():
    """sensor_rollup's alert branch must not collapse into the rollup
    chain — the merge would serialize two parallel tasks."""
    source = (LEGACY / "sensor_rollup.py").read_text(encoding="utf-8")
    result = modularize(source, name="sensor_rollup")
    names = sorted(g.name for g in result.cut.groups if g.kind == "task")
    assert names == ["check_alerts", "ingest+clean+aggregate"]


def test_cut_is_seed_stable(fig2_result):
    source = FIG2.read_text(encoding="utf-8")
    model = extract_program(source, name="fig2_monolith")
    taint = infer_labels(model)
    for seed in (0, 1, 7):
        cut = cut_program(model, taint, seed=seed)
        assert cut.cross_bytes == fig2_result.cut.cross_bytes


# --------------------------------------------------------------- emission


def test_fig2_emitted_definition_maps_labels(fig2_result):
    definition = fig2_result.emitted.definition
    # phi tasks run under strong isolation; the anonymized analytics
    # stage under weak; stores carry protection by label.
    assert definition["diagnose"]["execenv"]["isolation"] == "strong"
    assert definition["cohort_analytics"]["execenv"]["isolation"] == "weak"
    assert sorted(
        definition["patient_records"]["execenv"]["protection"]
    ) == ["encrypt", "integrity"]
    assert definition["research_db"]["execenv"]["protection"] \
        == ["integrity"]


def test_corpus_is_lint_clean_and_byte_deterministic():
    sources = sorted(LEGACY.glob("*.py"))
    assert len(sources) >= 3
    for path in sources:
        source = path.read_text(encoding="utf-8")
        result = modularize(source, name=path.stem)
        report = analyze_definition(result.emitted.definition,
                                    app=result.emitted.dag,
                                    datacenter=build_datacenter())
        assert len(report) == 0, (path.name, report.format_text())
        again = modularize(source, name=path.stem)
        assert result.report_json() == again.report_json(), path.name


# --------------------------------------------------------- property-based


@st.composite
def legacy_programs(draw):
    """Random in-subset legacy sources: a chain of tasks over labeled
    stores, straight-line driver, directive-annotated."""
    n_stores = draw(st.integers(0, 3))
    stores = []
    for index in range(n_stores):
        stores.append((
            f"store_{index}",
            draw(st.sampled_from(["public", "anonymized", "phi", None])),
            draw(st.integers(1, 64)),
            draw(st.booleans()),
        ))
    n_tasks = draw(st.integers(1, 5))
    lines = ['"""generated legacy app"""', ""]
    for name, label, size_gb, hot in stores:
        directive = f"udc: size_gb={size_gb}"
        if label:
            directive += f" sensitivity={label}"
        if hot and size_gb <= 8:
            directive += " hot"
        lines.append(f'{name}: "{directive}" = {{}}')
    lines.append("")
    for index in range(n_tasks):
        work = draw(st.integers(1, 50))
        out_kb = draw(st.integers(1, 512))
        devices = draw(st.sampled_from(["cpu", "gpu", "cpu,gpu"]))
        access = ""
        body = [f"    return {{'step': {index}}}"]
        if stores and (index == 0 or draw(st.booleans())):
            store = draw(st.sampled_from(stores))[0]
            if draw(st.booleans()):
                access = f" read={store}:{draw(st.integers(1, 64))}kb"
                body.insert(0, f"    _ = {store}.get('k')")
            else:
                access = f" write={store}:{draw(st.integers(1, 64))}kb"
                body.insert(0, f"    {store}['k'] = arg")
        lines.append(f"def task_{index}(arg):")
        lines.append(f'    """udc: work={work} devices={devices} '
                     f'output_bytes={out_kb}kb{access}"""')
        lines.extend(body)
        lines.append("")
    lines.append("def run(payload):")
    prev = "payload"
    for index in range(n_tasks):
        lines.append(f"    r{index} = task_{index}({prev})")
        prev = f"r{index}"
    lines.append(f"    return {prev}")
    return "\n".join(lines) + "\n"


@given(legacy_programs())
@settings(max_examples=25, deadline=None)
def test_generated_programs_compile_lint_clean(source):
    """Whatever in-subset program the generator produces, the emitted
    definition has zero findings and the report is byte-deterministic.
    (``modularize`` raises if its self-check ever finds anything.)"""
    try:
        result = modularize(source, name="generated")
    except ProgramAnalysisError:
        # The generator can produce detached single-task programs with
        # no store access; rejection is the specified behavior.
        return
    again = modularize(source, name="generated")
    assert result.report_json() == again.report_json()
    report = analyze_definition(result.emitted.definition,
                                app=result.emitted.dag)
    assert len(report) == 0, report.format_text()


# ----------------------------------------------------------------- wiring


def test_auto_cut_fig2_runs_end_to_end(fig2_result):
    source = FIG2.read_text(encoding="utf-8")
    namespace = {"__name__": "fig2_monolith_test"}
    exec(compile(source, str(FIG2), "exec"), namespace)
    dag = attach_functions(fig2_result.model, fig2_result.cut,
                           fig2_result.emitted, namespace)
    runtime = UDCRuntime(
        build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)))
    result = runtime.run(
        dag, fig2_result.emitted.definition, tenant="hospital",
        inputs=input_payload(
            fig2_result.model, fig2_result.emitted,
            image={"pixels": list(range(256)), "patient": "p-77"},
            patient="p-77", consented=True,
        ),
    )
    assert result.total_failures == 0
    assert result.outputs["diagnose"]["patient"] == "p-77"
    assert "given" in result.outputs["diagnose"]["diagnosis"]
    assert result.outputs["cohort_analytics"]["cohort_size"] >= 1
    # The merged module returns a dict keyed by member.
    assert set(result.outputs["preprocess+detect_objects"]) \
        == {"preprocess", "detect_objects"}


def test_input_payload_rejects_unknown_driver_args(fig2_result):
    with pytest.raises(ValueError, match="unknown driver argument"):
        input_payload(fig2_result.model, fig2_result.emitted, bogus=1)


def test_cli_modularize_text_output(capsys):
    assert cli_main(["modularize", str(FIG2)]) == 0
    out = capsys.readouterr().out
    assert "6 task(s), 4 store(s), 1 driver(s) -> 9 module(s)" in out
    assert "preprocess+detect_objects" in out
    assert "lint: clean (0 findings)" in out


def test_cli_modularize_json_pipes_into_lint(capsys, monkeypatch):
    assert cli_main(["modularize", str(FIG2), "--json"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["modularize", str(FIG2), "--json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert payload["report"]["lint"] == {"findings": 0}
    monkeypatch.setattr(sys, "stdin", io.StringIO(first))
    assert cli_main(["lint", "-"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_modularize_rejects_out_of_subset(tmp_path, capsys):
    bad = tmp_path / "loopy.py"
    bad.write_text(
        "def work(x):\n"
        '    """udc: work=1"""\n'
        "    return x\n"
        "def run(xs):\n"
        "    for x in xs:\n"
        "        work(x)\n",
        encoding="utf-8",
    )
    assert cli_main(["modularize", str(bad)]) == 2
    assert "modularize:" in capsys.readouterr().err
    assert cli_main(["modularize", str(tmp_path / "missing.py")]) == 2


def test_fig2_legacy_replay_is_byte_identical(tmp_path):
    config = RunConfig(workload="fig2-legacy", params={"patients": 2},
                       seed=11)
    first = tmp_path / "first.jsonl"
    second = tmp_path / "second.jsonl"
    ReplayRunner(config).record(str(first))
    ReplayRunner(config).record(str(second))
    assert first.read_bytes() == second.read_bytes()
    # Replay re-executes against the journal without divergence.
    service, events = ReplayRunner(config).replay(str(first))
    assert events[-1].op == "drain"
    assert service.runtime.sim.now > 0
