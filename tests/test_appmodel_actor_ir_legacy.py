"""Tests for the actor framework, the IR compiler, and legacy partitioning."""

import networkx as nx
import pytest

from repro.appmodel.actor import ActorSystem
from repro.appmodel.annotations import AppBuilder
from repro.appmodel.ir import compile_dag
from repro.appmodel.legacy import (
    cut_weight,
    partition_program,
    random_partition,
)
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Fabric, Location
from repro.simulator import Simulator


# ------------------------------------------------------------ actors


def test_actor_processes_messages_in_order():
    sim = Simulator()
    system = ActorSystem(sim)

    def collect(actor, message):
        actor.state.setdefault("seen", []).append(message)

    ref = system.spawn("collector", collect)
    for index in range(5):
        ref.tell(index)
    sim.run(until=1)
    assert system.actor("collector").state["seen"] == [0, 1, 2, 3, 4]


def test_actor_no_shared_state():
    """Payloads are deep-copied: sender-side mutation cannot leak."""
    sim = Simulator()
    system = ActorSystem(sim)

    def keep(actor, message):
        actor.state["msg"] = message

    ref = system.spawn("keeper", keep)
    payload = {"items": [1, 2]}
    ref.tell(payload)
    payload["items"].append(3)  # mutate after send
    sim.run(until=1)
    assert system.actor("keeper").state["msg"] == {"items": [1, 2]}


def test_actor_to_actor_messaging():
    sim = Simulator()
    system = ActorSystem(sim)

    def ponger(actor, message):
        if message == "ping":
            actor.tell(system.actor("pinger").ref, "pong")

    def pinger(actor, message):
        actor.state["got"] = message

    pong_ref = system.spawn("ponger", ponger)
    system.spawn("pinger", pinger)
    pong_ref.tell("ping")
    sim.run(until=1)
    assert system.actor("pinger").state["got"] == "pong"


def test_actor_timed_work_via_generator():
    sim = Simulator()
    system = ActorSystem(sim)

    def worker(actor, message):
        def job():
            yield sim.timeout(5.0)
            actor.state["done_at"] = sim.now

        return job()

    ref = system.spawn("worker", worker)
    ref.tell("go")
    sim.run()
    assert system.actor("worker").state["done_at"] == 5.0


def test_fabric_delay_applies_between_located_actors():
    sim = Simulator()
    fabric = Fabric(sim)
    system = ActorSystem(sim, fabric=fabric)
    arrival = {}

    def receiver(actor, message):
        arrival["t"] = sim.now

    def sender(actor, message):
        actor.tell(system.actor("receiver").ref, "payload")

    system.spawn("receiver", receiver, location=Location(0, 1, 0))
    send_ref = system.spawn("sender", sender, location=Location(0, 0, 0))
    send_ref.tell("go")
    sim.run()
    assert arrival["t"] > 0.0


def test_journal_and_replay():
    sim = Simulator()
    system = ActorSystem(sim)

    def counter(actor, message):
        actor.state["count"] = actor.state.get("count", 0) + message

    ref = system.spawn("counter", counter)
    for value in (1, 2, 3):
        ref.tell(value)
    sim.run(until=1)
    assert system.actor("counter").state["count"] == 6

    # Kill and respawn from the journal: state reconverges.
    system.respawn_from_journal("counter", counter)
    sim.run(until=2)
    assert system.actor("counter").state["count"] == 6
    assert len(system.replay_for("counter")) == 3


def test_unknown_recipient_raises():
    system = ActorSystem(Simulator())
    with pytest.raises(KeyError):
        system._deliver("x", "ghost", "msg")


def test_duplicate_actor_name_rejected():
    system = ActorSystem(Simulator())
    system.spawn("a", lambda actor, message: None)
    with pytest.raises(ValueError):
        system.spawn("a", lambda actor, message: None)


def test_graceful_stop_returns_processed_count():
    sim = Simulator()
    system = ActorSystem(sim)
    ref = system.spawn("w", lambda actor, message: None)
    ref.tell("one")
    ref.tell("two")
    system.stop("w")
    process = system.actor("w")._process
    assert sim.run(until_event=process) == 2


# ------------------------------------------------------------ IR


def make_app():
    app = AppBuilder("demo")

    @app.task(work=2.0, devices={DeviceType.CPU, DeviceType.GPU})
    def prep(ctx):
        return None

    @app.task(work=8.0, devices={DeviceType.GPU})
    def infer(ctx):
        return None

    store = app.data("store", size_gb=4)
    app.flows(prep, infer, bytes_=2048)
    app.reads(infer, store, bytes_per_run=4096)
    app.colocate(prep, infer)
    return app.build()


def test_compile_dag_shapes():
    program = compile_dag(make_app())
    assert set(program.modules) == {"prep", "infer", "store"}
    infer = program.module("infer")
    assert infer.kind == "task"
    assert infer.device_candidates == ("gpu",)
    assert infer.colocate_with == ("prep",)
    assert infer.inputs == ("prep", "store")
    assert infer.affinities == (("store", 4096),)
    store = program.module("store")
    assert store.kind == "data"
    assert store.runtime == "none"


def test_ir_interface_consistency():
    program = compile_dag(make_app())
    assert program.interface_errors() == []


def test_ir_detects_dangling_interface():
    program = compile_dag(make_app())
    broken = program.modules["infer"]
    object.__setattr__(broken, "inputs", ("ghost",))
    assert any("ghost" in e for e in program.interface_errors())


def test_per_module_language():
    program = compile_dag(make_app(), per_module_language={"prep": "java"})
    assert program.module("prep").runtime == "jvm-11"
    assert program.module("infer").runtime == "cpython-3.9"


def test_unknown_language_rejected():
    with pytest.raises(ValueError, match="unknown language"):
        compile_dag(make_app(), language="cobol")


def test_ir_serializes_to_plain_dicts():
    import json

    payload = json.dumps(compile_dag(make_app()).to_dict())
    assert "infer" in payload


# ------------------------------------------------------------ legacy partitioning


def clustered_graph(clusters=4, size=8, internal=10.0, external=1.0):
    """Dense clusters joined by weak links: ground truth for the cutter."""
    graph = nx.Graph()
    for c in range(clusters):
        nodes = [f"c{c}n{i}" for i in range(size)]
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                graph.add_edge(u, v, weight=internal)
        if c > 0:
            graph.add_edge(f"c{c - 1}n0", f"c{c}n0", weight=external)
    return graph


def test_partition_recovers_clusters():
    graph = clustered_graph()
    report = partition_program(graph, 4)
    assert len(report.segments) == 4
    # Only the weak inter-cluster links should be cut.
    assert report.cut_fraction < 0.05


def test_partition_beats_random():
    graph = clustered_graph()
    kl = partition_program(graph, 4)
    rnd = random_partition(graph, 4, seed=1)
    assert kl.cut_weight < rnd.cut_weight


def test_hints_never_split():
    graph = clustered_graph(clusters=2)
    hint = {"c0n0", "c1n0"}  # force two cluster anchors together
    report = partition_program(graph, 2, developer_hints=[hint])
    seg = report.segment_of("c0n0")
    assert report.segment_of("c1n0") == seg


def test_single_segment_no_cut():
    report = partition_program(clustered_graph(), 1)
    assert report.cut_weight == 0.0
    assert report.cut_fraction == 0.0


def test_cut_weight_helper():
    graph = nx.Graph()
    graph.add_edge("a", "b", weight=3.0)
    graph.add_edge("b", "c", weight=5.0)
    assert cut_weight(graph, [{"a"}, {"b", "c"}]) == 3.0
    assert cut_weight(graph, [{"a", "b", "c"}]) == 0.0


def test_partition_validation():
    with pytest.raises(ValueError):
        partition_program(nx.Graph(), 0)


def test_directed_input_accepted():
    digraph = nx.DiGraph()
    digraph.add_edge("a", "b", weight=1.0)
    digraph.add_edge("b", "c", weight=1.0)
    report = partition_program(digraph, 2)
    assert sum(len(s) for s in report.segments) == 3
