"""Tests for the placement scheduler."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.module import DataModule, TaskModule
from repro.core.aspects import (
    AspectBundle,
    DistributedAspect,
    ExecEnvAspect,
    ResourceAspect,
    ResourceGoal,
)
from repro.core.bundle import BundleManager
from repro.core.defaults import provider_defaults
from repro.core.objects import UDCObject
from repro.core.scheduler import SchedulerError, UdcScheduler
from repro.distsem.replication import ReplicationPolicy
from repro.execenv.environments import EnvKind
from repro.execenv.isolation import IsolationLevel
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter


def make_scheduler(racks=4, use_locality=True, spec=None):
    dc = build_datacenter(spec or DatacenterSpec(pods=1, racks_per_pod=racks))
    return dc, UdcScheduler(dc, BundleManager(), use_locality=use_locality)


def make_object(module, tenant="t", **aspects):
    bundle = AspectBundle(**aspects).with_defaults(provider_defaults(module))
    return UDCObject(module=module, aspects=bundle, tenant=tenant)


def empty_dag():
    from repro.appmodel.dag import ModuleDAG

    return ModuleDAG(name="empty")


# ------------------------------------------------------------ device selection


def test_explicit_device_wins():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t", device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    obj = make_object(task, resource=ResourceAspect(device=DeviceType.GPU))
    placement = scheduler.place_tasks(
        {"t": obj}, _dag_with(task)
    )["t"]
    assert placement.device_type == DeviceType.GPU


def test_explicit_device_outside_candidates_rejected():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t", device_candidates=frozenset({DeviceType.CPU}))
    obj = make_object(task, resource=ResourceAspect(device=DeviceType.GPU))
    with pytest.raises(SchedulerError, match="candidate set"):
        scheduler.place_tasks({"t": obj}, _dag_with(task))


def test_fastest_goal_picks_highest_rate():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t", device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    obj = make_object(task, resource=ResourceAspect(goal=ResourceGoal.FASTEST))
    placement = scheduler.place_tasks({"t": obj}, _dag_with(task))["t"]
    assert placement.device_type == DeviceType.GPU  # 40x rate


def test_cheapest_goal_picks_best_price_per_work():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t", device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    obj = make_object(task, resource=ResourceAspect(goal=ResourceGoal.CHEAPEST))
    placement = scheduler.place_tasks({"t": obj}, _dag_with(task))["t"]
    # CPU: 0.048/1 = 0.048 per work-rate; GPU: 3.06/40 = 0.0765
    assert placement.device_type == DeviceType.CPU


def _dag_with(*modules, edges=(), colocate=()):
    from repro.appmodel.dag import ModuleDAG

    dag = ModuleDAG(name="test")
    for module in modules:
        dag.add_module(module)
    for src, dst, nbytes in edges:
        dag.add_edge(src, dst, bytes_transferred=nbytes)
    if colocate:
        dag.colocate(*colocate)
    return dag


# ------------------------------------------------------------ environments


def test_isolation_tier_resolved_to_mechanism():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t")
    obj = make_object(
        task, execenv=ExecEnvAspect(isolation=IsolationLevel.MEDIUM)
    )
    placement = scheduler.place_tasks({"t": obj}, _dag_with(task))["t"]
    # Provider picks the fastest-starting MEDIUM mechanism on CPU.
    assert placement.unit.environment.kind == EnvKind.UNIKERNEL


def test_concrete_env_kind_honored():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t")
    obj = make_object(
        task,
        execenv=ExecEnvAspect(env_kind=EnvKind.SGX_ENCLAVE, single_tenant=True),
    )
    placement = scheduler.place_tasks({"t": obj}, _dag_with(task))["t"]
    env = placement.unit.environment
    assert env.kind == EnvKind.SGX_ENCLAVE
    assert env.single_tenant
    assert env.effective_isolation == IsolationLevel.STRONGEST


def test_strongest_implies_single_tenant():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t")
    obj = make_object(
        task, execenv=ExecEnvAspect(isolation=IsolationLevel.STRONGEST)
    )
    placement = scheduler.place_tasks({"t": obj}, _dag_with(task))["t"]
    assert placement.unit.environment.single_tenant
    assert placement.unit.compute.device.single_tenant_of == "t"


def test_memory_aspect_allocates_dram():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t")
    obj = make_object(task, resource=ResourceAspect(amount=1, mem_gb=16))
    placement = scheduler.place_tasks({"t": obj}, _dag_with(task))["t"]
    assert placement.unit.memory is not None
    assert placement.unit.memory.device_type == DeviceType.DRAM
    assert placement.unit.memory.amount == 16


# ------------------------------------------------------------ co-location


def test_group_members_share_one_device():
    dc, scheduler = make_scheduler()
    t1 = TaskModule(name="t1", device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    t2 = TaskModule(name="t2", device_candidates=frozenset({DeviceType.GPU}))
    dag = _dag_with(t1, t2, edges=[("t1", "t2", 100)], colocate=("t1", "t2"))
    objects = {"t1": make_object(t1), "t2": make_object(t2)}
    placements = scheduler.place_tasks(objects, dag)
    assert (placements["t1"].unit.compute.device
            is placements["t2"].unit.compute.device)
    assert placements["t1"].device_type == DeviceType.GPU


def test_group_too_big_for_any_device_rejected():
    dc, scheduler = make_scheduler()
    t1 = TaskModule(name="t1", device_candidates=frozenset({DeviceType.GPU}))
    t2 = TaskModule(name="t2", device_candidates=frozenset({DeviceType.GPU}))
    dag = _dag_with(t1, t2, colocate=("t1", "t2"))
    objects = {
        "t1": make_object(t1, resource=ResourceAspect(device=DeviceType.GPU,
                                                      amount=6)),
        "t2": make_object(t2, resource=ResourceAspect(device=DeviceType.GPU,
                                                      amount=6)),
    }
    with pytest.raises(SchedulerError, match="no single"):
        scheduler.place_tasks(objects, dag)  # 12 > 8 per GPU board


def test_group_conflicting_pins_rejected():
    dc, scheduler = make_scheduler()
    t1 = TaskModule(name="t1", device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    t2 = TaskModule(name="t2", device_candidates=frozenset(
        {DeviceType.CPU, DeviceType.GPU}))
    dag = _dag_with(t1, t2, colocate=("t1", "t2"))
    objects = {
        "t1": make_object(t1, resource=ResourceAspect(device=DeviceType.CPU)),
        "t2": make_object(t2, resource=ResourceAspect(device=DeviceType.GPU)),
    }
    with pytest.raises(SchedulerError, match="conflicting device pins"):
        scheduler.place_tasks(objects, dag)


# ------------------------------------------------------------ locality


def test_locality_places_consumer_near_data():
    dc, scheduler = make_scheduler(racks=6)
    data = DataModule(name="d", size_gb=10)
    task = TaskModule(name="t")
    dag = _dag_with(task, data, edges=[("d", "t", 100 << 20)])
    dag.affine("t", "d", weight_bytes=100 << 20)

    data_obj = make_object(
        data,
        resource=ResourceAspect(media=DeviceType.SSD),
        distributed=DistributedAspect(replication=ReplicationPolicy(1)),
    )
    scheduler.place_data(data_obj)
    data_rack = (data_obj.location.pod, data_obj.location.rack)

    task_obj = make_object(task)
    placement = scheduler.place_tasks(
        {"t": task_obj, "d": data_obj}, dag
    )["t"]
    task_loc = placement.unit.location
    assert (task_loc.pod, task_loc.rack) == data_rack


def test_locality_disabled_ignores_affinity():
    # With locality off, placement ignores data position (best-fit order).
    dc, scheduler = make_scheduler(racks=6, use_locality=False)
    task = TaskModule(name="t")
    dag = _dag_with(task)
    obj = make_object(task)
    placement = scheduler.place_tasks({"t": obj}, dag)["t"]
    assert placement.unit is not None  # just places somewhere valid


# ------------------------------------------------------------ data placement


def test_data_explicit_media_honored():
    dc, scheduler = make_scheduler()
    data = DataModule(name="d", size_gb=5)
    obj = make_object(data, resource=ResourceAspect(media=DeviceType.DRAM))
    result = scheduler.place_data(obj)
    assert all(a.device_type == DeviceType.DRAM for a in result.allocations)


def test_hot_data_prefers_memory_class():
    dc, scheduler = make_scheduler()
    hot = make_object(DataModule(name="hot", size_gb=5, hot=True))
    cold = make_object(DataModule(name="cold", size_gb=5, hot=False))
    assert scheduler.place_data(hot).allocations[0].device_type \
        == DeviceType.DRAM
    assert scheduler.place_data(cold).allocations[0].device_type \
        == DeviceType.HDD


def test_data_replication_factor_allocated():
    dc, scheduler = make_scheduler()
    obj = make_object(
        DataModule(name="d", size_gb=5),
        resource=ResourceAspect(media=DeviceType.SSD),
        distributed=DistributedAspect(replication=ReplicationPolicy(3)),
    )
    result = scheduler.place_data(obj)
    assert len(result.allocations) == 3
    assert len(obj.allocations) == 3


def test_data_too_big_for_any_medium_rejected():
    dc, scheduler = make_scheduler(
        spec=DatacenterSpec(devices_per_rack={DeviceType.CPU: 1,
                                              DeviceType.DRAM: 1})
    )
    obj = make_object(DataModule(name="d", size_gb=10_000))
    with pytest.raises(SchedulerError, match="no medium"):
        scheduler.place_data(obj)


# ------------------------------------------------------------ standbys


def test_task_replication_allocates_standbys():
    dc, scheduler = make_scheduler()
    task = TaskModule(name="t")
    obj = make_object(
        task,
        distributed=DistributedAspect(replication=ReplicationPolicy(2)),
    )
    placement = scheduler.place_tasks({"t": obj}, _dag_with(task))["t"]
    # primary compute + one standby
    computes = [a for a in obj.allocations if a.device_type == DeviceType.CPU]
    assert len(computes) == 2
    assert computes[0].device is not computes[1].device
