"""Gateway behavior plus the PR-8 serving-layer regression suite.

The gateway tests run a real :class:`~repro.gateway.UDCGateway` on an
ephemeral loopback port and drive it with the real
:class:`~repro.gateway.GatewayClient` — the wire codec, worker pool,
engine ticks, shedding, and shutdown paths are all exercised end to
end.  The regression tests pin the four bugfixes that rode along:
tenant-scoped result caching for sensitivity-labeled apps, timed-drain
finalization, incremental in-flight counters, and lint-before-cache-hit.
"""

import asyncio

import pytest

from repro.analysis import AnalysisError
from repro.appmodel.annotations import AppBuilder
from repro.gateway import GatewayClient, GatewayConfig, GatewayError, \
    UDCGateway
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service.cache import ResultCache, requires_tenant_scope
from repro.service.service import UDCService

SPEC = DatacenterSpec(
    pods=1, racks_per_pod=2,
    devices_per_rack={DeviceType.CPU: 8, DeviceType.GPU: 4,
                      DeviceType.DRAM: 2, DeviceType.SSD: 2},
)


def make_service(**kwargs):
    return UDCService(build_datacenter(SPEC), **kwargs)


def _noop(ctx):
    return None


def cpu_job(name, work=2.0):
    app = AppBuilder(name)
    app.task(name="crunch", work=work)(_noop)
    return app.build(), {"crunch": {"resource": "cheapest"}}


def phi_job(name, encrypted=True):
    """A PHI-labeled pipeline; ``encrypted=False`` seeds a UDC042 error."""
    app = AppBuilder(name)
    app.task(name="ingest", work=1.0)(_noop)
    vault = app.data("vault", size_gb=1, sensitivity="phi")
    app.writes("ingest", vault, bytes_per_run=1 << 10)
    definition = {
        "ingest": {"resource": "cheapest"},
        "vault": {"resource": "ssd"},
    }
    if encrypted:
        definition["vault"]["execenv"] = {
            "protection": ["encrypt", "integrity"]
        }
    return app.build(), definition


def run_gateway(scenario, service=None, config=None):
    """Start a gateway on an ephemeral port, run ``scenario(gw,
    service)``, and guarantee a shutdown even on failure."""

    async def main():
        svc = service if service is not None else make_service()
        gateway = UDCGateway(
            svc, config or GatewayConfig(port=0, tick_sim_s=0.5))
        await gateway.start()
        try:
            return await scenario(gateway, svc)
        finally:
            await gateway.shutdown()

    return asyncio.run(main())


# ------------------------------------------------------------- tentpole


def test_concurrent_submits_all_complete():
    async def scenario(gateway, service):
        async with GatewayClient(gateway.host, gateway.port) as client:
            await asyncio.gather(*(
                client.register_tenant(f"t{i}") for i in range(5)
            ))
            outcomes = await asyncio.gather(*(
                client.submit_and_wait(
                    f"t{i % 5}", {"archetype": "tiny", "tag": f"t{i % 5}"},
                    inputs={"iter": i}, timeout_s=30,
                )
                for i in range(20)
            ))
        return outcomes

    outcomes = run_gateway(scenario)
    assert len(outcomes) == 20
    assert all(o["done"] and o["status"] == "done" for o in outcomes)
    # Every submission got a distinct service-wide seq.
    assert len({o["seq"] for o in outcomes}) == 20


def test_stream_events_arrive_in_order():
    async def scenario(gateway, service):
        async with GatewayClient(gateway.host, gateway.port) as client:
            session = await client.stream()
            accepted = await client.submit(
                "streamer", {"archetype": "web", "tag": "s"})
            await session.watch(accepted["seq"])
            events = []
            async for event in session.events_until_result(accepted["seq"]):
                events.append(event)
            await session.close()
        return events

    events = run_gateway(scenario)
    # Per-watch event_seq is contiguous from zero: ordered delivery.
    assert [e["event_seq"] for e in events] == list(range(len(events)))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "status"
    assert kinds[-1] == "result"
    # Status transitions replay the lifecycle in order, ending done.
    statuses = [e["status"] for e in events if e["event"] == "status"]
    assert statuses[0] in ("pending", "queued", "running")
    assert statuses[-1] == "done"
    assert statuses == sorted(
        statuses, key=("pending", "queued", "running", "done").index)
    # Spans and the metric summary arrive before the terminal result.
    assert "metric" in kinds and kinds.index("metric") < kinds.index(
        "result")
    assert events[-1]["payload"]["done"] is True


def test_load_shed_returns_429_and_consumes_no_quota():
    config = GatewayConfig(port=0, tick_sim_s=0.5, max_live=1)

    async def scenario(gateway, service):
        async with GatewayClient(gateway.host, gateway.port) as client:
            await client.register_tenant("greedy", max_submissions=2)
            # Pause the engine tick so the first submission stays live
            # for the whole shed window — otherwise a fast tick could
            # finalize it between the shed and the assertions below.
            gateway._tick_task.cancel()
            try:
                await gateway._tick_task
            except asyncio.CancelledError:
                pass
            first = await client.submit(
                "greedy", {"archetype": "tiny", "tag": "g"},
                inputs={"iter": 1})
            with pytest.raises(GatewayError) as err:
                await client.submit(
                    "greedy", {"archetype": "tiny", "tag": "g"},
                    inputs={"iter": 2})
            shed = err.value
            assert shed.status == 429
            assert shed.payload["error"] == "shed"
            assert shed.retry_after_s is not None
            # The shed consumed nothing: no submission recorded, no
            # in-flight slot, no lifetime-quota charge.
            assert service.tenants["greedy"].submitted == 1
            assert service.in_flight("greedy") == 1
            gateway._tick_task = asyncio.create_task(gateway._tick_loop())
            await client.result(first["seq"], wait=True, timeout_s=30)
            # With the slot free the tenant's remaining lifetime quota
            # is intact — a post-shed submit is the 2nd of 2 allowed.
            retry = await client.submit_and_wait(
                "greedy", {"archetype": "tiny", "tag": "g"},
                inputs={"iter": 2}, timeout_s=30)
            assert retry["done"]
        return gateway._shed_total

    shed_total = run_gateway(scenario, config=config)
    assert shed_total == 1


def test_graceful_shutdown_drains_in_flight():
    async def scenario(gateway, service):
        async with GatewayClient(gateway.host, gateway.port) as client:
            accepted = [
                await client.submit(
                    "drainer", {"archetype": "batch", "tag": "d"},
                    inputs={"iter": i})
                for i in range(3)
            ]
            assert all(not a.get("done") for a in accepted)
            await client.shutdown_server()
        await gateway.wait_closed()
        # Draining finished everything before the server stopped.
        assert service.open_count == 0
        assert service.pending_count == 0
        statuses = {h.status for h in service.handles}
        assert statuses <= {"done", "unplaceable", "cached"}
        done = [h for h in service.handles if h.status == "done"]
        assert len(done) == 3
        assert all(h.result is not None for h in done)
        return True

    assert run_gateway(scenario)


def test_draining_gateway_refuses_new_submissions():
    async def scenario(gateway, service):
        async with GatewayClient(gateway.host, gateway.port) as client:
            gateway._draining = True
            with pytest.raises(GatewayError) as err:
                await client.submit("x", {"archetype": "tiny", "tag": "x"})
            gateway._draining = False
            assert err.value.status == 503
        return True

    assert run_gateway(scenario)


# --------------------------------------- regression: tenant-scoped cache


def test_sensitive_results_never_serve_across_tenants():
    """Tenant B must not read tenant A's cached PHI result (the key
    previously ignored the tenant entirely — this test fails on the
    old ``ResultCache.key``)."""
    service = make_service()
    dag, definition = phi_job("records")
    first = service.submit("hospital-a", dag, definition)
    service.drain()
    assert first.result is not None

    other = service.submit("hospital-b", dag, definition)
    assert not other.cached, \
        "tenant B was served tenant A's cached PHI result"
    service.drain()

    # Same tenant still enjoys its own cached result...
    again = service.submit("hospital-a", dag, definition)
    assert again.cached
    # ...and public apps keep sharing cross-tenant.
    pub_dag, pub_def = cpu_job("public-job")
    service.submit("hospital-a", pub_dag, pub_def)
    service.drain()
    shared = service.submit("hospital-b", pub_dag, pub_def)
    assert shared.cached


def test_tenant_scope_predicate_and_key_shape():
    phi_dag, _ = phi_job("scoped")
    pub_dag, _ = cpu_job("unscoped")
    assert requires_tenant_scope(phi_dag)
    assert not requires_tenant_scope(pub_dag)
    scoped = ResultCache.key(phi_dag, None, None, tenant="a")
    assert scoped[0] == ("tenant", "a")
    assert ResultCache.key(phi_dag, None, None, tenant="b") != scoped
    # Public apps share one key regardless of tenant.
    assert ResultCache.key(pub_dag, None, None, tenant="a") == \
        ResultCache.key(pub_dag, None, None, tenant="b")
    # Historical callers without a tenant keep the unscoped key.
    assert ResultCache.key(pub_dag, None, None)[0] == ("shared",)


# ------------------------------------- regression: timed-drain finalize


def test_timed_drain_finalizes_completed_handles():
    """``drain(until=...)`` used to return [] and leave finished
    submissions unfinalized until a quiescent drain."""
    service = make_service()
    dag, definition = cpu_job("tick-me")
    handle = service.submit("ticker", dag, definition)
    sim = service.runtime.sim
    finished = service.drain(until=sim.now + 1000.0)
    assert handle in finished
    assert handle.result is not None
    assert handle.outputs == {"crunch": None}
    # Finalization reached the ledger and freed the in-flight slot.
    assert service.in_flight("ticker") == 0
    usage = {u.tenant: u for u in service.rollup()}["ticker"]
    assert usage.completed == 1
    # A tick that completes nothing finalizes nothing.
    assert service.drain(until=sim.now + 1.0) == []


def test_timed_drain_leaves_queued_work_parked():
    service = make_service()
    big_dag, big_def = cpu_job("hog", work=50.0)
    handles = [service.submit("hog", big_dag, big_def,
                              inputs={"i": i}) for i in range(40)]
    sim = service.runtime.sim
    service.drain(until=sim.now + 0.001)
    # A timed drain is a tick, not a verdict: nothing is unplaceable.
    assert all(h.status != "unplaceable" for h in handles)
    service.drain()
    assert all(h.status in ("done", "unplaceable") for h in handles)


# ------------------------------- regression: incremental in-flight count


def test_in_flight_matches_reference_scan_throughout():
    service = make_service()
    dag, definition = cpu_job("counted")
    tenants = ["alpha", "beta"]

    def assert_equivalent():
        for tenant in tenants + ["never-seen"]:
            assert service.in_flight(tenant) == \
                service._in_flight_scan(tenant)

    assert_equivalent()
    handles = []
    for index in range(6):
        handles.append(service.submit(tenants[index % 2], dag, definition,
                                      inputs={"i": index}))
        assert_equivalent()
    sim = service.runtime.sim
    service.drain(until=sim.now + 1e9)
    assert_equivalent()
    # Cache hits are never live.
    hit = service.submit("alpha", dag, definition, inputs={"i": 0})
    assert hit.cached
    assert_equivalent()
    service.drain()
    assert_equivalent()
    assert service.in_flight("alpha") == 0
    assert service.in_flight("beta") == 0


# ------------------------------------ regression: lint before cache hit


def test_cache_hit_still_lints():
    """A result cached under a lint-free service must not bypass the
    front-door analyzer once linting is on (cache hits used to
    short-circuit ``_lint`` entirely)."""
    service = make_service(lint=False)
    dag, definition = phi_job("leaky", encrypted=False)
    service.submit("clinic", dag, definition)
    service.drain()
    hit = service.submit("clinic", dag, definition)
    assert hit.cached  # lint off: the cache serves the defect freely

    service.lint = True
    with pytest.raises(AnalysisError) as err:
        service.submit("clinic", dag, definition)
    assert any(d.code == "UDC042" for d in err.value.report)


def test_lint_memo_replays_metrics_identically():
    service = make_service()
    dag, definition = cpu_job("relint")
    service.submit("m", dag, definition, inputs={"i": 1})
    registry = service.telemetry.metrics
    counter = registry.counter("udc_lint_checks_total",
                               {"tenant": "m"})
    first = counter.value
    service.submit("m", dag, definition, inputs={"i": 2})
    # Memoized verdict, same metric emission.
    assert counter.value == first + 1
