"""Property-based tests (hypothesis) on core data structures & invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.distsem.consistency import ConsistencyLevel, strictest
from repro.execenv.protection import ProtectionPolicy, SecureChannel
from repro.hardware.catalog import UNIT_PRICES, default_catalog
from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceType
from repro.hardware.fabric import Fabric, Location
from repro.hardware.pools import AllocationError, ResourcePool
from repro.hardware.server import ServerCluster, ServerSpec, WorkloadDemand
from repro.simulator import Simulator
from repro.simulator.rng import derive_seed

# ------------------------------------------------------------ pools


@st.composite
def allocation_plans(draw):
    """A sequence of (amount, tenant) requests against a CPU pool."""
    n = draw(st.integers(1, 20))
    return [
        (
            draw(st.floats(0.25, 8.0, allow_nan=False)),
            draw(st.sampled_from(["a", "b", "c"])),
        )
        for _ in range(n)
    ]


@given(allocation_plans())
@settings(max_examples=60, deadline=None)
def test_pool_conservation(plan):
    """used + free == capacity after any allocate/release interleaving,
    and no device is ever oversubscribed."""
    pool = ResourcePool(DeviceType.CPU)
    for _ in range(3):
        pool.add_device(Device(spec=DEFAULT_SPECS[DeviceType.CPU]))
    live = []
    for index, (amount, tenant) in enumerate(plan):
        try:
            live.append(pool.allocate(amount, tenant))
        except AllocationError:
            pass
        if index % 3 == 2 and live:
            pool.release(live.pop(0))
    assert pool.total_used + pool.total_free == pytest.approx(
        pool.total_capacity)
    for device in pool.devices:
        assert device.used <= device.spec.capacity + 1e-9
    for allocation in live:
        pool.release(allocation)
    assert pool.total_used == pytest.approx(0.0)


@given(st.floats(0.25, 32.0), st.floats(0.25, 32.0))
@settings(max_examples=40, deadline=None)
def test_resize_preserves_conservation(initial, target):
    pool = ResourcePool(DeviceType.CPU)
    pool.add_device(Device(spec=DEFAULT_SPECS[DeviceType.CPU]))
    alloc = pool.allocate(initial, "t")
    try:
        pool.resize(alloc, target)
    except AllocationError:
        pass
    assert pool.total_used + pool.total_free == pytest.approx(
        pool.total_capacity)
    assert pool.total_used == pytest.approx(alloc.amount)


# ------------------------------------------------------------ fabric


locations = st.builds(
    Location,
    pod=st.integers(0, 3),
    rack=st.integers(0, 5),
    slot=st.integers(0, 8),
)


@given(locations, locations, st.integers(1, 1 << 24))
@settings(max_examples=80, deadline=None)
def test_transfer_time_nonnegative_and_symmetric(src, dst, size):
    fabric = Fabric(Simulator())
    forward = fabric.transfer_time(src, dst, size)
    backward = fabric.transfer_time(dst, src, size)
    assert forward >= 0
    assert forward == pytest.approx(backward)


@given(locations, locations, st.integers(1, 1 << 20), st.integers(1, 1 << 20))
@settings(max_examples=60, deadline=None)
def test_transfer_time_monotone_in_size(src, dst, a, b):
    fabric = Fabric(Simulator())
    small, large = sorted((a, b))
    assert fabric.transfer_time(src, dst, small) <= \
        fabric.transfer_time(src, dst, large)


# ------------------------------------------------------------ protection


policies = st.builds(
    ProtectionPolicy,
    encrypt=st.booleans(),
    integrity=st.booleans(),
    replay_protect=st.booleans(),
)


@given(policies, st.binary(min_size=0, max_size=2048))
@settings(max_examples=80, deadline=None)
def test_protect_unprotect_roundtrip(policy, payload):
    channel = SecureChannel(b"shared", policy, "ch")
    assert channel.unprotect(channel.protect(payload)) == payload


@given(st.binary(min_size=1, max_size=512), st.integers(0, 511))
@settings(max_examples=60, deadline=None)
def test_any_bitflip_detected(payload, position):
    from repro.execenv.protection import IntegrityError

    position %= len(payload)
    channel = SecureChannel(
        b"shared", ProtectionPolicy(encrypt=True, integrity=True), "ch"
    )
    blob = channel.protect(payload)
    body = bytearray(blob.body)
    body[position] ^= 0x01
    import dataclasses

    tampered = dataclasses.replace(blob, body=bytes(body))
    with pytest.raises(IntegrityError):
        channel.unprotect(tampered)


@given(policies, policies)
@settings(max_examples=40, deadline=None)
def test_protection_strictest_commutative_and_monotone(a, b):
    merged = a.strictest(b)
    assert merged == b.strictest(a)
    for flag in ("encrypt", "integrity", "replay_protect"):
        assert getattr(merged, flag) == (getattr(a, flag) or getattr(b, flag))


# ------------------------------------------------------------ consistency lattice


levels = st.sampled_from(list(ConsistencyLevel))


@given(levels, levels, levels)
@settings(max_examples=30, deadline=None)
def test_strictest_is_a_join(a, b, c):
    assert strictest(a, b) == strictest(b, a)
    assert strictest(a, a) == a
    assert strictest(strictest(a, b), c) == strictest(a, strictest(b, c))
    assert strictest(a, b).rank >= max(a.rank, b.rank) - 0  # == actually
    assert strictest(a, b).rank == max(a.rank, b.rank)


# ------------------------------------------------------------ catalog


demands = st.builds(
    WorkloadDemand,
    cpus=st.floats(0.25, 64.0),
    mem_gb=st.floats(0.5, 512.0),
    gpus=st.sampled_from([0.0, 0.0, 0.0, 1.0, 4.0, 8.0]),
    duty=st.floats(0.1, 1.0),
)


@given(demands)
@settings(max_examples=100, deadline=None)
def test_cheapest_fit_covers_and_waste_bounded(demand):
    catalog = default_catalog()
    instance = catalog.cheapest_fit(demand)
    if instance is None:
        # Nothing covers it; must exceed the largest shape somewhere.
        assert demand.cpus > 96 or demand.mem_gb > 768 or demand.gpus > 8
        return
    assert instance.fits(demand)
    # No cheaper instance also fits.
    for other in catalog:
        if other.price_hour < instance.price_hour:
            assert not other.fits(demand)
    waste = 1.0 - (
        demand.duty * (
            min(demand.cpus, instance.vcpus) * UNIT_PRICES["vcpu"]
            + min(demand.mem_gb, instance.mem_gb) * UNIT_PRICES["mem_gb"]
            + min(demand.gpus, instance.gpus) * UNIT_PRICES["gpu"]
        ) / instance.price_hour
    )
    assert -1e-9 <= waste <= 1.0


# ------------------------------------------------------------ bin packing


@given(st.lists(demands, min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_ffd_never_oversubscribes(demand_list):
    spec = ServerSpec(cpus=64, mem_gb=512, gpus=8)
    cluster = ServerCluster(spec)
    placement = cluster.pack(demand_list)
    for server in cluster.servers:
        for dim, capacity in spec.dimensions().items():
            assert server.used(dim) <= capacity + 1e-6
    placed = len(placement.assignments) + len(placement.unplaced)
    assert placed == len(demand_list)


# ------------------------------------------------------------ rng


@given(st.integers(0, 2**31), st.text(min_size=0, max_size=20))
@settings(max_examples=60, deadline=None)
def test_derive_seed_in_range_and_stable(seed, name):
    value = derive_seed(seed, name)
    assert 0 <= value < 2**64
    assert value == derive_seed(seed, name)


# ------------------------------------------------------------ legacy partitioner


@st.composite
def weighted_graphs(draw):
    import networkx as nx

    n = draw(st.integers(3, 16))
    graph = nx.Graph()
    graph.add_nodes_from(f"n{i}" for i in range(n))
    for i in range(n - 1):  # spanning path keeps it connected
        graph.add_edge(f"n{i}", f"n{i + 1}",
                       weight=draw(st.floats(0.5, 10.0)))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            graph.add_edge(f"n{u}", f"n{v}",
                           weight=draw(st.floats(0.5, 10.0)))
    return graph


@given(weighted_graphs(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_partition_is_a_partition(graph, k):
    from repro.appmodel.legacy import partition_program

    report = partition_program(graph, k)
    union = set().union(*report.segments) if report.segments else set()
    assert union == set(graph.nodes)
    total = sum(len(s) for s in report.segments)
    assert total == graph.number_of_nodes()  # disjoint
    assert 0.0 <= report.cut_fraction <= 1.0
