"""Tests for placement cells and the cross-cell router (PR 7).

Covers the partition itself (device conservation, parent hand-off,
contiguity), the router's deterministic scoring/spill order, the
engineered cross-cell spill scenario — first-choice cell rejects, the
placement lands in the overflow cell, identically on every run and
under record/replay — and the sharded metrics surface (``cell`` labels
plus label-free cross-cell aggregates).
"""

import itertools

import pytest

import repro.hardware.devices as devices_mod
import repro.hardware.pools as pools_mod
from repro.appmodel.annotations import AppBuilder
from repro.core.cells import (
    CellRouter,
    estimate_demand,
    partition_datacenter,
    partition_racks,
)
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.replay import ReplayRunner, RunConfig, read_journal
from repro.service import UDCService

#: two pods -> two cells of 2 racks each; per cell: 4 CPU blades,
#: 4 GPU boards (32 gpus), 2 DRAM sleds (1024 GB), 2 SSD shelves.
TWIN = DatacenterSpec(
    pods=2, racks_per_pod=2,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 2,
                      DeviceType.DRAM: 1, DeviceType.SSD: 1},
)


def _fresh_dc(spec=TWIN):
    devices_mod._device_ids = itertools.count()
    pools_mod._alloc_ids = itertools.count()
    return build_datacenter(spec)


def spill_job(gpus=16, dram_gb=64.0):
    """A GPU job dragging a hot dataset: the data demand is estimated
    exactly while the task demand is one grain — the mismatch that
    makes a fuller-looking cell the router's first choice."""
    app = AppBuilder("spiller")

    @app.task(name="train", work=4.0, devices={DeviceType.GPU})
    def train(ctx):
        return "ok"

    app.data("corpus", size_gb=dram_gb, hot=True)
    return app.build(), {"train": {"resource": {"device": "gpu",
                                                "amount": gpus}}}


# ------------------------------------------------------------ partition

def test_partition_racks_contiguous_near_equal():
    keys = [(p, r) for p in range(2) for r in range(5)]
    groups = partition_racks(keys, 4)
    assert [len(g) for g in groups] == [3, 3, 2, 2]
    assert [k for g in groups for k in g] == sorted(keys)


def test_partition_racks_rejects_bad_counts():
    keys = [(0, 0), (0, 1)]
    with pytest.raises(ValueError):
        partition_racks(keys, 0)
    with pytest.raises(ValueError):
        partition_racks(keys, 3)


def test_partition_datacenter_moves_every_device():
    dc = _fresh_dc()
    before = sorted(d.seq for d in dc.devices)
    cells = partition_datacenter(dc, 2)
    assert dc.devices == []
    for pool in dc.pools:
        assert pool.devices == []
        assert pool.total_capacity == 0
    after = sorted(d.seq for cell in cells for d in cell.devices)
    assert after == before
    # Contiguous rack split: no rack straddles cells, pods stay whole
    # here (2 racks/cell on a 2x2 layout).
    for cell_id, cell in enumerate(cells):
        assert {d.location.pod for d in cell.devices} == {cell_id}
        for pool in cell.pools:
            assert pool.cell == str(cell_id)
            assert pool.indexed


def test_partition_refuses_live_allocations():
    dc = _fresh_dc()
    dc.pool(DeviceType.CPU).allocate(1.0, "t")
    with pytest.raises(ValueError, match="live allocations"):
        partition_datacenter(dc, 2)


def test_estimate_demand_tasks_and_data():
    dc = _fresh_dc()
    app, _definition = spill_job(gpus=16, dram_gb=64.0)
    demand = estimate_demand(app, dc)
    # Tasks count one grain of their cheapest candidate; data its size.
    assert demand[DeviceType.GPU] == 1.0
    assert demand[DeviceType.DRAM] == 64.0


# --------------------------------------------------------------- router

def test_router_prefers_emptiest_feasible_cell():
    cells = partition_datacenter(_fresh_dc(), 2)
    router = CellRouter(cells)
    demand = {DeviceType.GPU: 1.0}
    assert router.order(demand) == [0, 1]  # tie -> lower cell id
    cells[0].pool(DeviceType.GPU).allocate(2.0, "t")
    assert router.order(demand) == [1, 0]


def test_router_sorts_infeasible_cells_last():
    cells = partition_datacenter(_fresh_dc(), 2)
    router = CellRouter(cells)
    # Fill every GPU board in cell 0 so no single device can host one
    # whole-board grain: cell 0 is infeasible for it, whatever its
    # total free elsewhere says.
    for _ in range(4):
        cells[0].pool(DeviceType.GPU).allocate(8.0, "t")
    assert router.order({DeviceType.GPU: 8.0}) == [1, 0]


# ---------------------------------------------------------------- spill

def _run_spill_scenario():
    """Cell 0 looks roomier (min-headroom) but cannot host the job's
    16 GPUs; cell 1 can.  Returns (service, handle)."""
    service = UDCService(_fresh_dc(), cells=2)
    gpu0 = service.cell_runtimes[0].datacenter.pool(DeviceType.GPU)
    dram1 = service.cell_runtimes[1].datacenter.pool(DeviceType.DRAM)
    # cell 0: 15 of 32 gpus free -> rejects a 16-gpu job, but its DRAM
    # is untouched so its min-headroom stays high.
    for amount in (8.0, 8.0, 1.0):
        gpu0.allocate(amount, "filler")
    # cell 1: all gpus free, but DRAM down to 70 GB -> its min-headroom
    # (70 - 64 demanded) ranks below cell 0's.
    dram1.allocate(512.0, "filler")
    dram1.allocate(442.0, "filler")
    app, definition = spill_job(gpus=16, dram_gb=64.0)
    handle = service.submit("tenant", app, definition)
    service.drain()
    return service, handle


def test_cross_cell_spill_lands_in_overflow_cell():
    service, handle = _run_spill_scenario()
    assert handle.status == "done"
    assert handle.cell == 1
    assert service.router.routed == 1
    assert service.router.spills == 1
    # The spill really did bounce off cell 0: its GPU pool is exactly
    # as the pre-fill left it.
    gpu0 = service.cell_runtimes[0].datacenter.pool(DeviceType.GPU)
    assert gpu0.total_used == 17.0


def test_cross_cell_spill_is_deterministic():
    traces = []
    for _ in range(2):
        service, handle = _run_spill_scenario()
        assert handle.cell == 1
        traces.append([
            [(pool.device_type.value, a.device.seq, a.amount, a.tenant)
             for a in pool._allocations.values()]
            for runtime in service.cell_runtimes
            for pool in runtime.datacenter.pools
        ])
    assert traces[0] == traces[1]


# --------------------------------------------------------------- replay

def test_sharded_run_records_and_replays(tmp_path):
    config = RunConfig(workload="tenant-trace",
                       params={"tenants": 4, "minutes": 6.0,
                               "round_every": 3},
                       seed=3, pods=2, racks=2, cells=2)
    first = str(tmp_path / "first.jsonl")
    second = str(tmp_path / "second.jsonl")
    service = ReplayRunner(config).record(first)
    assert service.cells == 2
    assert service.router.routed > 0
    ReplayRunner(config).record(second)
    with open(first, "rb") as f_first, open(second, "rb") as f_second:
        assert f_first.read() == f_second.read()
    replayed, events = ReplayRunner(config).replay(first)
    assert len(events) > 0
    assert replayed.router.routed == service.router.routed
    assert replayed.router.spills == service.router.spills


def test_sharded_config_round_trips_cells(tmp_path):
    config = RunConfig(workload="fig2-medical", params={"patients": 2},
                       seed=7, pods=2, racks=2, cells=2)
    assert RunConfig.from_json_dict(config.to_json_dict()) == config
    # Old journals (no "cells" key) deserialize as unsharded.
    payload = config.to_json_dict()
    del payload["cells"]
    assert RunConfig.from_json_dict(payload).cells == 1


# -------------------------------------------------------------- metrics

def test_metrics_snapshot_aggregates_across_cells():
    service, _handle = _run_spill_scenario()
    rendered = service.metrics_snapshot().render_prometheus()
    assert 'udc_pool_used_units{cell="0",device_type="gpu"} 17' in rendered
    # The job ran (and released) its 16 gpus in cell 1.
    assert 'udc_pool_peak_used_units{cell="1",device_type="gpu"} 16' in rendered
    # The label-free family is the cross-cell sum (dashboards built on
    # the unsharded names keep working).
    assert 'udc_pool_used_units{device_type="gpu"} 17' in rendered
    assert 'udc_pool_used_units{device_type="dram"} 954' in rendered
    assert "udc_service_cells 2" in rendered
    assert 'udc_cell_free_units{cell="0",device_type="gpu"} 15' in rendered
    assert 'udc_router_routed_total{cell="1"} 1' in rendered
    assert 'udc_router_spills_total{cell="1"} 1' in rendered


def test_unsharded_metrics_carry_no_cell_label():
    service = UDCService(_fresh_dc())
    service.drain()
    rendered = service.metrics_snapshot().render_prometheus()
    assert "cell=" not in rendered
    assert "udc_service_cells" not in rendered


def test_router_telemetry_counts_spills():
    from repro.core.telemetry import Telemetry

    devices_mod._device_ids = itertools.count()
    pools_mod._alloc_ids = itertools.count()
    dc = build_datacenter(TWIN)
    service = UDCService(dc, cells=2, telemetry=Telemetry(enabled=True))
    gpu0 = service.cell_runtimes[0].datacenter.pool(DeviceType.GPU)
    dram1 = service.cell_runtimes[1].datacenter.pool(DeviceType.DRAM)
    for amount in (8.0, 8.0, 1.0):
        gpu0.allocate(amount, "filler")
    dram1.allocate(512.0, "filler")
    dram1.allocate(442.0, "filler")
    app, definition = spill_job(gpus=16, dram_gb=64.0)
    service.submit("tenant", app, definition)
    service.drain()
    metrics = service.telemetry.metrics
    labels = {"cell": "1"}
    assert metrics.value("udc_router_routed_total", labels) == 1
    assert metrics.value("udc_router_spills_total", labels) == 1
    assert metrics.value("udc_router_spills_total", {"cell": "0"}) == 0.0
