"""Tests for provider-side profit accounting and runtime network ordering."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.economics.provider import (
    COST_OF_GOODS_FRACTION,
    ProviderLedger,
    account_run,
    powered_devices,
)
from repro.hardware.topology import DatacenterSpec, build_datacenter

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def small_app(name="app"):
    app = AppBuilder(name)

    @app.task(name="work", work=10.0)
    def work(ctx):
        return None

    return app.build()


DEFINITION = {"work": {"resource": {"device": "cpu", "amount": 4}}}


# ------------------------------------------------------------ provider ledger


def test_ledger_arithmetic():
    ledger = ProviderLedger(revenue=100.0, capacity_cost=70.0,
                            powered_device_hours=10.0, tenant_count=5)
    assert ledger.profit == pytest.approx(30.0)
    assert ledger.margin == pytest.approx(0.3)
    scaled = ledger.at_multiplier(1.2)
    assert scaled.revenue == pytest.approx(120.0)
    assert scaled.capacity_cost == pytest.approx(70.0)
    with pytest.raises(ValueError):
        ledger.at_multiplier(0)


def test_powered_snapshot_and_accounting():
    runtime = UDCRuntime(build_datacenter(SPEC))
    submissions = [
        runtime.submit(small_app(f"a{i}"), DEFINITION, tenant=f"t{i}")
        for i in range(4)
    ]
    powered = powered_devices(runtime.datacenter)
    assert powered  # devices are active mid-run
    results = runtime.drain()
    window = max(r.makespan_s for r in results)
    ledger = account_run(runtime.datacenter, results, window,
                         powered_device_ids=powered)
    assert ledger.revenue == pytest.approx(sum(r.total_cost for r in results))
    assert ledger.tenant_count == 4
    assert ledger.powered_device_hours == pytest.approx(
        len(powered) * window / 3600.0)
    assert ledger.capacity_cost > 0


def test_consolidation_shrinks_capacity_cost_not_revenue():
    """The §2 claim in ledger form: same revenue, fewer powered devices."""
    # Consolidated: 4 tenants on one DC.
    shared = UDCRuntime(build_datacenter(SPEC))
    for index in range(4):
        shared.submit(small_app(f"a{index}"), DEFINITION, tenant=f"t{index}")
    shared_powered = powered_devices(shared.datacenter)
    shared_results = shared.drain()
    window = max(r.makespan_s for r in shared_results)
    shared_ledger = account_run(shared.datacenter, shared_results, window,
                                powered_device_ids=shared_powered)

    # Dedicated: each tenant on its own DC (sum the ledgers).
    dedicated_revenue = dedicated_cost = dedicated_hours = 0.0
    for index in range(4):
        runtime = UDCRuntime(build_datacenter(SPEC))
        runtime.submit(small_app(f"a{index}"), DEFINITION, tenant=f"t{index}")
        powered = powered_devices(runtime.datacenter)
        results = runtime.drain()
        ledger = account_run(runtime.datacenter, results, window,
                             powered_device_ids=powered)
        dedicated_revenue += ledger.revenue
        dedicated_cost += ledger.capacity_cost
        dedicated_hours += ledger.powered_device_hours

    assert shared_ledger.revenue == pytest.approx(dedicated_revenue, rel=0.01)
    assert shared_ledger.powered_device_hours < dedicated_hours
    assert shared_ledger.capacity_cost < dedicated_cost
    assert shared_ledger.profit > dedicated_revenue - dedicated_cost


def test_account_run_validation():
    runtime = UDCRuntime(build_datacenter(SPEC))
    with pytest.raises(ValueError):
        account_run(runtime.datacenter, [], 0.0)


def test_cost_of_goods_fraction_sane():
    assert 0 < COST_OF_GOODS_FRACTION < 1


# ------------------------------------------------------ runtime network ordering


def sequential_store_app():
    app = AppBuilder("ordered")

    @app.task(name="writer", work=2.0)
    def writer(ctx):
        return None

    ledger = app.data("ledger", size_gb=2)
    app.writes("writer", ledger, bytes_per_run=1 << 20)
    return app.build()


LEDGER_DEF = {"ledger": {"resource": "ssd",
                         "distributed": {"replication": 3,
                                         "consistency": "sequential"}}}


def test_runtime_network_ordering_wires_sequencer():
    runtime = UDCRuntime(build_datacenter(SPEC), use_network_ordering=True)
    result = runtime.run(sequential_store_app(), LEDGER_DEF)
    store = result.objects["ledger"].store
    assert store.sequencer is not None
    # The write went through the switch: replicas advanced their sequence.
    assert all(r.next_sequence >= 1 for r in store.replicas)
    assert result.total_failures == 0


def test_runtime_without_network_ordering_uses_primary():
    runtime = UDCRuntime(build_datacenter(SPEC), use_network_ordering=False)
    result = runtime.run(sequential_store_app(), LEDGER_DEF)
    store = result.objects["ledger"].store
    assert store.sequencer is None
    assert all(r.next_sequence == 0 for r in store.replicas)
    # Data still reached every replica via the primary protocol.
    assert all(r.data for r in store.replicas)
