"""Model-based property tests: the replicated store against a reference
model, and the scheduler against random applications."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.core.runtime import UDCRuntime
from repro.distsem.consistency import ConsistencyLevel
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import ReplicatedStore
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter

CLIENT = Location(0, 0, 99)

# ------------------------------------------------------------ store vs model

ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "read"]),
        st.sampled_from(["k1", "k2", "k3"]),
        st.integers(0, 999),
    ),
    min_size=1,
    max_size=25,
)


def fresh_store(consistency, factor=3):
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
    placement = ReplicaPlacer(dc.pool(DeviceType.SSD)).place(
        10, "t", ReplicationPolicy(factor=factor))
    return dc, ReplicatedStore(dc.sim, dc.fabric, "S", placement, consistency)


@given(ops)
@settings(max_examples=30, deadline=None)
def test_sequential_store_matches_reference_model(op_sequence):
    """Under sequential consistency with serialized clients, the store is
    observationally identical to a plain dict."""
    dc, store = fresh_store(ConsistencyLevel.SEQUENTIAL)
    model = {}
    observed = []

    def driver():
        for op, key, value in op_sequence:
            if op == "write":
                payload = f"{value}".encode()
                yield dc.sim.process(store.write(CLIENT, key, payload, 128))
                model[key] = payload
            else:
                result, _stats = yield dc.sim.process(store.read(CLIENT, key))
                observed.append((key, result, model.get(key)))

    done = dc.sim.process(driver())
    dc.sim.run(until_event=done)
    for key, got, expected in observed:
        assert got == expected, f"read({key}) = {got!r}, model says {expected!r}"
    # And every replica converged to the model.
    for replica in store.replicas:
        for key, payload in model.items():
            assert replica.data[key][1] == payload


@given(ops)
@settings(max_examples=20, deadline=None)
def test_eventual_store_converges_to_model_at_quiescence(op_sequence):
    dc, store = fresh_store(ConsistencyLevel.EVENTUAL)
    model = {}

    def driver():
        for op, key, value in op_sequence:
            if op == "write":
                payload = f"{value}".encode()
                yield dc.sim.process(store.write(CLIENT, key, payload, 128))
                model[key] = payload
            else:
                yield dc.sim.process(store.read(CLIENT, key))

    done = dc.sim.process(driver())
    dc.sim.run(until_event=done)
    dc.sim.run()  # quiescence: anti-entropy drains
    for replica in store.replicas:
        for key, payload in model.items():
            assert replica.data.get(key, (0, None))[1] == payload


@given(ops, st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_quorum_reads_never_travel_backwards(op_sequence, quorum):
    """Monotonicity: with a fixed single client, successive quorum reads
    of a key never observe an older version than a previous read."""
    dc, store = fresh_store(ConsistencyLevel.EVENTUAL)
    last_version = {}

    def driver():
        for op, key, value in op_sequence:
            if op == "write":
                yield dc.sim.process(
                    store.write(CLIENT, key, f"{value}".encode(), 128))
            else:
                _value, stats = yield dc.sim.process(
                    store.read_quorum(CLIENT, key, quorum=quorum))
                version = store._version_counter.get(key, 0) - stats.staleness
                assert version >= last_version.get(key, 0)
                last_version[key] = version

    done = dc.sim.process(driver())
    dc.sim.run(until_event=done)


# ------------------------------------------------------------ scheduler fuzz


@st.composite
def random_apps(draw):
    """A random small application with valid structure."""
    n_tasks = draw(st.integers(1, 5))
    n_data = draw(st.integers(0, 2))
    dag = ModuleDAG(name="fuzz")
    for index in range(n_tasks):
        devices = draw(st.sampled_from([
            frozenset({DeviceType.CPU}),
            frozenset({DeviceType.GPU}),
            frozenset({DeviceType.CPU, DeviceType.GPU}),
        ]))
        dag.add_module(TaskModule(
            name=f"t{index}",
            work=draw(st.floats(0.5, 20.0)),
            device_candidates=devices,
        ))
        if index > 0 and draw(st.booleans()):
            dag.add_edge(f"t{draw(st.integers(0, index - 1))}", f"t{index}",
                         bytes_transferred=draw(st.integers(64, 1 << 20)))
    for index in range(n_data):
        dag.add_module(DataModule(name=f"d{index}",
                                  size_gb=draw(st.floats(0.5, 20.0))))
        reader = f"t{draw(st.integers(0, n_tasks - 1))}"
        dag.add_edge(f"d{index}", reader,
                     bytes_transferred=draw(st.integers(64, 1 << 20)))
    return dag


@given(random_apps(), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_random_apps_run_clean(dag, seed):
    """Any valid random app: places without oversubscription, completes,
    and returns every allocation."""
    dag.validate()
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1,
                                                         racks_per_pod=4)))
    result = runtime.run(dag, None, tenant=f"fuzz-{seed}")
    assert result.total_failures == 0
    datacenter = runtime.datacenter
    for device in datacenter.devices:
        assert device.used <= device.spec.capacity + 1e-9
    for pool in datacenter.pools:
        assert pool.total_used == pytest.approx(0.0)
    assert result.makespan_s >= 0
    assert result.total_cost >= 0
