"""Tests for multi-device split allocations ("arbitrary amounts", §1)."""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.bundle import REMOTE_SHARD_EFFICIENCY
from repro.core.runtime import UDCRuntime
from repro.core.scheduler import SchedulerError
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def gpu_app(name="big", work=400.0):
    app = AppBuilder(name)

    @app.task(name="train", work=work, devices={DeviceType.GPU})
    def train(ctx):
        return "trained"

    return app.build()


def run_with_gpus(amount, racks=4):
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1,
                                                         racks_per_pod=racks)))
    result = runtime.run(
        gpu_app(), {"train": {"resource": {"device": "gpu",
                                           "amount": amount}}},
    )
    return runtime, result


def test_request_beyond_one_device_splits():
    """A 20-GPU job splits across three 8-GPU boards."""
    runtime, result = run_with_gpus(20)
    train = result.objects["train"]
    gpu_allocs = [a for a in train.allocations
                  if a.device_type == DeviceType.GPU]
    assert len(gpu_allocs) == 3
    assert sum(a.amount for a in gpu_allocs) == 20
    devices = {a.device.device_id for a in gpu_allocs}
    assert len(devices) == 3
    assert result.outputs["train"] == "trained"
    events = result.telemetry.events_of("split-allocation")
    assert events and "3 devices" in events[0].detail


def test_split_pays_gang_efficiency_tax():
    """20 GPUs across 3 boards run slower than a hypothetical single
    20-GPU board, but still much faster than 8 GPUs on one board."""
    _rt20, result20 = run_with_gpus(20)
    _rt8, result8 = run_with_gpus(8)
    t20 = result20.objects["train"].record.compute_s
    t8 = result8.objects["train"].record.compute_s
    # Effective capacity: 8 + 0.9*12 = 18.8 vs 8 -> ~2.35x faster.
    assert t20 < t8
    effective = 8 + REMOTE_SHARD_EFFICIENCY * 12
    expected = t8 * 8 / effective
    assert t20 == pytest.approx(expected, rel=0.01)


def test_split_billed_in_full():
    """All shards are metered; the effective-capacity discount is a
    performance fact, not a billing one."""
    runtime, result = run_with_gpus(16)
    # 16 GPU-units for compute_s + overheads; 16 > 8's bill.
    _rt8, result8 = run_with_gpus(8)
    per_second_16 = result.total_cost / result.makespan_s
    per_second_8 = result8.total_cost / result8.makespan_s
    assert per_second_16 > per_second_8 * 1.8


def test_split_releases_all_shards():
    runtime, _result = run_with_gpus(20)
    assert runtime.datacenter.pool(DeviceType.GPU).total_used == 0.0
    assert not runtime._owner_of


def test_split_impossible_when_pool_exhausted():
    # 2 racks x 2 GPU devices x 8 = 32 total; ask for 40.
    with pytest.raises(SchedulerError):
        run_with_gpus(40, racks=2)


def test_split_rollback_leaves_pool_clean():
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1,
                                                         racks_per_pod=2)))
    pool = runtime.datacenter.pool(DeviceType.GPU)
    with pytest.raises(SchedulerError):
        runtime.run(gpu_app(), {"train": {"resource": {"device": "gpu",
                                                       "amount": 40}}})
    assert pool.total_used == 0.0


def test_shards_prefer_one_rack():
    runtime, result = run_with_gpus(20)
    gpu_allocs = [a for a in result.objects["train"].allocations
                  if a.device_type == DeviceType.GPU]
    racks = {(a.device.location.pod, a.device.location.rack)
             for a in gpu_allocs}
    # 2 GPU devices per rack -> 3 shards need 2 racks, not 3.
    assert len(racks) <= 2
