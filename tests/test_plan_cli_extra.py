"""Tests for the placement preview (plan) and the new CLI commands."""

import json

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.ir import compile_dag
from repro.cli import main
from repro.core.runtime import UDCRuntime
from repro.core.scheduler import SchedulerError
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def make_app():
    app = AppBuilder("planned")

    @app.task(name="prep", work=2.0)
    def prep(ctx):
        return None

    @app.task(name="infer", work=40.0,
              devices={DeviceType.CPU, DeviceType.GPU})
    def infer(ctx):
        return None

    store = app.data("out", size_gb=2)
    app.flows("prep", "infer", bytes_=1 << 20)
    app.writes("infer", store)
    return app.build()


def test_plan_reports_without_allocating():
    runtime = UDCRuntime(build_datacenter(SPEC))
    rows = runtime.plan(make_app(), {
        "infer": {"resource": {"device": "gpu", "amount": 2}},
        "out": {"resource": "ssd", "distributed": {"replication": 2}},
    })
    by_module = {row["module"]: row for row in rows}
    assert by_module["infer"]["device_type"] == "gpu"
    assert by_module["infer"]["amount"] == 2
    assert by_module["out"]["replicas"] == 2
    assert by_module["infer"]["hourly_cost"] > 0
    # Nothing left allocated.
    for pool in runtime.datacenter.pools:
        assert pool.total_used == 0.0


def test_plan_surfaces_infeasible_spec():
    runtime = UDCRuntime(build_datacenter(SPEC))
    with pytest.raises(SchedulerError, match="CPU-only"):
        runtime.plan(make_app(), {
            "infer": {"resource": {"device": "gpu"},
                      "execenv": {"env": "sgx-enclave"}},
        })
    # The failed plan also left nothing behind.
    for pool in runtime.datacenter.pools:
        assert pool.total_used == 0.0


def test_sgx_on_gpu_rejected_at_submission_too():
    runtime = UDCRuntime(build_datacenter(SPEC))
    with pytest.raises(SchedulerError, match="CPU-only"):
        runtime.run(make_app(), {
            "infer": {"resource": {"device": "gpu"},
                      "execenv": {"env": "sgx-enclave"}},
        })


def test_plan_then_run_agree():
    """The preview's placement choices match what a real run does."""
    definition = {"infer": {"resource": {"device": "gpu", "amount": 1}}}
    planner = UDCRuntime(build_datacenter(SPEC))
    planned = {row["module"]: row for row in planner.plan(make_app(),
                                                          definition)}
    executor = UDCRuntime(build_datacenter(SPEC))
    result = executor.run(make_app(), definition)
    assert result.row("infer").device == planned["infer"]["device_type"]
    assert result.row("infer").env == planned["infer"]["env"]


# ------------------------------------------------------------ CLI


@pytest.fixture()
def app_json(tmp_path):
    path = tmp_path / "app.json"
    path.write_text(json.dumps(compile_dag(make_app()).to_dict()))
    return str(path)


def test_cli_plan(app_json, tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(
        {"infer": {"resource": {"device": "gpu", "amount": 1}}}))
    assert main(["plan", app_json, "--spec", str(spec)]) == 0
    out = capsys.readouterr().out
    assert "total burn rate" in out
    assert "1 x gpu" in out


def test_cli_inspect(app_json, capsys):
    assert main(["inspect", app_json]) == 0
    out = capsys.readouterr().out
    assert "stage 0: prep" in out
    assert "stage 1: infer" in out
    assert "edge: prep -> infer" in out
