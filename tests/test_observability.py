"""Tests for the structured observability layer (PR 3).

Covers the span/metrics primitives (`repro.core.observability`), their
Telemetry integration (NULL_SPAN no-ops, lazy registry), the satellite
edge-case fixes that rode along (CostComparison zero baseline, warm-pool
prewarm during an outage, utilization epsilon clamp), the `udc trace` /
`udc metrics` CLI commands, and a golden end-to-end trace of the Figure-2
medical pipeline with one retried module (A4) and one hedged module (B2).
"""

import json
import math

import pytest

from repro.appmodel.ir import compile_dag
from repro.cli import main
from repro.core.observability import (
    NULL_SPAN,
    DEFAULT_BUCKETS,
    MetricsRegistry,
    WALL_CLOCK_METRICS,
)
from repro.core.runtime import UDCRuntime
from repro.core.telemetry import Telemetry
from repro.core.timeline import render_span_tree, span_gantt
from repro.distsem.resilience import CircuitBreakerRegistry
from repro.economics.cost import compare_costs
from repro.execenv.environments import EnvKind
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.simulator.rng import RngRegistry
from repro.workloads.medical import build_medical_app

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)

FIG2_INPUTS = {
    "A1": {"pixels": list(range(256)), "patient": "p-obs"},
    "A3": {"patient": "p-obs"},
    "B1": {"consented": True},
}


# ----------------------------------------------- satellite: cost zero baseline


def test_saving_fraction_zero_baseline_is_infinite_loss():
    # A free baseline vs. a paid alternative is an infinite loss, not the
    # silent "no saving" 0.0 this used to report.
    comparison = compare_costs("udc", 0.0, "iaas", 5.0)
    assert comparison.ratio == 0.0
    assert comparison.saving_fraction == float("-inf")
    assert comparison.as_dict()["saving"] == float("-inf")


def test_saving_fraction_two_zero_costs_is_a_wash():
    comparison = compare_costs("a", 0.0, "b", 0.0)
    assert comparison.ratio == 1.0
    assert comparison.saving_fraction == 0.0


def test_saving_fraction_normal_cases_unchanged():
    assert compare_costs("a", 10.0, "b", 5.0).saving_fraction == 0.5
    assert compare_costs("a", 5.0, "b", 10.0).saving_fraction == -1.0


# ------------------------------------------- satellite: prewarm during outage


def test_prewarm_is_deferred_during_outage():
    pool = WarmPool(target_depth=2)
    pool.exhaust()
    pool.prewarm(EnvKind.CONTAINER, False, count=3)

    # No shells land while the outage holds; the request is accounted.
    assert pool.depth(EnvKind.CONTAINER, False) == 0
    assert pool.stats.prewarms_deferred == 3
    assert pool.stats.prewarmed == 0

    # Misses during the outage are attributed to it.
    assert not pool.try_acquire(EnvKind.CONTAINER, False)
    assert pool.stats.misses == 1
    assert pool.stats.outage_misses == 1

    # After restore, the banked prewarms replay exactly once; a racing
    # refill sees the shelf already past target and must not add the
    # same shells a second time (the double-count bug).
    assert pool.restore() == 3
    assert pool.stats.prewarmed == 3
    assert pool.refill() == 0
    assert pool.depth(EnvKind.CONTAINER, False) == 3
    assert pool.try_acquire(EnvKind.CONTAINER, False)
    assert pool.stats.outage_misses == 1  # post-outage misses not attributed


def test_prewarm_normal_path_still_stocks():
    pool = WarmPool(target_depth=2)
    pool.prewarm(EnvKind.CONTAINER, False, count=2)
    assert pool.depth(EnvKind.CONTAINER, False) == 2
    assert pool.stats.prewarmed == 2
    assert pool.stats.prewarms_deferred == 0


def test_warm_pool_metrics_maintained_incrementally():
    pool = WarmPool(target_depth=1)
    telemetry = Telemetry()
    pool.telemetry = telemetry

    pool.prewarm(EnvKind.CONTAINER, False)
    assert telemetry.metrics.value("udc_warm_pool_prewarmed_total") == 1.0

    assert pool.try_acquire(EnvKind.CONTAINER, False)
    assert not pool.try_acquire(EnvKind.CONTAINER, False)
    assert telemetry.metrics.value("udc_warm_pool_hits_total") == 1.0
    assert telemetry.metrics.value("udc_warm_pool_misses_total") == 1.0
    assert telemetry.metrics.value("udc_warm_pool_hit_rate") == 0.5

    pool.exhaust()
    assert not pool.try_acquire(EnvKind.CONTAINER, False)
    assert telemetry.metrics.value("udc_warm_pool_outage_misses_total") == 1.0


# --------------------------------------------- satellite: sample epsilon clamp


def test_sample_clamps_float_noise_on_both_bounds():
    telemetry = Telemetry()
    telemetry.sample(0.0, "m", compute_utilization=-1e-12,
                     allocated_amount=1.0)
    telemetry.sample(1.0, "m", compute_utilization=1.0 + 1e-12,
                     allocated_amount=1.0)
    values = [s.compute_utilization for s in telemetry.samples_for("m")]
    assert values == [0.0, 1.0]


def test_sample_still_rejects_out_of_range_values():
    telemetry = Telemetry()
    with pytest.raises(ValueError):
        telemetry.sample(0.0, "m", compute_utilization=-0.01,
                         allocated_amount=1.0)
    with pytest.raises(ValueError):
        telemetry.sample(0.0, "m", compute_utilization=1.01,
                         allocated_amount=1.0)


# --------------------------------------------------------------- span basics


def test_span_tree_parent_child_and_indexes():
    telemetry = Telemetry()
    root = telemetry.span_start(0.0, "m", "task", "lifecycle", tenant="t")
    child = telemetry.span_start(0.5, "m", "attempt", "execute",
                                 parent=root, attempt=0)
    telemetry.span_end(child, 1.0)
    telemetry.span_end(root, 1.5)

    assert child.parent_id == root.span_id
    assert root.parent_id is None
    assert telemetry.root_spans() == [root]
    assert telemetry.span_children()[root.span_id] == [child]
    assert telemetry.spans_for("m") == [root, child]
    assert child.duration_s == 0.5
    assert root.status == "ok"

    payload = child.to_dict()
    assert payload["phase"] == "execute"
    assert payload["attrs"] == {"attempt": 0}
    json.dumps(payload)  # serializable


def test_span_end_tolerates_none_and_null_span():
    telemetry = Telemetry()
    telemetry.span_end(None, 1.0)          # nothing in flight
    telemetry.span_end(NULL_SPAN, 1.0)     # from a disabled period
    assert NULL_SPAN.end_s is None

    open_span = telemetry.span_start(0.0, "m", "task", "lifecycle")
    assert open_span.duration_s == 0.0     # open spans are zero-length
    telemetry.span_end(open_span, 2.0, status="error")
    assert open_span.status == "error"


def test_null_span_parent_is_treated_as_root():
    telemetry = Telemetry()
    span = telemetry.span_start(0.0, "m", "task", "lifecycle",
                                parent=NULL_SPAN)
    assert span.parent_id is None


def test_disabled_telemetry_spans_and_metrics_are_noops():
    telemetry = Telemetry(enabled=False)
    span = telemetry.span_start(0.0, "m", "task", "lifecycle")
    assert span is NULL_SPAN
    span.attrs.update(device="gpu-0")      # vanishes
    assert span.attrs == {}
    telemetry.span_end(span, 1.0)

    telemetry.inc("udc_retries_total")
    telemetry.observe("udc_task_wall_seconds", 1.0)
    telemetry.gauge_set("udc_breakers_open", 1.0)

    assert telemetry.spans == []
    # The registry is never even constructed on the disabled path.
    assert telemetry._metrics is None


# ------------------------------------------------------------ metrics registry


def test_registry_counters_gauges_and_labels():
    registry = MetricsRegistry()
    registry.counter("c", {"k": "a"}).inc()
    registry.counter("c", {"k": "a"}).inc(2.0)
    registry.counter("c", {"k": "b"}).inc()
    registry.gauge("g").set(0.25)

    assert registry.value("c", {"k": "a"}) == 3.0
    assert registry.value("c", {"k": "b"}) == 1.0
    assert registry.value("g") == 0.25
    assert registry.value("never-emitted") == 0.0

    with pytest.raises(ValueError):
        registry.gauge("c")                # kind is sticky per name
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1.0)    # counters only go up


def test_histogram_buckets_and_quantile():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for value in (0.0001, 0.3, 400.0):     # below, middle, above all buckets
        histogram.observe(value)

    assert histogram.count == 3
    assert histogram.sum == pytest.approx(400.3001)
    assert histogram.bucket_counts[0] == 1                 # <= 0.0005
    assert histogram.bucket_counts[-1] == 2                # <= 300.0
    assert histogram.quantile(0.5) == 0.5                  # upper bound
    assert histogram.quantile(1.0) == math.inf             # beyond buckets
    assert registry.histogram("h").buckets == tuple(sorted(DEFAULT_BUCKETS))

    with pytest.raises(ValueError):
        registry.value("h")                # histograms read via family
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_prometheus_rendering():
    registry = MetricsRegistry()
    registry.counter("udc_retries_total").inc()
    registry.counter("c", {"k": "a"}).inc(3.0)
    registry.histogram("h").observe(0.2)

    text = registry.render_prometheus()
    assert "# HELP udc_retries_total Task re-executions after failures." in text
    assert "# TYPE udc_retries_total counter" in text
    assert "udc_retries_total 1" in text
    assert 'c{k="a"} 3' in text
    assert 'h_bucket{le="0.5"} 1' in text
    assert 'h_bucket{le="+Inf"} 1' in text
    assert "h_sum 0.2" in text
    assert "h_count 1" in text


def test_to_dict_excludes_wall_clock_families_by_default():
    registry = MetricsRegistry()
    registry.counter("udc_retries_total").inc()
    for name in WALL_CLOCK_METRICS:
        registry.histogram(name).observe(0.001)

    snapshot = registry.to_dict()
    assert "udc_retries_total" in snapshot
    for name in WALL_CLOCK_METRICS:
        assert name not in snapshot

    full = registry.to_dict(include_wall_clock=True)
    for name in WALL_CLOCK_METRICS:
        assert name in full
    json.dumps(full)  # serializable either way


def test_breaker_trips_feed_the_registry():
    telemetry = Telemetry()
    breakers = CircuitBreakerRegistry(threshold=1, cooldown_s=100.0)
    breakers.telemetry = telemetry
    breakers.record_failure("gpu-0", 0.0)
    breakers.record_failure("gpu-1", 1.0)
    breakers.record_success("gpu-0", 2.0)   # success does not trip anything

    assert telemetry.metrics.value("udc_breaker_trips_total") == 2.0
    assert telemetry.metrics.value("udc_breakers_open") == 2.0


# --------------------------------------------- golden fig2 trace with faults


def run_fig2_with_faults():
    """The Figure-2 medical pipeline with one retried and one hedged module.

    A4's failure domain crashes at t=3.0 (mid-execution), exercising the
    recover + retry path; B2's device turns straggler at t=40.0 (after it
    has started), so its hedge policy launches a duplicate that wins.
    """
    dag, definition = build_medical_app()
    definition["A4"]["distributed"]["retry"] = {
        "max_attempts": 3, "base_backoff_s": 0.5, "jitter": 0.0,
    }
    definition["B2"]["distributed"]["hedge"] = 1.5
    runtime = UDCRuntime(
        build_datacenter(SPEC),
        warm_pool=WarmPool(enabled=True),
        prewarm=True,
        rng=RngRegistry(7),
    )
    runtime.injector.slow_at(40.0, "fd:B2", factor=10.0)
    submission = runtime.submit(
        dag, definition, tenant="hospital", inputs=FIG2_INPUTS,
        failure_plan=[(3.0, "fd:A4")],
    )
    runtime.drain()
    return runtime, submission.result


@pytest.fixture(scope="module")
def fig2_run():
    return run_fig2_with_faults()


def test_fig2_completes_with_retry_and_hedge(fig2_run):
    runtime, result = fig2_run
    assert set(result.outputs) == {"A1", "A2", "A3", "A4", "B1", "B2"}
    assert result.row("A4").retries == 1
    assert result.row("B2").hedges == 1
    assert result.row("B2").hedge_won


def test_fig2_golden_span_tree_retried_module(fig2_run):
    runtime, _result = fig2_run
    telemetry = runtime.telemetry
    children = telemetry.span_children()

    root = next(s for s in telemetry.spans_for("A4") if s.name == "task")
    assert root.phase == "lifecycle"
    assert root.status == "ok"
    assert root.attrs["tenant"] == "hospital"

    # Golden shape: first attempt interrupted by the injected crash, a
    # recover window, then a successful retry attempt.
    shape = [(s.name, s.phase, s.status) for s in children[root.span_id]]
    assert shape == [
        ("wait-deps", "schedule", "ok"),
        ("attempt", "execute", "interrupted"),
        ("recover", "recover", "ok"),
        ("attempt", "retry", "ok"),
    ]

    retry_attempt = children[root.span_id][-1]
    assert retry_attempt.attrs["attempt"] == 1
    retry_children = [(s.name, s.phase, s.status)
                      for s in children[retry_attempt.span_id]]
    assert retry_children == [
        ("env-acquire", "env-acquire", "ok"),
        ("transfer-in", "execute", "ok"),
        ("execute", "execute", "ok"),
        ("transfer-out", "execute", "ok"),
    ]

    # Every A4 span except the root hangs off the lifecycle tree.
    span_ids = {root.span_id}
    frontier = [root]
    while frontier:
        nxt = [c for s in frontier for c in children.get(s.span_id, ())]
        span_ids.update(s.span_id for s in nxt)
        frontier = nxt
    lifecycle_spans = [s for s in telemetry.spans_for("A4")
                       if s.span_id in span_ids]
    scheduler_spans = [s for s in telemetry.spans_for("A4")
                       if s.span_id not in span_ids]
    assert all(s.name in ("schedule", "allocate") for s in scheduler_spans)
    assert len(lifecycle_spans) + len(scheduler_spans) \
        == len(telemetry.spans_for("A4"))


def test_fig2_golden_span_tree_hedged_module(fig2_run):
    runtime, _result = fig2_run
    telemetry = runtime.telemetry
    children = telemetry.span_children()

    root = next(s for s in telemetry.spans_for("B2") if s.name == "task")
    assert root.status == "ok"
    kids = children[root.span_id]

    # The straggler primary is interrupted when the hedge wins.
    primary = next(s for s in kids if s.name == "attempt")
    assert primary.phase == "execute"
    assert primary.status == "interrupted"

    hedge = next(s for s in kids if s.name == "hedge")
    assert hedge.phase == "hedge"
    assert hedge.status == "ok"
    assert hedge.parent_id == root.span_id
    assert hedge.start_s > primary.start_s
    hedge_children = [(s.name, s.status) for s in children[hedge.span_id]]
    assert ("env-acquire", "ok") in hedge_children


def test_fig2_metrics_snapshot(fig2_run):
    runtime, result = fig2_run
    registry = runtime.metrics_snapshot()

    assert registry.value("udc_retries_total") == 1.0
    assert registry.value("udc_hedges_total") == 1.0
    assert registry.value("udc_hedge_wins_total") == 1.0
    assert registry.value("udc_hedge_losses_total") == 0.0
    assert registry.value("udc_deadline_misses_total") == 0.0
    # One failure interrupt: the injected A4 crash.
    assert registry.value("udc_failures_total") == 1.0
    assert registry.value("udc_placements_total", {"kind": "task"}) == 6.0
    assert registry.value("udc_placements_total", {"kind": "data"}) == 4.0
    assert registry.value("udc_warm_pool_hits_total") >= 1.0
    assert 0.0 < registry.value("udc_warm_pool_hit_rate") <= 1.0

    # One wall observation per finished task; env startups cover the six
    # primary attempts, the retry, and the hedge.
    wall = registry.histogram("udc_task_wall_seconds")
    assert wall.count == 6
    startups = registry.histogram("udc_env_startup_seconds")
    assert startups.count == 8

    # Per-device-type pool gauges are collected at snapshot time.
    assert registry.value("udc_pool_capacity_units",
                          {"device_type": "cpu"}) > 0.0

    # The snapshot rides the run report, minus wall-clock families.
    assert result.metrics is not None
    assert result.metrics["udc_retries_total"]["values"][0]["value"] == 1.0
    assert "udc_placement_latency_seconds" not in result.metrics
    assert result.to_json_dict()["metrics"] == result.metrics


def test_fig2_metric_counters_deterministic_across_runs():
    # Counters are exact and must match run to run.
    def counters(result):
        return {name: family["values"]
                for name, family in result.metrics.items()
                if family["type"] == "counter"}

    _, first = run_fig2_with_faults()
    _, second = run_fig2_with_faults()
    assert counters(first) == counters(second)


def test_fig2_report_identical_across_runs_despite_global_counters():
    # Regression for the cross-run histogram jitter once blamed on id
    # counters: store op ids and checkpoint ids are now per-instance, and
    # the remaining process-global counters (device, env, allocation,
    # unit ids) only name things — their values never feed modeled
    # payload sizes or placement order.  Inflate every one of them
    # between two identical runs and the full reports, histogram sums
    # included, must stay byte-for-byte equal.
    import itertools

    from repro.core import bundle as core_bundle
    from repro.execenv import environments as execenv_environments
    from repro.hardware import devices as hardware_devices
    from repro.hardware import pools as hardware_pools
    from repro.hardware import server as hardware_server

    _, first = run_fig2_with_faults()

    globals_to_inflate = [
        (hardware_devices, "_device_ids"),
        (hardware_server, "_server_ids"),
        (hardware_pools, "_alloc_ids"),
        (core_bundle, "_unit_ids"),
        (execenv_environments, "_env_ids"),
    ]
    originals = {}
    for mod, name in globals_to_inflate:
        originals[(mod, name)] = getattr(mod, name)
        # Jump far enough that every generated id string gets longer.
        setattr(mod, name, itertools.count(10_000_000))
    try:
        _, second = run_fig2_with_faults()
    finally:
        for (mod, name), counter in originals.items():
            setattr(mod, name, counter)

    assert json.dumps(first.to_json_dict(), sort_keys=True) \
        == json.dumps(second.to_json_dict(), sort_keys=True)


def test_fig2_span_tree_rendering(fig2_run):
    runtime, _result = fig2_run
    text = render_span_tree(runtime.telemetry)
    assert "A4:task/lifecycle" in text
    assert "A4:attempt/retry" in text
    assert "B2:hedge/hedge" in text
    assert "<interrupted>" in text

    filtered = render_span_tree(runtime.telemetry, module="B2")
    assert "B2:task/lifecycle" in filtered
    assert "A4:" not in filtered

    gantt = span_gantt(runtime.telemetry)
    assert "legend:" in gantt
    b2_row = next(line for line in gantt.splitlines()
                  if line.lstrip().startswith("B2 |"))
    assert "h" in b2_row  # the hedge window is visible


def test_render_span_tree_empty_telemetry():
    assert "no spans recorded" in render_span_tree(Telemetry())
    assert "no lifecycle spans" in span_gantt(Telemetry())


# ------------------------------------------------------ disabled-run guarantee


def test_disabled_telemetry_run_records_nothing():
    dag, definition = build_medical_app()
    runtime = UDCRuntime(
        build_datacenter(SPEC), telemetry=Telemetry(enabled=False),
    )
    result = runtime.run(dag, definition, tenant="hospital",
                         inputs=FIG2_INPUTS)
    assert set(result.outputs) == {"A1", "A2", "A3", "A4", "B1", "B2"}
    assert runtime.telemetry.spans == []
    assert runtime.telemetry._metrics is None  # registry never built
    assert result.metrics is None
    assert result.to_json_dict()["metrics"] is None


# ----------------------------------------------------------------- CLI surface


@pytest.fixture()
def medical_cli_files(tmp_path):
    dag, definition = build_medical_app()
    app_path = tmp_path / "medical.json"
    app_path.write_text(json.dumps(compile_dag(dag).to_dict()))
    spec_path = tmp_path / "medical_spec.json"
    spec_path.write_text(json.dumps(definition))
    return str(app_path), str(spec_path)


def test_cli_trace(medical_cli_files, capsys):
    app_path, spec_path = medical_cli_files
    assert main(["trace", app_path, "--spec", spec_path,
                 "--warm", "--gantt"]) == 0
    out = capsys.readouterr().out
    assert "task/lifecycle" in out
    assert "schedule/schedule" in out
    assert "env-acquire" in out
    assert "legend:" in out  # the --gantt section


def test_cli_trace_json(medical_cli_files, capsys):
    app_path, spec_path = medical_cli_files
    assert main(["trace", app_path, "--spec", spec_path, "--json"]) == 0
    spans = json.loads(capsys.readouterr().out)
    assert any(s["phase"] == "lifecycle" for s in spans)
    parent_ids = {s["span_id"] for s in spans}
    assert all(s["parent_id"] in parent_ids
               for s in spans if s["parent_id"] is not None)


def test_cli_metrics_prometheus(medical_cli_files, capsys):
    app_path, spec_path = medical_cli_files
    assert main(["metrics", app_path, "--spec", spec_path, "--warm"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE udc_placements_total counter" in out
    assert 'udc_placements_total{kind="task"} 6' in out
    assert "udc_task_wall_seconds_count 6" in out
    assert "# TYPE udc_pool_utilization gauge" in out


def test_cli_metrics_json_includes_wall_clock(medical_cli_files, capsys):
    app_path, spec_path = medical_cli_files
    assert main(["metrics", app_path, "--spec", spec_path,
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["udc_placements_total"]["type"] == "counter"
    # The CLI snapshot is for humans, so wall-clock families stay in.
    assert "udc_placement_latency_seconds" in payload
