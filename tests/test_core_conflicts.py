"""Tests for cross-module consistency-conflict detection (§3.4)."""

import pytest

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.core.conflicts import (
    ConflictError,
    ConflictPolicy,
    detect_conflicts,
    resolve_conflicts,
)
from repro.core.spec import parse_definition
from repro.distsem.consistency import ConsistencyLevel


def sharing_dag():
    """Two tasks sharing one data module — the paper's example."""
    dag = ModuleDAG(name="share")
    dag.add_module(TaskModule(name="T1"))
    dag.add_module(TaskModule(name="T2"))
    dag.add_module(DataModule(name="D"))
    dag.add_edge("D", "T1")
    dag.add_edge("D", "T2")
    return dag


def conflicting_definition():
    """T1 wants sequential, T2 wants release — the paper's exact case."""
    return parse_definition({
        "T1": {"distributed": {"data_consistency": {"D": "sequential"}}},
        "T2": {"distributed": {"data_consistency": {"D": "release"}}},
    })


def test_detects_paper_example():
    conflicts = detect_conflicts(sharing_dag(), conflicting_definition())
    assert len(conflicts) == 1
    conflict = conflicts[0]
    assert conflict.data_module == "D"
    declared = dict(conflict.declarations)
    assert declared["T1"] == ConsistencyLevel.SEQUENTIAL
    assert declared["T2"] == ConsistencyLevel.RELEASE
    assert conflict.strictest == ConsistencyLevel.SEQUENTIAL


def test_no_conflict_when_levels_agree():
    definition = parse_definition({
        "T1": {"distributed": {"data_consistency": {"D": "sequential"}}},
        "T2": {"distributed": {"data_consistency": {"D": "sequential"}}},
    })
    assert detect_conflicts(sharing_dag(), definition) == []


def test_no_conflict_with_single_declaration():
    definition = parse_definition({
        "T1": {"distributed": {"data_consistency": {"D": "release"}}},
    })
    assert detect_conflicts(sharing_dag(), definition) == []


def test_data_modules_own_declaration_participates():
    definition = parse_definition({
        "D": {"distributed": {"consistency": "eventual"}},
        "T1": {"distributed": {"data_consistency": {"D": "sequential"}}},
    })
    conflicts = detect_conflicts(sharing_dag(), definition)
    assert len(conflicts) == 1
    assert conflicts[0].strictest == ConsistencyLevel.SEQUENTIAL


def test_strictest_policy_rewrites_data_module():
    resolution = resolve_conflicts(
        sharing_dag(), conflicting_definition(), ConflictPolicy.STRICTEST
    )
    assert resolution.resolved_levels == {"D": ConsistencyLevel.SEQUENTIAL}
    rewritten = resolution.definition.bundle_for("D").distributed
    assert rewritten.consistency == ConsistencyLevel.SEQUENTIAL


def test_error_policy_raises_with_diagnostics():
    with pytest.raises(ConflictError) as excinfo:
        resolve_conflicts(
            sharing_dag(), conflicting_definition(), ConflictPolicy.ERROR
        )
    assert "D" in str(excinfo.value)
    assert excinfo.value.conflicts[0].data_module == "D"


def test_original_definition_not_mutated():
    definition = conflicting_definition()
    resolve_conflicts(sharing_dag(), definition, ConflictPolicy.STRICTEST)
    assert definition.bundle_for("D").distributed is None


def test_writer_side_declarations_also_checked():
    dag = ModuleDAG(name="w")
    dag.add_module(TaskModule(name="W"))
    dag.add_module(TaskModule(name="R"))
    dag.add_module(DataModule(name="D"))
    dag.add_edge("W", "D")   # writer
    dag.add_edge("D", "R")   # reader
    definition = parse_definition({
        "W": {"distributed": {"data_consistency": {"D": "eventual"}}},
        "R": {"distributed": {"data_consistency": {"D": "sequential"}}},
    })
    conflicts = detect_conflicts(dag, definition)
    assert len(conflicts) == 1


def test_multiple_data_modules_reported_independently():
    dag = sharing_dag()
    dag.add_module(DataModule(name="E"))
    dag.add_edge("E", "T1")
    dag.add_edge("E", "T2")
    definition = parse_definition({
        "T1": {"distributed": {"data_consistency": {
            "D": "sequential", "E": "eventual"}}},
        "T2": {"distributed": {"data_consistency": {
            "D": "release", "E": "release"}}},
    })
    conflicts = detect_conflicts(dag, definition)
    assert {c.data_module for c in conflicts} == {"D", "E"}
    resolution = resolve_conflicts(dag, definition)
    assert resolution.resolved_levels["E"] == ConsistencyLevel.RELEASE
