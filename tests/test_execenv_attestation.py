"""Tests for remote attestation and data protection."""

import dataclasses

import pytest

from repro.execenv.attestation import (
    ATTESTABLE_PROPERTIES,
    AttestationError,
    HardwareRootOfTrust,
    Measurement,
    Verifier,
)
from repro.execenv.protection import (
    IntegrityError,
    ProtectionPolicy,
    SecureChannel,
)
from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceType


def make_rot_and_device():
    device = Device(spec=DEFAULT_SPECS[DeviceType.CPU])
    rot = HardwareRootOfTrust()
    rot.provision(device)
    return rot, device


def make_measurement(**overrides):
    base = dict(
        env_kind="sgx-enclave", code_hash="abcd", tenant="hospital",
        single_tenant=True, device_model="xeon-blade-32c",
    )
    base.update(overrides)
    return Measurement(**base)


def test_quote_verifies_for_matching_expectation():
    rot, device = make_rot_and_device()
    quote = rot.quote(device, make_measurement(), b"nonce")
    verifier = Verifier(rot)
    verifier.trust_device(device)
    verifier.verify(
        quote,
        {"env_kind": "sgx-enclave", "single_tenant": "True"},
        b"nonce",
    )  # no exception


def test_mismatched_property_detected():
    rot, device = make_rot_and_device()
    quote = rot.quote(device, make_measurement(env_kind="container"))
    verifier = Verifier(rot)
    verifier.trust_device(device)
    with pytest.raises(AttestationError, match="measured env_kind"):
        verifier.verify(quote, {"env_kind": "sgx-enclave"})


def test_forged_signature_detected():
    rot, device = make_rot_and_device()
    quote = rot.quote(device, make_measurement())
    forged = dataclasses.replace(quote, signature=b"\x00" * 32)
    verifier = Verifier(rot)
    verifier.trust_device(device)
    with pytest.raises(AttestationError, match="signature"):
        verifier.verify(forged, {})


def test_swapped_measurement_invalidates_signature():
    """A provider cannot re-bind an honest quote to a different claim."""
    rot, device = make_rot_and_device()
    quote = rot.quote(device, make_measurement(env_kind="container"))
    relabeled = dataclasses.replace(
        quote, measurement=make_measurement(env_kind="sgx-enclave")
    )
    verifier = Verifier(rot)
    verifier.trust_device(device)
    with pytest.raises(AttestationError, match="signature"):
        verifier.verify(relabeled, {"env_kind": "sgx-enclave"})


def test_nonce_mismatch_detected():
    rot, device = make_rot_and_device()
    quote = rot.quote(device, make_measurement(), b"old")
    verifier = Verifier(rot)
    verifier.trust_device(device)
    with pytest.raises(AttestationError, match="nonce"):
        verifier.verify(quote, {}, b"new")


def test_untrusted_device_rejected():
    rot, device = make_rot_and_device()
    quote = rot.quote(device, make_measurement())
    verifier = Verifier(rot)  # never trusted the device
    with pytest.raises(AttestationError, match="untrusted"):
        verifier.verify(quote, {})


def test_unprovisioned_device_cannot_quote():
    device = Device(spec=DEFAULT_SPECS[DeviceType.CPU])
    rot = HardwareRootOfTrust()
    with pytest.raises(AttestationError, match="not provisioned"):
        rot.quote(device, make_measurement())


def test_resource_amount_not_attestable():
    """The paper's C13 limitation, enforced structurally."""
    rot, device = make_rot_and_device()
    quote = rot.quote(device, make_measurement())
    verifier = Verifier(rot)
    verifier.trust_device(device)
    with pytest.raises(AttestationError, match="not covered"):
        verifier.verify(quote, {"amount": "8"})
    assert "amount" not in ATTESTABLE_PROPERTIES
    assert "replication" not in ATTESTABLE_PROPERTIES
    assert "env_kind" in ATTESTABLE_PROPERTIES


def test_measurement_digest_order_sensitive():
    a = make_measurement(extra=(("k1", "v1"), ("k2", "v2")))
    b = make_measurement(extra=(("k2", "v2"), ("k1", "v1")))
    assert a.digest() != b.digest()


def test_distinct_devices_distinct_keys():
    rot = HardwareRootOfTrust()
    d1 = Device(spec=DEFAULT_SPECS[DeviceType.CPU])
    d2 = Device(spec=DEFAULT_SPECS[DeviceType.CPU])
    rot.provision(d1)
    rot.provision(d2)
    q1 = rot.quote(d1, make_measurement())
    q2 = rot.quote(d2, make_measurement())
    assert q1.signature != q2.signature


# ------------------------------------------------------------ protection


FULL = ProtectionPolicy(encrypt=True, integrity=True, replay_protect=True)


def test_roundtrip_full_protection():
    channel = SecureChannel(b"secret", FULL, "ch")
    blob = channel.protect(b"patient record")
    assert channel.unprotect(blob) == b"patient record"


def test_ciphertext_differs_from_plaintext():
    channel = SecureChannel(b"secret", FULL, "ch")
    blob = channel.protect(b"patient record")
    assert blob.body != b"patient record"
    assert blob.encrypted


def test_no_encrypt_leaves_plaintext():
    channel = SecureChannel(b"secret", ProtectionPolicy(integrity=True), "ch")
    blob = channel.protect(b"data")
    assert blob.body == b"data"
    assert blob.mac is not None


def test_bitflip_detected():
    channel = SecureChannel(b"secret", FULL, "ch")
    blob = channel.protect(b"data-to-tamper")
    tampered = dataclasses.replace(
        blob, body=bytes([blob.body[0] ^ 1]) + blob.body[1:]
    )
    with pytest.raises(IntegrityError, match="tampered"):
        channel.unprotect(tampered)


def test_replay_detected():
    sender = SecureChannel(b"secret", FULL, "ch")
    receiver = SecureChannel(b"secret", FULL, "ch")
    first = sender.protect(b"one")
    second = sender.protect(b"two")
    receiver.unprotect(first)
    receiver.unprotect(second)
    with pytest.raises(IntegrityError, match="replay"):
        receiver.unprotect(first)


def test_missing_mac_rejected():
    channel = SecureChannel(b"secret", ProtectionPolicy(integrity=True), "ch")
    blob = channel.protect(b"data")
    stripped = dataclasses.replace(blob, mac=None)
    with pytest.raises(IntegrityError, match="missing"):
        channel.unprotect(stripped)


def test_wrong_key_garbles_or_fails():
    sender = SecureChannel(b"secret-A", ProtectionPolicy(encrypt=True), "ch")
    receiver = SecureChannel(b"secret-B", ProtectionPolicy(encrypt=True), "ch")
    blob = sender.protect(b"confidential")
    assert receiver.unprotect(blob) != b"confidential"


def test_policy_cost_scales_with_size_and_flags():
    small = FULL.cpu_seconds(1_000)
    large = FULL.cpu_seconds(1_000_000)
    assert large > small
    assert ProtectionPolicy().cpu_seconds(1_000_000) == 0.0
    assert ProtectionPolicy(encrypt=True).cpu_seconds(10**6) < FULL.cpu_seconds(10**6)


def test_policy_strictest_is_union():
    merged = ProtectionPolicy(encrypt=True).strictest(
        ProtectionPolicy(integrity=True)
    )
    assert merged.encrypt and merged.integrity and not merged.replay_protect


def test_blob_size_includes_overheads():
    channel = SecureChannel(b"s", FULL, "ch")
    blob = channel.protect(b"x" * 100)
    assert blob.size_bytes == 100 + 32 + 8
