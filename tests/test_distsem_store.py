"""Tests for the replicated store and its consistency protocols."""

import pytest

from repro.distsem.consistency import ConsistencyLevel, OpPreference, strictest
from repro.distsem.network_order import SwitchSequencer
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import ReplicatedStore
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter


def make_store(consistency=ConsistencyLevel.SEQUENTIAL,
               preference=OpPreference.NONE, factor=3, racks=4,
               sequencer=False, media=DeviceType.SSD):
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=racks))
    placer = ReplicaPlacer(dc.pool(media))
    placement = placer.place(10, "t", ReplicationPolicy(factor=factor))
    seq = SwitchSequencer(dc.fabric, dc.switch_locations[0]) if sequencer else None
    store = ReplicatedStore(
        dc.sim, dc.fabric, "S", placement, consistency, preference, sequencer=seq
    )
    return dc, store


def run(dc, generator):
    process = dc.sim.process(generator)
    return dc.sim.run(until_event=process)


CLIENT = Location(0, 0, 99)


# ------------------------------------------------------------ consistency levels


def test_consistency_rank_and_strictest():
    assert strictest(ConsistencyLevel.RELEASE, ConsistencyLevel.SEQUENTIAL) \
        == ConsistencyLevel.SEQUENTIAL
    assert strictest(ConsistencyLevel.EVENTUAL, ConsistencyLevel.RELEASE) \
        == ConsistencyLevel.RELEASE
    assert ConsistencyLevel.SEQUENTIAL.at_least(ConsistencyLevel.EVENTUAL)


# ------------------------------------------------------------ replica placement


def test_placement_spreads_racks():
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
    placer = ReplicaPlacer(dc.pool(DeviceType.SSD))
    placement = placer.place(10, "t", ReplicationPolicy(factor=3))
    racks = {(l.pod, l.rack) for l in placement.locations}
    assert len(racks) == 3
    assert not placement.anti_affinity_degraded


def test_placement_degrades_when_racks_exhausted():
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2))
    placer = ReplicaPlacer(dc.pool(DeviceType.SSD))
    placement = placer.place(10, "t", ReplicationPolicy(factor=3))
    assert len(placement.allocations) == 3
    assert placement.anti_affinity_degraded


def test_placement_rolls_back_on_failure():
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=1))
    pool = dc.pool(DeviceType.SSD)
    placer = ReplicaPlacer(pool)
    from repro.hardware.pools import AllocationError

    with pytest.raises(AllocationError):
        placer.place(9000, "t", ReplicationPolicy(factor=2))  # 2nd won't fit
    assert pool.total_used == 0  # first replica rolled back


def test_replication_policy_validation_and_quorum():
    with pytest.raises(ValueError):
        ReplicationPolicy(factor=0)
    assert ReplicationPolicy(factor=3).write_quorum == 2
    assert ReplicationPolicy(factor=5).write_quorum == 3
    merged = ReplicationPolicy(2).strictest(ReplicationPolicy(3))
    assert merged.factor == 3


# ------------------------------------------------------------ sequential writes


def test_sequential_write_reaches_all_replicas():
    dc, store = make_store()
    run(dc, store.write(CLIENT, "k", b"v1", 1000))
    for replica in store.replicas:
        assert replica.data["k"][1] == b"v1"
        assert replica.applied_version["k"] == 1


def test_sequential_read_after_write_never_stale():
    dc, store = make_store()

    def scenario():
        yield dc.sim.process(store.write(CLIENT, "k", b"v1", 1000))
        yield dc.sim.process(store.write(CLIENT, "k", b"v2", 1000))
        value, stats = yield dc.sim.process(store.read(CLIENT, "k"))
        return value, stats

    value, stats = run(dc, scenario())
    assert value == b"v2"
    assert stats.staleness == 0


def test_sequential_write_latency_includes_backup_acks():
    dc1, store1 = make_store(factor=1)
    dc3, store3 = make_store(factor=3)
    s1 = run(dc1, store1.write(CLIENT, "k", b"v", 1000))
    s3 = run(dc3, store3.write(CLIENT, "k", b"v", 1000))
    assert s3.latency_s > s1.latency_s
    assert s3.messages > s1.messages


def test_sequenced_write_applies_in_order_on_all_replicas():
    dc, store = make_store(sequencer=True)

    def scenario():
        for index in range(5):
            yield dc.sim.process(
                store.write(CLIENT, "k", f"v{index}".encode(), 500)
            )

    run(dc, scenario())
    for replica in store.replicas:
        assert replica.data["k"][1] == b"v4"
        assert replica.next_sequence == 5
        assert not replica.reorder_buffer


def test_sequenced_write_has_no_replica_to_replica_traffic():
    dc, store = make_store(sequencer=True)
    stats = run(dc, store.write(CLIENT, "k", b"v", 1000))
    # 1 send per replica (via switch) + 1 reply per replica
    assert stats.messages == 2 * len(store.replicas)


# ------------------------------------------------------------ release consistency


def test_release_buffers_until_release():
    dc, store = make_store(consistency=ConsistencyLevel.RELEASE)
    run(dc, store.write(CLIENT, "k", b"v1", 1000))
    assert store.primary.data["k"][1] == b"v1"
    for backup in store.backups:
        assert "k" not in backup.data   # not yet propagated
    run(dc, store.release(CLIENT))
    for backup in store.backups:
        assert backup.data["k"][1] == b"v1"


def test_release_batches_multiple_writes():
    dc, store = make_store(consistency=ConsistencyLevel.RELEASE)

    def scenario():
        for index in range(4):
            yield dc.sim.process(store.write(CLIENT, f"k{index}", b"v", 500))
        stats = yield dc.sim.process(store.release(CLIENT))
        return stats

    stats = run(dc, scenario())
    # one batch message per backup, not one per write
    assert stats.messages == 2 * len(store.backups) + 1
    for backup in store.backups:
        assert len(backup.data) == 4


def test_release_read_on_backup_can_be_stale():
    dc, store = make_store(
        consistency=ConsistencyLevel.RELEASE, preference=OpPreference.READER
    )

    def scenario():
        yield dc.sim.process(store.write(CLIENT, "k", b"new", 1000))
        # Read from a backup's rack before release.
        backup_client = store.backups[0].location
        value, stats = yield dc.sim.process(store.read(backup_client, "k"))
        return value, stats

    value, stats = run(dc, scenario())
    assert value is None            # backup hasn't seen the write
    assert stats.staleness == 1


# ------------------------------------------------------------ eventual consistency


def test_eventual_write_acks_before_propagation():
    dc, store = make_store(consistency=ConsistencyLevel.EVENTUAL)
    stats = run(dc, store.write(CLIENT, "k", b"v", 1000))
    seq_dc, seq_store = make_store(consistency=ConsistencyLevel.SEQUENTIAL)
    seq_stats = run(seq_dc, seq_store.write(CLIENT, "k", b"v", 1000))
    assert stats.latency_s < seq_stats.latency_s


def test_eventual_converges_after_quiescence():
    dc, store = make_store(consistency=ConsistencyLevel.EVENTUAL)
    run(dc, store.write(CLIENT, "k", b"v", 1000))
    dc.sim.run()  # drain background anti-entropy
    for replica in store.replicas:
        assert replica.data["k"][1] == b"v"


# ------------------------------------------------------------ reader preference


def test_reader_preference_reads_nearest():
    dc, store = make_store(preference=OpPreference.READER)
    run(dc, store.write(CLIENT, "k", b"v", 1000))
    near_client = store.replicas[1].location
    value, stats = run(dc, store.read(near_client, "k"))
    assert stats.served_by == store.replicas[1].device.device_id


def test_default_sequential_reads_primary():
    dc, store = make_store()
    run(dc, store.write(CLIENT, "k", b"v", 1000))
    value, stats = run(dc, store.read(CLIENT, "k"))
    assert stats.served_by == store.primary.device.device_id


# ------------------------------------------------------------ failures & misc


def test_write_skips_failed_backup():
    dc, store = make_store()
    store.backups[0].device.failed = True
    stats = run(dc, store.write(CLIENT, "k", b"v", 1000))
    live_backups = [b for b in store.backups if not b.device.failed]
    assert all("k" in b.data for b in live_backups)


def test_read_fails_over_from_failed_primary():
    dc, store = make_store()
    run(dc, store.write(CLIENT, "k", b"v", 1000))
    store.primary.device.failed = True
    value, stats = run(dc, store.read(CLIENT, "k"))
    assert value == b"v"
    assert stats.served_by != store.primary.device.device_id


def test_all_replicas_failed_raises():
    dc, store = make_store(factor=1)
    store.primary.device.failed = True
    with pytest.raises(Exception, match="all replicas failed"):
        store.nearest_replica(CLIENT)


def test_bulk_read_and_write_account_stats():
    dc, store = make_store()

    def scenario():
        yield dc.sim.process(store.bulk_write(CLIENT, 1 << 20))
        stats = yield dc.sim.process(store.bulk_read(CLIENT, 1 << 20))
        return stats

    stats = run(dc, scenario())
    assert stats.op == "bulk-read"
    assert stats.bytes_moved > 1 << 20
    totals = store.totals()
    assert totals["writes"] == 1 and totals["reads"] == 0


def test_totals_aggregation():
    dc, store = make_store()

    def scenario():
        yield dc.sim.process(store.write(CLIENT, "a", b"1", 100))
        yield dc.sim.process(store.read(CLIENT, "a"))

    run(dc, scenario())
    totals = store.totals()
    assert totals["writes"] == 1
    assert totals["reads"] == 1
    assert totals["messages"] > 0
    assert totals["stale_reads"] == 0


def test_empty_placement_rejected():
    dc = build_datacenter()
    from repro.distsem.replication import PlacementResult

    with pytest.raises(ValueError):
        ReplicatedStore(dc.sim, dc.fabric, "S", PlacementResult(allocations=[]))


def test_media_time_slower_on_hdd_than_dram():
    _dc_a, dram_store = make_store(media=DeviceType.DRAM, factor=1, racks=2)
    _dc_b, hdd_store = make_store(media=DeviceType.HDD, factor=1, racks=2)
    size = 1 << 20
    assert dram_store.primary.media_time(size) < hdd_store.primary.media_time(size)
