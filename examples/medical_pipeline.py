#!/usr/bin/env python3
"""The paper's motivating example, end to end (Figure 2 + Table 1).

A hospital processes a CT scan through the full UDC pipeline:

1. the image lands in S3 (DRAM-backed, encrypted, 2 replicas);
2. A1 pre-processes and A2 runs CNN object detection (co-located,
   single-tenant GPU);
3. A3 retrieves the patient record from S1 (SSD, 3x sequential) and runs
   NLP; A4 fuses both inside a single-tenant SGX enclave with a hot
   standby (Rep 2x) and writes the diagnosis back to S1;
4. B1 anonymizes consenting patients' records into S4, and B2 (a
   third-party analytics container) computes over them.

The run report echoes Table 1, the fulfillment audit shows which promises
are hardware-attested, and the same workload is run again with a failure
injected into the NLP stage.

Run:  python examples/medical_pipeline.py
"""

from repro.core.runtime import UDCRuntime
from repro.core.verify import verify_run
from repro.execenv.attestation import Verifier
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.workloads.medical import build_medical_app

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)
SCAN = {"pixels": list(range(512)), "patient": "patient-1847"}
INPUTS = {"A1": SCAN, "A3": {"patient": "patient-1847"},
          "B1": {"consented": True}}


def main():
    dag, definition = build_medical_app(image_mb=8.0)

    # -- normal operation, with the provider's warm bundles enabled
    runtime = UDCRuntime(
        build_datacenter(SPEC),
        warm_pool=WarmPool(enabled=True), prewarm=True,
    )
    result = runtime.run(dag, definition, tenant="hospital", inputs=INPUTS)

    print("=" * 72)
    print("Figure 2 pipeline under the Table 1 definition")
    print("=" * 72)
    print(result.format_table())
    print(f"\nautomated diagnosis : {result.outputs['A4']['diagnosis']}")
    print(f"analytics cohort    : {result.outputs['B2']['cohort_size']}")
    print(f"warm-bundle hits    : {result.warm_hits} "
          f"(cold starts avoided by Principle 3 bundling)")

    # -- the user verifies fulfillment without trusting the provider (§4)
    report = verify_run(result.objects, result.records,
                        Verifier(runtime.root_of_trust))
    print("\nfulfillment audit:")
    for check in report.checks:
        marker = {"attested": "[HW-ATTESTED]", "trusted": "[trusted]",
                  "violated": "[VIOLATED!]"}[check.status]
        print(f"  {check.module:<4} {check.prop:<22} "
              f"promised={check.promised:<14} {marker}")
    assert report.ok

    # -- the same workload surviving a GPU-sled failure mid-run
    print("\n" + "=" * 72)
    print("Re-run with the NLP stage's hardware failing at t=50s")
    print("=" * 72)
    runtime2 = UDCRuntime(build_datacenter(SPEC))
    result2 = runtime2.run(
        dag, definition, tenant="hospital", inputs=INPUTS,
        failure_plan=[(50.0, "fd:A3")],
    )
    a3 = result2.objects["A3"].record
    print(f"A3 failures: {a3.failures}, migrations: {a3.migrations}, "
          f"resumed from {a3.recovered_from_progress:.0%} progress")
    print(f"diagnosis still produced: {result2.outputs['A4']['diagnosis']}")
    assert result2.outputs["A4"] is not None


if __name__ == "__main__":
    main()
