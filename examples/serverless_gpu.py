#!/usr/bin/env python3
"""The serverless-GPU gap (paper §1), measured three ways.

An event-triggered CNN inference service (sporadic Poisson arrivals) is
served by:

1. today's FaaS — CPU-only functions (no provider offers serverless GPUs);
2. today's workaround — an always-on p3.2xlarge GPU VM;
3. UDC — the same serverless model, but the function's resource aspect
   simply names a GPU.

Run:  python examples/serverless_gpu.py
"""

from repro.baselines.serverless import FaasPlatform, always_on_gpu_vm_cost
from repro.workloads.inference import poisson_inference_trace

HORIZON_HOURS = 8


def main():
    horizon_s = HORIZON_HOURS * 3600.0
    trace = poisson_inference_trace(
        rate_hz=0.02,          # ~one request a minute: event-triggered
        horizon_s=horizon_s,
        work=40.0,             # one CNN inference (~1 s on a V100)
        burstiness=0.1,
        seed=42,
    )
    print(f"trace: {len(trace)} inference requests over "
          f"{HORIZON_HOURS} hours "
          f"(mean gap {trace.mean_interarrival_s:.1f}s)\n")

    faas_cpu = FaasPlatform(gpu=False).run_trace(trace)
    udc_gpu = FaasPlatform(gpu=True).run_trace(trace)
    vm_cost = always_on_gpu_vm_cost(horizon_s)

    header = (f"{'platform':<28}{'mean lat':>10}{'p99 lat':>10}"
              f"{'cold':>7}{'cost':>10}")
    print(header)
    print("-" * len(header))
    for label, result in (("FaaS CPU-only (today)", faas_cpu),
                          ("UDC GPU serverless", udc_gpu)):
        print(f"{label:<28}{result.mean_latency_s:>9.2f}s"
              f"{result.percentile_latency_s(99):>9.2f}s"
              f"{result.cold_start_fraction:>7.0%}"
              f"{result.total_cost:>9.4f}$")
    print(f"{'always-on GPU VM (p3.2xl)':<28}{1.0:>9.2f}s{1.0:>9.2f}s"
          f"{'0%':>7}{vm_cost:>9.2f}$")

    speedup = faas_cpu.mean_latency_s / udc_gpu.mean_latency_s
    saving = 1 - udc_gpu.total_cost / vm_cost
    print(f"\nUDC GPU serverless: {speedup:.0f}x faster than CPU FaaS, "
          f"{saving:.0%} cheaper than the always-on VM.")
    assert speedup > 8 and saving > 0.8


if __name__ == "__main__":
    main()
