#!/usr/bin/env python3
"""User-defined security and distributed semantics for a data service.

A financial-records service (one of §1's niche-domain users) stores
account data with *user-chosen* guarantees and demonstrates, live:

* sequential-consistency reads are never stale while eventual reads can
  be (a measured staleness window);
* encryption + integrity + replay protection on data leaving the store —
  and an actual tamper/replay attack being caught;
* in-network (switch-sequencer) write ordering vs primary-backup latency.

Run:  python examples/secure_storage.py
"""

from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.network_order import OrderingScheme, SwitchSequencer, \
    run_ordered_writes
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import ReplicatedStore
from repro.execenv.protection import (
    IntegrityError,
    ProtectionPolicy,
    SecureChannel,
)
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter


def build_store(consistency, sequencer=False):
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
    placement = ReplicaPlacer(dc.pool(DeviceType.SSD)).place(
        50, "bank", ReplicationPolicy(factor=3))
    seq = SwitchSequencer(dc.fabric, dc.switch_locations[0]) \
        if sequencer else None
    store = ReplicatedStore(dc.sim, dc.fabric, "accounts", placement,
                            consistency, OpPreference.READER, sequencer=seq)
    return dc, store


def staleness_demo():
    print("-- consistency contracts, observed --")
    for level in (ConsistencyLevel.SEQUENTIAL, ConsistencyLevel.EVENTUAL,
                  ConsistencyLevel.RELEASE):
        dc, store = build_store(level)
        client = Location(0, 0, 9)
        far_client = store.backups[-1].location

        def scenario():
            yield dc.sim.process(
                store.write(client, "acct-1", b"balance=100", 512))
            yield dc.sim.process(
                store.write(client, "acct-1", b"balance=250", 512))
            value, stats = yield dc.sim.process(
                store.read(far_client, "acct-1"))
            return value, stats

        process = dc.sim.process(scenario())
        value, stats = dc.sim.run(until_event=process)
        print(f"  {level.value:<11} far read -> {value} "
              f"(staleness {stats.staleness} versions)")


def protection_demo():
    print("\n-- data-protection options (§3.3), attacked --")
    policy = ProtectionPolicy(encrypt=True, integrity=True,
                              replay_protect=True)
    sender = SecureChannel(b"bank-shared-key", policy, "tx")
    receiver = SecureChannel(b"bank-shared-key", policy, "tx")

    deposit = sender.protect(b"deposit:500")
    withdrawal = sender.protect(b"withdraw:500")
    print(f"  wire bytes are ciphertext: {deposit.body[:12].hex()}...")
    assert receiver.unprotect(deposit) == b"deposit:500"
    assert receiver.unprotect(withdrawal) == b"withdraw:500"

    # A network attacker replays the withdrawal.
    try:
        receiver.unprotect(withdrawal)
        raise AssertionError("replay went undetected!")
    except IntegrityError as error:
        print(f"  replay attack caught: {error}")

    # And tampers with a fresh message.
    import dataclasses
    fresh = sender.protect(b"deposit:1")
    forged = dataclasses.replace(
        fresh, body=fresh.body[:-1] + bytes([fresh.body[-1] ^ 0x80]))
    try:
        receiver.unprotect(forged)
        raise AssertionError("tampering went undetected!")
    except IntegrityError as error:
        print(f"  tampering caught:     {error}")


def ordering_demo():
    print("\n-- write-ordering mechanisms (§3.4) --")
    for scheme in OrderingScheme:
        result = run_ordered_writes(scheme, num_writes=200, num_replicas=3)
        print(f"  {scheme.value:<18} mean {result.mean_latency_s * 1e6:6.1f}us"
              f"  replica-coordination msgs/write: "
              f"{result.replica_to_replica_messages / 200:.0f}")


if __name__ == "__main__":
    staleness_demo()
    protection_demo()
    ordering_demo()
    print("\nsecure storage demo OK")
