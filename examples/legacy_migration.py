#!/usr/bin/env python3
"""Migrating a legacy monolith onto UDC (paper §4, "Supporting legacy
software").

A synthetic monolith — a weighted function-dependency graph with three
natural subsystems (ingest, scoring, reporting) — is cut into UDC modules
by the static partitioner, guided by one developer hint.  The resulting
segments become task modules, the dry-run profiler infers a resource
aspect for each, and the migrated application runs on UDC.

Run:  python examples/legacy_migration.py
"""

import networkx as nx

from repro import AppBuilder, DeviceType, UDCRuntime, build_datacenter
from repro.appmodel.legacy import partition_program, random_partition
from repro.appmodel.module import TaskModule
from repro.core.profiler import DryRunProfiler
from repro.hardware.topology import DatacenterSpec


def build_monolith() -> nx.Graph:
    """Call graph of the legacy app: dense inside subsystems, thin across."""
    graph = nx.Graph()
    subsystems = {
        "ingest": ["parse", "validate", "dedup", "normalize"],
        "scoring": ["featurize", "model", "rank", "calibrate"],
        "reporting": ["aggregate", "render", "export", "notify"],
    }
    for functions in subsystems.values():
        for i, u in enumerate(functions):
            for v in functions[i + 1:]:
                graph.add_edge(u, v, weight=8.0)
    graph.add_edge("normalize", "featurize", weight=1.0)   # thin seams
    graph.add_edge("calibrate", "aggregate", weight=1.0)
    return graph


def main():
    monolith = build_monolith()

    # The developer hints that model+featurize share hot state.
    hints = [{"model", "featurize"}]
    report = partition_program(monolith, 3, developer_hints=hints)
    baseline = random_partition(monolith, 3, seed=0)
    print("partitioning the monolith into 3 UDC modules:")
    for index, segment in enumerate(report.segments):
        print(f"  segment {index}: {sorted(segment)}")
    print(f"cross-segment dependency weight: "
          f"{report.cut_fraction:.1%} (random baseline: "
          f"{baseline.cut_fraction:.1%})")
    assert report.cut_fraction < baseline.cut_fraction

    # Each segment becomes a task module; the profiler sizes it (§3.2).
    profiler = DryRunProfiler()
    app = AppBuilder("migrated-monolith")
    definition = {}
    previous = None
    for index, segment in enumerate(report.segments):
        name = f"segment{index}"
        module = TaskModule(
            name=name,
            work=4.0 * len(segment),
            device_candidates=frozenset({DeviceType.CPU, DeviceType.GPU}),
            max_parallelism=2,
        )
        app.add_task(module)
        aspect = profiler.recommend(module, latency_target_s=30.0)
        definition[name] = {
            "resource": {"device": aspect.device.value,
                         "amount": aspect.amount},
        }
        print(f"  {name}: profiler recommends {aspect.amount:g} x "
              f"{aspect.device.value}")
        if previous:
            app.flows(previous, name, bytes_=1 << 20)
        previous = name

    result = UDCRuntime(
        build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
    ).run(app.build(), definition, tenant="migrator")
    print(f"\nmigrated app ran in {result.makespan_s:.2f}s for "
          f"${result.total_cost:.6f}")
    assert result.total_failures == 0
    print("legacy migration OK")


if __name__ == "__main__":
    main()
