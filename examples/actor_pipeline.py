#!/usr/bin/env python3
"""The actor programming model (paper §3.1) with journaled recovery.

§3.1 proposes the Actor framework as a natural fit for UDC modules:
actors communicate only by messages (efficient on disaggregated hardware)
and *"messages could be reliably recorded for faster recovery"*.

This example builds a fraud-screening pipeline of three actors placed on
different racks — ingest → score → ledger — streams transactions through
it, then kills the stateful ledger actor and rebuilds its state purely
from the message journal.

Run:  python examples/actor_pipeline.py
"""

from repro.appmodel.actor import ActorSystem
from repro.hardware.fabric import Fabric, Location
from repro.simulator import Simulator


def make_behaviors(system):
    def ingest(actor, message):
        """Validate and forward each raw transaction."""
        txn = dict(message)
        txn["validated"] = txn.get("amount", 0) >= 0
        actor.tell(system.actor("score").ref, txn)

    def score(actor, message):
        """Heuristic fraud scoring; timed work on the simulator clock."""

        def job():
            yield system.sim.timeout(0.002)  # model inference time
            risky = message["amount"] > 900 or not message["validated"]
            actor.tell(
                system.actor("ledger").ref,
                {**message, "flagged": risky},
            )

        return job()

    def ledger(actor, message):
        """Stateful aggregation: totals and flags per account."""
        state = actor.state.setdefault(
            "accounts", {}
        ).setdefault(message["account"], {"total": 0, "flags": 0})
        state["total"] += message["amount"]
        if message["flagged"]:
            state["flags"] += 1

    return ingest, score, ledger


def main():
    sim = Simulator()
    fabric = Fabric(sim)
    system = ActorSystem(sim, fabric=fabric)
    ingest, score, ledger = make_behaviors(system)

    # Each actor is a module that could live on its own resource unit:
    # place them on three different racks.
    ingest_ref = system.spawn("ingest", ingest, location=Location(0, 0, 1))
    system.spawn("score", score, location=Location(0, 1, 1))
    system.spawn("ledger", ledger, location=Location(0, 2, 1))

    transactions = [
        {"account": "acct-1", "amount": 120},
        {"account": "acct-2", "amount": 950},
        {"account": "acct-1", "amount": 40},
        {"account": "acct-3", "amount": -5},
        {"account": "acct-2", "amount": 20},
    ]
    for txn in transactions:
        ingest_ref.tell(txn)
    sim.run()

    books = system.actor("ledger").state["accounts"]
    print("ledger after the stream:")
    for account, state in sorted(books.items()):
        print(f"  {account}: total={state['total']}, flags={state['flags']}")
    assert books["acct-2"]["flags"] == 1      # the 950 transaction
    assert books["acct-3"]["flags"] == 1      # the negative one

    # -- the ledger actor dies; rebuild it from the journal (§3.1)
    print(f"\njournal holds {len(system.journal)} messages; "
          f"killing 'ledger' and replaying its "
          f"{len(system.replay_for('ledger'))} inbound messages...")
    system.respawn_from_journal("ledger", ledger,
                                location=Location(0, 3, 1))
    sim.run()
    recovered = system.actor("ledger").state["accounts"]
    assert recovered == books
    print("recovered ledger identical to pre-failure state")

    # New traffic lands on the recovered actor seamlessly.
    ingest_ref.tell({"account": "acct-1", "amount": 10})
    sim.run()
    assert system.actor("ledger").state["accounts"]["acct-1"]["total"] == 170
    print("post-recovery traffic applied: acct-1 total = 170")
    print("\nactor pipeline OK")


if __name__ == "__main__":
    main()
