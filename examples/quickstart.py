#!/usr/bin/env python3
"""Quickstart: define your own cloud in ~40 lines.

A two-stage image pipeline where the *user* — not the provider — decides:

* resources: the resize stage gets half a CPU core; inference names a GPU;
* execution environment: inference runs single-tenant (side-channel safe);
* distributed semantics: the result store keeps 2 replicas, sequentially
  consistent.

Run:  python examples/quickstart.py
"""

from repro import AppBuilder, DeviceType, UDCRuntime, build_datacenter
from repro.hardware.topology import DatacenterSpec

# ---------------------------------------------------------------- develop
# The development team writes ordinary functions and declares the module
# DAG (paper §3.1).  Each function receives a dict of its inputs.

app = AppBuilder("quickstart")


@app.task(work=0.5, devices={DeviceType.CPU})
def resize(ctx):
    image = ctx["input"]
    return image[::2]  # toy downsample


@app.task(work=40.0, devices={DeviceType.GPU})
def infer(ctx):
    image = ctx["resize"]
    return {"label": "cat" if sum(image) % 2 else "dog",
            "pixels": len(image)}


results = app.data("results", size_gb=1.0)
app.flows(resize, infer, bytes_=1 << 20)
app.writes(infer, results, bytes_per_run=4 << 10)

# ---------------------------------------------------------------- define
# The IT team declares *what* each module needs; the provider owns *how*
# (paper §3, Design Principles 1-2).  Any aspect may be omitted.

definition = {
    "resize": {"resource": {"device": "cpu", "amount": 0.5}},
    "infer": {
        "resource": {"device": "gpu", "amount": 1},
        "execenv": {"isolation": "strong", "single_tenant": True},
    },
    "results": {
        "distributed": {"replication": 2, "consistency": "sequential"},
    },
}

# ---------------------------------------------------------------- run
datacenter = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
runtime = UDCRuntime(datacenter)
result = runtime.run(
    app.build(), definition, tenant="quickstart",
    inputs={"resize": list(range(100))},
)

print(result.format_table())
print(f"\ninference result: {result.outputs['infer']}")
print(f"pay-per-use cost of this run: ${result.total_cost:.6f}")

assert result.outputs["infer"]["pixels"] == 50
assert result.row("infer").device == "gpu"
assert result.row("results").replication == 2
print("\nquickstart OK")
