#!/usr/bin/env python3
"""An event-driven service on UDC: standing state, per-event tasks,
warm bundles, and overload handling.

A license-plate-recognition service for a parking operator:

1. the operator deploys its standing state once — a replicated,
   sequentially-consistent ledger of entries/exits (persistent
   submission);
2. every camera trigger spawns a per-event recognition instance attached
   to that ledger, drawn from warm bundled resource units;
3. a burst beyond datacenter capacity queues at admission and drains in
   FIFO order instead of failing;
4. at closing time the operator decommissions the service and gets the
   final storage bill.

Run:  python examples/event_service.py
"""

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

SPEC = DatacenterSpec(
    pods=1, racks_per_pod=3,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 1,
                      DeviceType.DRAM: 1, DeviceType.SSD: 2},
)


def ledger_app():
    app = AppBuilder("plate-ledger")
    app.data("ledger", size_gb=10)
    return app.build()


LEDGER_SPEC = {"ledger": {"resource": "ssd",
                          "execenv": {"protection": ["integrity"]},
                          "distributed": {"replication": 2,
                                          "consistency": "sequential"}}}


def recognition_app(tag):
    app = AppBuilder(f"recognize-{tag}")

    @app.task(name="ocr", work=320.0, devices={DeviceType.GPU})
    def ocr(ctx):
        event = ctx["input"]
        return {"plate": f"PLATE-{event['camera']}-{event['seq']}",
                "camera": event["camera"]}

    ledger = app.data("ledger", size_gb=10)
    app.writes("ocr", ledger, bytes_per_run=4 << 10)
    return app.build()


RECOGNITION_SPEC = {
    # Each recognition takes a full 8-GPU board (batch OCR across lanes),
    # so the 3-board datacenter runs three events at a time.
    "ocr": {"resource": {"device": "gpu", "amount": 8}},
    "ledger": LEDGER_SPEC["ledger"],
}


def main():
    runtime = UDCRuntime(
        build_datacenter(SPEC),
        warm_pool=WarmPool(enabled=True, target_depth=6),
        prewarm=True,
    )

    # 1. Deploy standing state (persistent across drains).
    deployment = runtime.submit(ledger_app(), LEDGER_SPEC,
                                tenant="parking-co", persistent=True)
    runtime.drain()
    print("ledger deployed:",
          [a.device.device_id
           for a in deployment.objects["ledger"].allocations])

    # 2. A burst of 8 camera events against 3 GPUs of capacity:
    #    arrivals beyond capacity queue at admission (FIFO).
    submissions = []
    for seq in range(8):
        submissions.append(runtime.submit(
            recognition_app(str(seq)), RECOGNITION_SPEC,
            tenant="parking-co",
            inputs={"ocr": {"camera": f"cam{seq % 3}", "seq": seq}},
            attach_stores=deployment.stores,
            queue_if_full=True,
        ))
        runtime.warm_pool.refill()
    queued = sum(1 for s in submissions if s.status == "queued")
    print(f"burst of {len(submissions)} events: "
          f"{len(submissions) - queued} admitted, {queued} queued")
    assert queued > 0, "expected the burst to exceed capacity"

    results = runtime.drain()
    print("\nper-event outcomes:")
    for submission, result in zip(submissions, results):
        print(f"  {result.outputs['ocr']['plate']:<16} "
              f"waited {submission.queue_wait_s:5.2f}s, "
              f"ran {result.makespan_s:5.2f}s, "
              f"cost ${result.total_cost:.6f}")
    assert all(s.status == "done" for s in submissions)

    # 3. The ledger accumulated every event's write.
    store = deployment.stores["ledger"]
    writes = [op for op in store.op_log if op.op == "write"]
    print(f"\nledger writes recorded: {len(writes)} "
          f"(replicated {len(store.replicas)}x, sequential)")
    assert len(writes) == 8

    # 4. Closing time.
    storage_bill = runtime.decommission(deployment)
    print(f"service decommissioned; standing-storage bill "
          f"${storage_bill:.6f}")
    print("\nevent service OK")


if __name__ == "__main__":
    main()
