"""Legacy IoT sensor-rollup script — synthetic corpus app #1.

Exercises the analyzer's *helper inlining* (``clean`` calls the private
``_dedupe``, which folds into ``clean``'s module) and the cutter's
*parallel-loss* penalty: ``aggregate`` and ``check_alerts`` both consume
``clean``'s output, so merging either into the pipeline head would
serialize two independent branches — the cutter keeps them apart even
though merging would internalize traffic.
"""

readings = []
calibration: "udc: size_gb=4 record_bytes=1mb" = {}


def ingest(batch):
    """Pull one batch off the wire and stamp it.

    udc: output_bytes=2mb
    """
    rows = []
    for item in batch:
        rows.append({"sensor": item.get("sensor", "s-0"),
                     "value": item.get("value", 0.0)})
    return rows


def _dedupe(items):
    """Drop duplicate sensor readings (helper: inlined into clean)."""
    seen = {}
    for row in items:
        seen[row["sensor"]] = row
    return [seen[key] for key in sorted(seen)]


def clean(raw):
    """Deduplicate and clamp the raw batch.

    udc: output_bytes=1mb
    """
    rows = _dedupe(raw)
    for row in rows:
        row["value"] = max(-1e6, min(1e6, row["value"]))
    return rows


def aggregate(cleaned):
    """Roll the cleaned batch into the readings store.

    udc: work=6 write=readings:4mb
    """
    total = 0.0
    for row in cleaned:
        total += row["value"]
    readings.append({"count": len(cleaned), "sum": total})
    return {"count": len(cleaned), "sum": total}


def check_alerts(cleaned):
    """Compare each reading against its calibration envelope.

    udc: work=5 read=calibration:1mb
    """
    alerts = []
    for row in cleaned:
        limit = calibration.get(row["sensor"], 1e5)
        if abs(row["value"]) > limit:
            alerts.append(row["sensor"])
    return {"alerts": alerts}


def run_rollup(batch):
    raw = ingest(batch)
    cleaned = clean(raw)
    aggregate(cleaned)
    alerts = check_alerts(cleaned)
    return alerts


if __name__ == "__main__":
    print(run_rollup([{"sensor": "s-1", "value": 3.5},
                      {"sensor": "s-2", "value": 7.25}]))
