"""Legacy churn-report batch job — synthetic corpus app #2.

Exercises the *taint* layer: ``customers`` is PHI, ``summaries`` is an
unlabeled (public) store that the pipeline writes anonymized data into —
the analyzer *raises* its label to ``anonymized`` rather than emitting a
definition the infoflow pass would reject (UDC041).  The sanitizer
(``scrub``) is the only declassification point, and the cutter's label
purity rule pins the module boundary exactly there: everything upstream
of ``scrub`` shares the phi in-label and may merge; ``publish`` (in-label
anonymized) never joins them.
"""

import hashlib

customers: "udc: sensitivity=phi size_gb=8 record_bytes=32kb" = {}
summaries = []


def load_profiles(segment):
    """Pull the segment's customer profiles.

    udc: work=3 read=customers:16mb output_bytes=16mb
    """
    rows = []
    for name in sorted(customers):
        profile = customers[name]
        if profile.get("segment") == segment:
            rows.append({"name": name, "tenure": profile.get("tenure", 0)})
    return rows or [{"name": "c-0", "tenure": 12}]


def score_churn(profiles):
    """Score churn risk per profile (a toy logistic stand-in).

    udc: work=12 devices=cpu,gpu output_bytes=256kb
    """
    scored = []
    for row in profiles:
        risk = 1.0 / (1.0 + row["tenure"])
        scored.append({"name": row["name"], "risk": round(risk, 4)})
    return scored


def scrub(scored):
    """Strip identity before anything leaves the PHI boundary.

    udc: work=2 output_bytes=128kb sanitizer
    """
    out = []
    for row in scored:
        out.append({"id": hashlib.sha256(row["name"].encode()).hexdigest()[:8],
                    "risk": row["risk"]})
    return out


def publish(clean_rows):
    """Append the anonymized report to the summaries store.

    udc: work=1 write=summaries:128kb
    """
    summaries.append(clean_rows)
    return {"published": len(clean_rows)}


def build_report(segment):
    profiles = load_profiles(segment)
    scored = score_churn(profiles)
    clean_rows = scrub(scored)
    receipt = publish(clean_rows)
    return receipt


if __name__ == "__main__":
    print(build_report("smb"))
