"""The paper's Figure-2 medical pipeline as one legacy, un-modularized file.

This is what a hospital's existing codebase looks like *before* UDC: a
single Python script with global mutable state for the stores and plain
functions for the pipeline stages.  No ModuleDAG, no aspects — the only
UDC-facing artifacts are the ``udc:`` directive hints (the paper's §4
"hints on where application semantics transition") carried in docstrings
and store annotations.

``udc modularize examples/legacy/fig2_monolith.py`` compiles this file
into a module DAG + definition equivalent to the hand-cut
:mod:`repro.workloads.medical` app: same works, same device candidates,
same byte flows, same sensitivity labels.  The benchmark
(``benchmarks/bench_modularize.py``) scores the auto-cut against that
hand-cut reference.
"""

import hashlib

# -- standing data (Figure 2's S1-S4) ------------------------------------

patient_records: "udc: sensitivity=phi size_gb=50 record_bytes=64kb" = {}
consent_forms: "udc: sensitivity=phi size_gb=2 record_bytes=4kb" = {}
image_buffer: "udc: sensitivity=phi size_gb=1 record_bytes=8mb hot" = {}
research_db: "udc: sensitivity=anonymized size_gb=20 record_bytes=64kb" = []


# -- diagnosis path (A1-A4) ----------------------------------------------

def preprocess(image):
    """Resize + greyscale the incoming medical image (Figure 2's A1).

    udc: work=0.5 devices=cpu,gpu output_bytes=4mb state_bytes=2mb
    udc: max_parallelism=2 read=image_buffer:8mb
    """
    raw = image or image_buffer.get("latest") \
        or {"pixels": list(range(64)), "patient": "p-0"}
    return {"pixels": raw["pixels"][::2], "patient": raw["patient"]}


def detect_objects(prepared):
    """CNN object detection over the preprocessed image (A2).

    udc: work=40 devices=gpu output_bytes=64kb state_bytes=32mb
    """
    digest = hashlib.sha256(
        bytes(p % 256 for p in prepared["pixels"])).hexdigest()
    findings = ["nodule" if int(digest[0], 16) % 2 else "clear",
                f"confidence-0.{int(digest[1:3], 16) % 90 + 10}"]
    return {"patient": prepared["patient"], "objects": findings}


def retrieve_history(patient):
    """Record retrieval + NLP summarization over the records store (A3).

    udc: work=30 devices=gpu output_bytes=64kb state_bytes=24mb
    udc: read=patient_records:4mb
    """
    prior = patient_records.get(patient, [])
    digest = hashlib.sha256(patient.encode()).hexdigest()[:6]
    return {"patient": patient,
            "history_summary": f"record({patient}): prior={digest}",
            "prior_count": len(prior)}


def diagnose(detection, history):
    """Fuse detection + history into the automated diagnosis (A4);
    the result is appended to the patient's record.

    udc: work=2 devices=cpu output_bytes=16kb state_bytes=1mb
    udc: max_parallelism=2 write=patient_records:64kb
    """
    verdict = {
        "patient": detection["patient"],
        "diagnosis": f"{detection['objects'][0]} given "
                     f"{history['history_summary']}",
    }
    patient_records.setdefault(detection["patient"], []).append(verdict)
    return verdict


# -- analytics path (B1-B2) ----------------------------------------------

def anonymize_consented(consented):
    """Consent-filter and anonymize records for research (B1) — the one
    legal declassification point from the PHI stores to the research set.

    udc: work=4 devices=cpu output_bytes=128mb state_bytes=4mb sanitizer
    udc: read=consent_forms:1mb read=patient_records:64mb
    udc: write=research_db:128mb
    """
    if not consented:
        return {"records": []}
    released = []
    for patient in sorted(patient_records):
        if not consent_forms.get(patient, True):
            continue
        released.append({
            "id": hashlib.sha256(patient.encode()).hexdigest()[:8],
            "payload": "anonymized",
        })
    if not released:
        released.append({"id": hashlib.sha256(b"p-0").hexdigest()[:8],
                         "payload": "anonymized"})
    research_db.extend(released)
    return {"records": released}


def cohort_analytics():
    """Third-party analytics over the anonymized research set (B2).

    udc: work=20 devices=cpu,gpu output_bytes=1mb state_bytes=8mb
    udc: read=research_db:128mb
    """
    return {"cohort_size": len(research_db)}


# -- orchestration --------------------------------------------------------

def run_pipeline(image, patient, consented):
    """One submission: diagnose a patient, then refresh the research set."""
    prepared = preprocess(image)
    detection = detect_objects(prepared)
    history = retrieve_history(patient)
    verdict = diagnose(detection, history)
    anonymize_consented(consented)
    stats = cohort_analytics()
    return {"verdict": verdict, "stats": stats}


if __name__ == "__main__":
    out = run_pipeline({"pixels": list(range(256)), "patient": "p-000"},
                       "p-000", True)
    print(out)
