"""Legacy log-triage script — synthetic corpus app #3.

Deliberately *directive-free* except the data flow itself: every hint
channel stays at its default (work derived from loop nesting, cpu-only
devices, public labels, 1 KB flows).  The whole pipeline is public,
serial, and cpu-compatible, so the cutter collapses it into a single
task module — the degenerate-but-correct cut.
"""

events = []


def parse_logs(blob):
    parsed = []
    for line in blob.splitlines():
        if ":" in line:
            level, _, message = line.partition(":")
            parsed.append({"level": level.strip().lower(),
                           "message": message.strip()})
    return parsed


def count_errors(parsed):
    tally = {}
    for row in parsed:
        tally[row["level"]] = tally.get(row["level"], 0) + 1
    events.append(tally)
    return tally


def triage(blob):
    parsed = parse_logs(blob)
    tally = count_errors(parsed)
    return tally


if __name__ == "__main__":
    print(triage("error: disk full\ninfo: retrying\nerror: disk full"))
