"""E2 — C6: disaggregation improves utilization ~2x (LegoOS, cited in §4).

The same skewed two-population mix (CPU-heavy vs memory-heavy jobs) is
hosted two ways:

* **servers** — FFD bin packing onto fixed 32-core/128-GB boxes; whichever
  dimension fills first strands the other;
* **pools** — exact allocation from separate CPU and DRAM pools; the
  provider provisions whole devices but demand packs them exactly.

Reported per skew point: mean utilization of demanded dimensions, and the
disaggregation gain.  Expected shape: gain near 1x for balanced mixes,
rising toward ~2x as the mix skews (the paper's 2x).
"""

import math

import pytest

from repro.hardware.server import ServerCluster, ServerSpec
from repro.workloads.generators import skewed_demands

from _util import print_table

SERVER = ServerSpec(cpus=32, mem_gb=128, name="std")
CPU_DEVICE = 32.0      # cores per CPU sled
DRAM_DEVICE = 512.0    # GB per DRAM sled


def pooled_utilization(demands):
    """Utilization when cpu/mem come from separate device pools: demand
    packs exactly; only the last partially-filled device strands."""
    cpu = sum(d.cpus for d in demands)
    mem = sum(d.mem_gb for d in demands)
    cpu_prov = math.ceil(cpu / CPU_DEVICE) * CPU_DEVICE
    mem_prov = math.ceil(mem / DRAM_DEVICE) * DRAM_DEVICE
    utils = []
    if cpu > 0:
        utils.append(cpu / cpu_prov)
    if mem > 0:
        utils.append(mem / mem_prov)
    return sum(utils) / len(utils)


def server_utilization(demands):
    cluster = ServerCluster(SERVER)
    placement = cluster.pack(list(demands))
    assert not placement.unplaced
    return cluster.demanded_utilization()


def sweep(n_jobs=400, seed=2):
    rows = []
    for skew in (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
        demands = skewed_demands(n_jobs, cpu_heavy_fraction=skew,
                                 seed=seed).demands
        servers = server_utilization(demands)
        pools = pooled_utilization(demands)
        rows.append((skew, servers, pools, pools / servers))
    return rows


def test_e2_disaggregation(benchmark):
    rows = benchmark(sweep)
    print_table(
        "E2 — utilization: monolithic servers vs disaggregated pools",
        ["cpu-heavy fraction", "server util", "pool util", "gain (x)"],
        rows,
    )
    gains = {skew: gain for skew, _s, _p, gain in rows}

    # Shapes: pools always at least as good everywhere; the worst
    # server-shape mismatch (a pure memory-heavy population) strands the
    # most and reaches the paper's ~2x.
    assert all(gain >= 1.1 for gain in gains.values())
    peak = max(gains.values())
    assert peak >= 1.9, f"peak disaggregation gain {peak:.2f} < 1.9"
    assert sum(gains.values()) / len(gains) >= 1.4
    # A balanced mix packs servers complementarily, so the gain bottoms
    # out mid-skew — disaggregation's win is largest exactly when the
    # workload population does NOT happen to match the server shape.
    mid_band = min(gains[0.5], gains[0.7])
    assert min(gains.values()) == mid_band
    assert mid_band < gains[0.0] and mid_band < gains[1.0]
    for _skew, _server, pool, _gain in rows:
        assert pool > 0.85  # pools pack nearly exactly
