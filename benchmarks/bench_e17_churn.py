"""E17 — the control plane under sustained multi-tenant churn.

A "day in the life" of a UDC provider: mixed-archetype tenant applications
(web, batch, secure, GPU inference) arrive as a Poisson stream and are
placed at arrival time against whatever capacity is free.

Expected shape: every arrival completes (no stranded tenants), per-tenant
bills match the archetype's resource footprint, time-weighted pool
utilization is healthy but not saturated, and the warm pool's hit rate
climbs as churn repeats the same environment shapes.
"""

import pytest

from repro.core.runtime import UDCRuntime
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.workloads.cluster import generate_cluster_trace

from _util import print_table

SPEC = DatacenterSpec(pods=2, racks_per_pod=4)
HORIZON_S = 1800.0   # half an hour of arrivals
RATE_PER_MIN = 1.0


def run_day(seed=3):
    trace = generate_cluster_trace(RATE_PER_MIN, HORIZON_S, seed=seed)
    runtime = UDCRuntime(
        build_datacenter(SPEC),
        warm_pool=WarmPool(enabled=True, target_depth=4),
        prewarm=True,
    )
    for arrival in trace.arrivals:
        runtime.submit_at(
            arrival.arrival_s, arrival.dag, arrival.definition,
            tenant=arrival.tenant,
        )
    results = runtime.drain()
    return trace, runtime, results


def test_e17_cluster_churn(benchmark):
    trace, runtime, results = benchmark(run_day)

    by_archetype = {}
    for arrival, result in zip(trace.arrivals, results):
        bucket = by_archetype.setdefault(arrival.archetype, [])
        bucket.append(result)
    rows = []
    for archetype, archetype_results in sorted(by_archetype.items()):
        makespans = sorted(r.makespan_s for r in archetype_results)
        costs = [r.total_cost for r in archetype_results]
        rows.append((
            archetype, len(archetype_results),
            makespans[len(makespans) // 2],
            makespans[-1],
            sum(costs) / len(costs),
        ))
    print_table(
        f"E17 — {len(trace)} tenant apps over {HORIZON_S / 60:.0f} min "
        f"({RATE_PER_MIN}/min)",
        ["archetype", "apps", "p50 makespan_s", "max makespan_s",
         "mean cost_$"],
        rows,
    )
    util = runtime.datacenter.pools.utilization_report()
    print(f"\ntime-weighted pool utilization: "
          f"{ {k: round(v, 3) for k, v in util.items()} }")
    print(f"warm pool: {runtime.warm_pool.stats.hits} hits / "
          f"{runtime.warm_pool.stats.misses} misses "
          f"(rate {runtime.warm_pool.stats.hit_rate:.0%})")

    # Shapes.
    assert len(results) == len(trace) > 15
    assert all(r.total_failures == 0 for r in results)
    assert all(r.total_cost > 0 for r in results)
    # The secure archetype pays the single-tenant premium: its whole
    # device is billed while others share (the E4 frontier, live).
    mean_cost = {row[0]: row[4] for row in rows}
    assert mean_cost["secure"] > mean_cost["batch"]
    # All task allocations returned: pools end empty of task compute.
    cpu_pool = runtime.datacenter.pool(DeviceType.CPU)
    assert cpu_pool.total_used == 0.0
    # Warm inventory keeps being reused across arrivals.
    assert runtime.warm_pool.stats.hits > 0


def test_e17_determinism(benchmark):
    """The whole churn day is bit-for-bit reproducible."""

    def two_days():
        first = run_day(seed=7)[2]
        second = run_day(seed=7)[2]
        return first, second

    first, second = benchmark(two_days)
    assert [r.makespan_s for r in first] == [r.makespan_s for r in second]
    assert [round(r.total_cost, 12) for r in first] \
        == [round(r.total_cost, 12) for r in second]
    print(f"\n{len(first)} app runs identical across replays")
