"""E20 — §4: the evolutionary adoption path ("hybrid cluster").

*"Cloud providers could also partially adopt UDC, e.g., with a hybrid
cluster that contains both regular servers and disaggregated devices."*

A provider converts its fleet gradually: at conversion fraction *f*, a
share *f* of the hardware budget is disaggregated pools and the rest
stays monolithic servers.  Fine-grained (UDC) demand goes to the pools;
legacy VM demand goes to the servers; overflow from either side falls
back to the other (pools can host legacy shapes exactly; servers host
modules with bin-packing waste).

Measured shape (and the honest nuance on the paper's optimism): overall
utilization rises monotonically with the conversion fraction from the
server baseline (~0.31 at this mix) to the pool packing limit (~0.99) —
but the curve is *convex*: the marginal gain accelerates toward full
conversion, because every server still in the fleet keeps stranding the
memory its shape mismatches.  Incremental adoption works and never hurts,
but the payoff is back-loaded.
"""

import math

import pytest

from repro.hardware.server import ServerCluster, ServerSpec, WorkloadDemand
from repro.workloads.generators import skewed_demands

from _util import print_table

SERVER = ServerSpec(cpus=32, mem_gb=128, name="std")
CPU_DEVICE = 32.0
DRAM_DEVICE = 512.0
N_JOBS = 400


def hybrid_utilization(conversion: float, seed=4):
    """Host the mix on a fleet whose capacity is split (1-f) servers /
    f pools; returns (overall_utilization, server_share_jobs)."""
    demands = skewed_demands(N_JOBS, cpu_heavy_fraction=0.15,
                             seed=seed).demands
    total_cpu = sum(d.cpus for d in demands)
    total_mem = sum(d.mem_gb for d in demands)

    # Jobs are routed to pools with probability = conversion (the share
    # of tenants who migrated to fine-grained UDC shapes), deterministic
    # by index so the split is exact.
    pool_jobs = [d for i, d in enumerate(demands)
                 if (i * 997) % 1000 < conversion * 1000]
    server_jobs = [d for d in demands if d not in pool_jobs]

    used = provisioned = 0.0

    if server_jobs:
        cluster = ServerCluster(SERVER)
        placement = cluster.pack(list(server_jobs))
        assert not placement.unplaced
        n_servers = placement.servers_used
        provisioned += n_servers * (SERVER.cpus + SERVER.mem_gb / 16)
        used += sum(d.cpus for d in server_jobs) \
            + sum(d.mem_gb for d in server_jobs) / 16

    if pool_jobs:
        cpu = sum(d.cpus for d in pool_jobs)
        mem = sum(d.mem_gb for d in pool_jobs)
        cpu_prov = math.ceil(cpu / CPU_DEVICE) * CPU_DEVICE
        mem_prov = math.ceil(mem / DRAM_DEVICE) * DRAM_DEVICE
        # Normalize memory into cpu-equivalent units (16 GB ~ 1 core of
        # provisioned value) so both sides add in one currency.
        provisioned += cpu_prov + mem_prov / 16
        used += cpu + mem / 16

    return used / provisioned, len(server_jobs) / len(demands)


def sweep():
    rows = []
    for conversion in (0.0, 0.25, 0.5, 0.75, 1.0):
        utilization, server_share = hybrid_utilization(conversion)
        rows.append((conversion, server_share, utilization))
    return rows


def test_e20_hybrid_adoption(benchmark):
    rows = benchmark(sweep)
    print_table(
        "E20 — fleet utilization along the conversion path",
        ["pool fraction", "jobs on servers", "overall utilization"],
        rows,
    )
    utilization = {f: u for f, _s, u in rows}

    # Endpoints: server-only baseline is poor; pool-only near-perfect.
    assert utilization[0.0] < 0.5
    assert utilization[1.0] > 0.9
    # The path is monotone: every conversion step helps (partial adoption
    # never hurts — the paper's viability claim).
    ordered = [utilization[f] for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
    assert ordered == sorted(ordered)
    # ...but the curve is convex: the marginal gain grows as conversion
    # completes (remaining servers keep stranding memory), so the payoff
    # is back-loaded.
    first_half = utilization[0.5] - utilization[0.0]
    second_half = utilization[1.0] - utilization[0.5]
    assert second_half > first_half
