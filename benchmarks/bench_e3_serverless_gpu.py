"""E3 — C3: the serverless-GPU gap for event-triggered ML inference.

Three ways to serve a sparse Poisson CNN-inference trace (§1's motivating
workload):

* **FaaS-CPU** — today's serverless: CPU-only functions;
* **UDC GPU-serverless** — the same event-triggered model, but the
  function's resource aspect names a GPU (what UDC enables);
* **always-on GPU VM** — today's workaround (p3.2xlarge 24/7).

Expected shape: UDC-GPU latency is ~an order of magnitude below FaaS-CPU
at a cost far below the always-on VM.
"""

import pytest

from repro.baselines.serverless import (
    FaasPlatform,
    always_on_gpu_vm_cost,
)
from repro.workloads.inference import poisson_inference_trace

from _util import print_table

HORIZON_S = 4 * 3600.0


def run_all(rate_hz=0.02, seed=9):
    trace = poisson_inference_trace(rate_hz=rate_hz, horizon_s=HORIZON_S,
                                    work=40.0, seed=seed)
    cpu = FaasPlatform(gpu=False).run_trace(trace)
    gpu = FaasPlatform(gpu=True).run_trace(trace)
    vm_cost = always_on_gpu_vm_cost(HORIZON_S)
    return trace, cpu, gpu, vm_cost


def test_e3_serverless_gpu(benchmark):
    trace, cpu, gpu, vm_cost = benchmark(run_all)

    # Always-on VM serves at GPU speed with no cold starts.
    vm_latency = 40.0 / 40.0
    rows = [
        ["FaaS CPU-only (today)", cpu.mean_latency_s,
         cpu.percentile_latency_s(99), cpu.cold_start_fraction,
         cpu.total_cost],
        ["UDC GPU serverless", gpu.mean_latency_s,
         gpu.percentile_latency_s(99), gpu.cold_start_fraction,
         gpu.total_cost],
        ["always-on GPU VM", vm_latency, vm_latency, 0.0, vm_cost],
    ]
    print_table(
        f"E3 — {len(trace)} event-triggered inferences over "
        f"{HORIZON_S / 3600:.0f}h (rate {trace.rate_hz}/s)",
        ["platform", "mean lat (s)", "p99 lat (s)", "cold frac", "cost ($)"],
        rows,
    )

    # Shapes.
    assert gpu.mean_latency_s < cpu.mean_latency_s / 8
    assert gpu.total_cost < vm_cost / 5
    assert gpu.total_cost < cpu.total_cost * 5  # same order as CPU FaaS


def test_e3_crossover_with_rate(benchmark):
    """At high request rates the always-on VM becomes competitive —
    the serverless win is specifically an *event-triggered* win."""

    def sweep():
        rows = []
        for rate in (0.001, 0.01, 0.1, 1.0):
            trace = poisson_inference_trace(rate_hz=rate, horizon_s=HORIZON_S,
                                            work=40.0, seed=5)
            gpu = FaasPlatform(gpu=True).run_trace(trace)
            rows.append((rate, len(trace), gpu.total_cost,
                         always_on_gpu_vm_cost(HORIZON_S)))
        return rows

    rows = benchmark(sweep)
    print_table(
        "E3 — GPU serverless vs always-on VM across arrival rates",
        ["rate (req/s)", "requests", "serverless $", "always-on VM $"],
        rows,
    )
    sparse = rows[0]
    dense = rows[-1]
    assert sparse[2] < sparse[3] / 50      # sparse: serverless wins big
    assert dense[2] > dense[3] * 0.5       # dense: VM competitive
