"""Modularizer bench — auto-cut legacy apps vs the hand-cut reference (C11).

Three experiments back the claim that the whole-program analyzer
compiles legacy Python into lint-clean UDC definitions competitive with
a hand cut:

1. **Corpus compile** — every app under ``examples/legacy/`` compiles
   through :func:`repro.analysis.program.modularize` with zero analyzer
   findings (the pipeline self-checks; this bench re-lints emitted
   definitions independently) and a byte-identical ``--json`` report
   across two runs.
2. **Auto vs hand cut** — the auto-cut ``fig2_monolith.py`` is scored
   against the hand-cut :mod:`repro.workloads.medical` app.  Gates:
   cross-module traffic no worse than the hand cut (colocated modules
   count as one unit — the hand cut pins A1+A2 together exactly where
   the auto cut merges them), and end-to-end fulfillment cost within
   15% of the hand cut on the same datacenter.
3. **End to end** — the auto-cut app *runs*: the emitted modules are
   given composed callables over the executed legacy namespace and the
   full pipeline produces a diagnosis with zero failures.

Results land in ``BENCH_MODULARIZE.json`` at the repo root; ``--smoke``
runs the same gates without rewriting it (the pipeline is milliseconds —
there is no reduced scale).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import analyze_definition
from repro.analysis.program import (
    attach_functions,
    input_payload,
    modularize,
)
from repro.core.runtime import UDCRuntime
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.workloads.medical import build_medical_app

try:
    from _util import print_table
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).parent))
    from _util import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_MODULARIZE.json"
LEGACY_DIR = REPO_ROOT / "examples" / "legacy"

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)
#: fulfillment-cost gate: auto cut within 15% of the hand cut
COST_RATIO_CEILING = 1.15


def _hand_cross_bytes(dag) -> int:
    """Hand-cut cross-module traffic, colocated modules as one unit."""
    groups = dag.merged_colocation_groups()

    def unit(name: str) -> str:
        for index, group in enumerate(groups):
            if name in group:
                return f"group-{index}"
        return name

    return sum(e.bytes_transferred for e in dag.edges
               if unit(e.src) != unit(e.dst))


def run_corpus() -> list:
    rows = []
    for path in sorted(LEGACY_DIR.glob("*.py")):
        source = path.read_text(encoding="utf-8")
        result = modularize(source, name=path.stem,
                            datacenter=build_datacenter(SPEC))
        again = modularize(source, name=path.stem,
                           datacenter=build_datacenter(SPEC))
        assert result.report_json() == again.report_json(), (
            f"{path.name}: report is not byte-deterministic"
        )
        relint = analyze_definition(result.emitted.definition,
                                    app=result.emitted.dag,
                                    datacenter=build_datacenter(SPEC))
        rows.append({
            "source": path.name,
            "tasks": len(result.model.tasks),
            "stores": len(result.model.stores),
            "modules": len(result.cut.groups),
            "merges": result.cut.merges,
            "cross_module_bytes": result.cut.cross_bytes,
            "internalized_bytes": result.cut.internal_bytes,
            "raised_stores": list(result.taint.raised),
            "lint_findings": len(relint),
        })
    return rows


def run_fig2_comparison() -> dict:
    source = (LEGACY_DIR / "fig2_monolith.py").read_text(encoding="utf-8")
    result = modularize(source, name="fig2_monolith",
                        datacenter=build_datacenter(SPEC))

    hand_dag, hand_definition = build_medical_app()
    hand_cross = _hand_cross_bytes(hand_dag)

    hand_runtime = UDCRuntime(build_datacenter(SPEC))
    hand_result = hand_runtime.run(
        hand_dag, hand_definition, tenant="hospital",
        inputs={"A1": {"pixels": list(range(256)), "patient": "p-bench"},
                "A3": {"patient": "p-bench"},
                "B1": {"consented": True}},
    )

    namespace = {"__name__": "fig2_monolith_bench"}
    exec(compile(source, "fig2_monolith.py", "exec"), namespace)
    auto_dag = attach_functions(result.model, result.cut, result.emitted,
                                namespace)
    auto_runtime = UDCRuntime(build_datacenter(SPEC))
    auto_result = auto_runtime.run(
        auto_dag, result.emitted.definition, tenant="hospital",
        inputs=input_payload(
            result.model, result.emitted,
            image={"pixels": list(range(256)), "patient": "p-bench"},
            patient="p-bench", consented=True,
        ),
    )
    verdict = auto_result.outputs["diagnose"]

    return {
        "hand": {"cross_module_bytes": hand_cross,
                 "makespan_s": hand_result.makespan_s,
                 "cost_dollars": hand_result.total_cost,
                 "failures": hand_result.total_failures},
        "auto": {"cross_module_bytes": result.cut.cross_bytes,
                 "modules": len(result.cut.groups),
                 "makespan_s": auto_result.makespan_s,
                 "cost_dollars": auto_result.total_cost,
                 "failures": auto_result.total_failures,
                 "diagnosis": verdict["diagnosis"]},
        "gates": {
            "traffic_ok": result.cut.cross_bytes <= hand_cross,
            "cost_ratio": auto_result.total_cost / hand_result.total_cost,
            "cost_ok": (auto_result.total_cost
                        <= COST_RATIO_CEILING * hand_result.total_cost),
        },
    }


def run(smoke: bool = False, write: bool = True) -> dict:
    corpus = run_corpus()
    fig2 = run_fig2_comparison()
    payload = {
        "scale": "smoke" if smoke else "full",
        "corpus": corpus,
        "fig2": fig2,
    }
    if write and not smoke:
        RESULT_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {RESULT_PATH}")

    print_table(
        "Legacy corpus — auto-modularization",
        ["source", "tasks", "stores", "modules", "cross_B",
         "internal_B", "lint"],
        [[r["source"], r["tasks"], r["stores"], r["modules"],
          r["cross_module_bytes"], r["internalized_bytes"],
          r["lint_findings"]] for r in corpus],
    )
    gates = fig2["gates"]
    print(f"\nfig2 auto vs hand: traffic {fig2['auto']['cross_module_bytes']}"
          f" <= {fig2['hand']['cross_module_bytes']} B: "
          f"{gates['traffic_ok']}; cost ratio "
          f"{gates['cost_ratio']:.3f} (ceiling {COST_RATIO_CEILING}): "
          f"{gates['cost_ok']}")

    for row in corpus:
        assert row["lint_findings"] == 0, (
            f"{row['source']}: emitted definition has "
            f"{row['lint_findings']} analyzer finding(s)"
        )
    assert gates["traffic_ok"], (
        f"auto cut moves {fig2['auto']['cross_module_bytes']} cross-module "
        f"bytes, hand cut {fig2['hand']['cross_module_bytes']}"
    )
    assert gates["cost_ok"], (
        f"auto-cut fulfillment cost ratio {gates['cost_ratio']:.3f} over "
        f"the {COST_RATIO_CEILING} ceiling"
    )
    assert fig2["auto"]["failures"] == 0, "auto-cut run reported failures"
    return payload


# ------------------------------------------------------------ pytest hook


def test_modularize_bench_smoke():
    """Full gates at CI scale (the pipeline is already CI-fast)."""
    run(smoke=True, write=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the gates without rewriting "
                             "BENCH_MODULARIZE.json")
    parser.add_argument("--no-write", action="store_true",
                        help="run without touching BENCH_MODULARIZE.json")
    args = parser.parse_args()
    run(smoke=args.smoke, write=not args.no_write)
