"""E4 — C4: the isolation vs performance/utilization frontier (§1, §3.3).

The same two-task application runs at every isolation tier.  Reported per
tier: makespan (startup + overhead costs), tenant cost (single-tenant
billing strands whole devices), and the stranded-capacity fraction.

Expected shape: monotone frontier — stronger isolation never gets faster
or cheaper; the STRONGEST tier pays both the TEE overhead and whole-device
stranding.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

TIERS = ["weak", "medium", "strong", "strongest"]


def build_app():
    app = AppBuilder("frontier")

    @app.task(name="stage1", work=20.0)
    def stage1(ctx):
        return 1

    @app.task(name="stage2", work=20.0)
    def stage2(ctx):
        return 2

    app.flows("stage1", "stage2", bytes_=1 << 20)
    return app.build()


def run_tier(tier: str):
    runtime = UDCRuntime(
        build_datacenter(DatacenterSpec(pods=1, racks_per_pod=2))
    )
    definition = {
        name: {"resource": {"device": "cpu", "amount": 2},
               "execenv": {"isolation": tier}}
        for name in ("stage1", "stage2")
    }
    result = runtime.run(build_app(), definition)
    # Stranded capacity: single-tenant devices' unused fraction at peak.
    pool = runtime.datacenter.pool(DeviceType.CPU)
    stranded = 0.0
    total = 0.0
    for obj in result.objects.values():
        for alloc in obj.allocations:
            if alloc.single_tenant:
                total += alloc.device.spec.capacity
                stranded += alloc.device.spec.capacity - alloc.amount
    stranded_frac = stranded / total if total else 0.0
    return result, stranded_frac


def sweep():
    rows = []
    for tier in TIERS:
        result, stranded = run_tier(tier)
        rows.append((tier, result.makespan_s, result.total_startup_s,
                     result.total_cost, stranded))
    return rows


def test_e4_isolation_frontier(benchmark):
    rows = benchmark(sweep)
    print_table(
        "E4 — isolation tier vs performance / cost / stranding",
        ["tier", "makespan_s", "startup_s", "cost_$", "stranded frac"],
        rows,
    )
    by_tier = {row[0]: row for row in rows}

    # The frontier is monotone from weak upward through the *secure*
    # tiers.  (Medium can undercut weak: the provider fulfills it with a
    # unikernel, whose specialized library OS both boots faster and runs
    # leaner than a container — a real effect, not an artifact.)
    assert by_tier["weak"][3] < by_tier["strong"][3] < by_tier["strongest"][3]
    assert by_tier["medium"][3] <= by_tier["strong"][3]
    # Strong tiers pay real startup (TEE/bare-metal provisioning).
    assert by_tier["strong"][2] > by_tier["weak"][2]
    # Only the strongest tier strands capacity (single tenancy).
    assert by_tier["strongest"][4] > 0.5
    assert by_tier["weak"][4] == 0.0
    # Security costs performance: strongest slower than weak.
    assert by_tier["strongest"][1] > by_tier["weak"][1]
