"""E7 — C9: detecting conflicting per-module distributed specs (§3.4).

Generates sharing graphs (T tasks randomly reading/writing D data modules)
with a controlled fraction of conflicting consistency declarations, then
runs the detector + both resolution policies.

Expected shape: every seeded conflict is detected, zero false positives,
strictest-wins rewrites exactly the conflicted data modules, and detection
cost scales to hundreds of modules in milliseconds.
"""

import random

import pytest

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.core.conflicts import (
    ConflictError,
    ConflictPolicy,
    detect_conflicts,
    resolve_conflicts,
)
from repro.core.spec import parse_definition
from repro.distsem.consistency import ConsistencyLevel

from _util import print_table

LEVELS = ["sequential", "release", "eventual"]


def build_case(n_tasks, n_data, conflict_fraction, seed):
    """A random sharing graph with a known set of conflicted data modules."""
    rng = random.Random(seed)
    dag = ModuleDAG(name="conflicts")
    for t in range(n_tasks):
        dag.add_module(TaskModule(name=f"T{t}"))
    for d in range(n_data):
        dag.add_module(DataModule(name=f"D{d}"))

    readers = {f"D{d}": rng.sample(range(n_tasks), k=min(3, n_tasks))
               for d in range(n_data)}
    for data_name, task_ids in readers.items():
        for t in task_ids:
            dag.add_edge(data_name, f"T{t}")

    spec = {f"T{t}": {"distributed": {"data_consistency": {}}}
            for t in range(n_tasks)}
    seeded_conflicts = set()
    for data_name, task_ids in readers.items():
        if len(task_ids) < 2:
            continue
        if rng.random() < conflict_fraction:
            levels = rng.sample(LEVELS, k=2)
            seeded_conflicts.add(data_name)
        else:
            levels = [rng.choice(LEVELS)] * 2
        for t, level in zip(task_ids[:2], levels):
            spec[f"T{t}"]["distributed"]["data_consistency"][data_name] = level
    return dag, parse_definition(spec), seeded_conflicts


def run_detection(n_tasks=60, n_data=120, conflict_fraction=0.3, seed=17):
    dag, definition, seeded = build_case(n_tasks, n_data, conflict_fraction,
                                         seed)
    detected = detect_conflicts(dag, definition)
    return dag, definition, seeded, detected


def test_e7_conflict_detection(benchmark):
    dag, definition, seeded, detected = benchmark(run_detection)

    detected_names = {c.data_module for c in detected}
    rows = []
    for size in (10, 50, 100, 200):
        case_dag, case_def, case_seeded = build_case(size, size * 2, 0.3, 5)
        case_detected = {c.data_module
                         for c in detect_conflicts(case_dag, case_def)}
        rows.append((f"{size} tasks / {size * 2} data",
                     len(case_seeded), len(case_detected),
                     "exact" if case_detected == case_seeded else "MISMATCH"))
    print_table("E7 — conflict detection accuracy vs scale",
                ["scale", "seeded", "detected", "match"], rows)

    # Shape: detection is exact (no misses, no false positives).
    assert detected_names == seeded
    for _scale, n_seeded, n_detected, match in rows:
        assert match == "exact"

    # Strictest-wins rewrites only the conflicted modules.
    resolution = resolve_conflicts(dag, definition, ConflictPolicy.STRICTEST)
    assert set(resolution.resolved_levels) == seeded
    for data_name, level in resolution.resolved_levels.items():
        declared = [
            lvl for _m, lvl in next(
                c for c in detected if c.data_module == data_name
            ).declarations
        ]
        assert level == max(declared, key=lambda l: l.rank)

    # Error policy refuses the whole definition.
    with pytest.raises(ConflictError):
        resolve_conflicts(dag, definition, ConflictPolicy.ERROR)
