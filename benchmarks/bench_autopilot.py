"""Autopilot bench — the spot/firm cost frontier and forecast warm pools.

Two experiments back the economic-autopilot claims (C7, C10):

1. **Spot-vs-firm frontier** — the same diurnal tenant trace is served
   with a growing fraction of tenants on the preemptible spot tier
   (``goal="cheapest"``, billed at the spot multiplier, evictable for
   firm work).  Gates, at the chosen operating point: blended billed
   cost drops by at least 20% versus the all-firm baseline, while the
   SLO-miss *rate* rises by at most 5 percentage points.
2. **Forecast-driven vs. static warm pools** — a repeating diurnal
   demand pattern is offered to two :class:`~repro.execenv.warmpool
   .WarmPool` instances: one at the flat default depth, one sized per
   window by :class:`~repro.economics.autopilot.WarmPoolForecaster`.
   "Equal pooled capacity" means the forecast pool's time-averaged
   provisioned shelf depth may not exceed the static pool's flat depth;
   under that constraint the static pool must suffer at least 1.5x the
   cold-start misses.

Results land in ``BENCH_AUTOPILOT.json`` at the repo root; ``--smoke``
runs a CI-scale frontier without rewriting it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.telemetry import Telemetry
from repro.economics.autopilot import SPOT_PLAN, WarmPoolForecaster
from repro.execenv.environments import EnvKind
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service import (
    BudgetExceeded,
    TenantSpec,
    UDCService,
    WeightedFairShare,
)
from repro.workloads.tenants import (
    default_tenant_profiles,
    generate_tenant_trace,
)

try:
    from _util import print_table
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).parent))
    from _util import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_AUTOPILOT.json"

SPEC = DatacenterSpec(
    pods=1, racks_per_pod=4,
    devices_per_rack={DeviceType.CPU: 16, DeviceType.GPU: 4,
                      DeviceType.DRAM: 4, DeviceType.SSD: 4},
)

#: (tenants, minutes, peak submissions/min/tenant)
FULL_SCALE = (8, 40.0, 0.6)
SMOKE_SCALE = (4, 12.0, 0.6)

SPOT_FRACTIONS = (0.0, 0.25, 0.5, 0.75)
#: the frontier operating point the gates are evaluated at
OPERATING_POINT = 0.75
COST_REDUCTION_FLOOR = 0.20
#: SLO-miss rate may rise by at most this many percentage points
MISS_RATE_CEILING = 0.05

#: per-day warm-demand pattern (one entry per window; mean 1.875, just
#: under the static pool's flat depth of 2, so the forecaster's warm-up
#: transient cannot push its average provisioned depth past static's)
DIURNAL_DEMAND = (0, 0, 1, 2, 4, 6, 1, 1)
WINDOW_S = 3600.0
WARM_DAYS = 6
STATIC_DEPTH = 2
MISS_RATIO_FLOOR = 1.5


# ------------------------------------------------------- spot frontier


def _serve_trace(tenants: int, minutes: float, rate: float,
                 spot_fraction: float, seed: int = 0) -> dict:
    """Serve one diurnal trace; returns the economic rollup."""
    profiles = default_tenant_profiles(count=tenants, seed=seed)
    trace = generate_tenant_trace(
        profiles, peak_rate_per_minute=rate, horizon_s=minutes * 60.0,
        repeat_fraction=0.25, seed=seed,
    )
    service = UDCService(build_datacenter(SPEC),
                         policy=WeightedFairShare(), autopilot=True,
                         telemetry=Telemetry(enabled=False))
    spot_count = int(round(spot_fraction * len(profiles)))
    for index, profile in enumerate(profiles):
        service.register_tenant(profile.name, TenantSpec(
            weight=profile.weight,
            goal="cheapest" if index < spot_count else None,
            slo_s=120.0,
        ))
    for index, arrival in enumerate(trace.submissions, start=1):
        try:
            service.submit(arrival.tenant, arrival.dag,
                           arrival.definition, inputs=arrival.inputs)
        except BudgetExceeded:
            pass
        if index % 8 == 0:
            service.drain()
    service.drain()
    rollups = service.rollup()
    completed = sum(u.completed for u in rollups)
    misses = sum(u.slo_misses for u in rollups)
    return {
        "spot_fraction": spot_fraction,
        "spot_tenants": spot_count,
        "completed": completed,
        "metered_cost": round(sum(u.total_cost for u in rollups), 6),
        "billed_cost": round(sum(u.billed_cost for u in rollups), 6),
        "slo_misses": misses,
        "miss_rate": round(misses / completed, 6) if completed else 0.0,
        "preemptions": service.preemptions,
        "accounting_drift": service.check_budget_accounting(),
    }


def _run_frontier(smoke: bool) -> dict:
    tenants, minutes, rate = SMOKE_SCALE if smoke else FULL_SCALE
    points = [_serve_trace(tenants, minutes, rate, fraction)
              for fraction in SPOT_FRACTIONS]
    baseline = points[0]
    chosen = next(p for p in points
                  if p["spot_fraction"] == OPERATING_POINT)
    reduction = 1.0 - chosen["billed_cost"] / baseline["billed_cost"]
    miss_delta = chosen["miss_rate"] - baseline["miss_rate"]
    gates = {
        "cost_reduction": round(reduction, 4),
        "cost_reduction_floor": COST_REDUCTION_FLOOR,
        "cost_ok": reduction >= COST_REDUCTION_FLOOR,
        "miss_rate_delta": round(miss_delta, 4),
        "miss_rate_ceiling": MISS_RATE_CEILING,
        "miss_ok": miss_delta <= MISS_RATE_CEILING,
        "drift": [line for p in points for line in p["accounting_drift"]],
    }
    print_table(
        "spot-vs-firm frontier (diurnal trace, autopilot on)",
        ["spot frac", "spot", "done", "metered $", "billed $",
         "slo miss", "preempt"],
        [[p["spot_fraction"], p["spot_tenants"], p["completed"],
          p["metered_cost"], p["billed_cost"], p["slo_misses"],
          p["preemptions"]] for p in points],
    )
    print(f"\nfrontier @ spot={OPERATING_POINT} "
          f"(spot bills {SPOT_PLAN.multiplier}x): "
          f"blended cost -{gates['cost_reduction']:.1%} "
          f"(floor {COST_REDUCTION_FLOOR:.0%}): {gates['cost_ok']}; "
          f"miss-rate delta {gates['miss_rate_delta']:+.2%} "
          f"(ceiling {MISS_RATE_CEILING:.0%}): {gates['miss_ok']}")
    return {"points": points, "gates": gates}


# ------------------------------------------------------- warm forecast


def _drive_pool(pool: WarmPool,
                forecaster: WarmPoolForecaster = None) -> dict:
    """Offer the diurnal demand pattern; returns miss/capacity stats."""
    kind = EnvKind.CONTAINER
    pool.prewarm(kind, False, 0)  # register the shelf; stocks nothing
    if forecaster is not None:
        pool.observer = forecaster.observe
    provisioned = 0
    windows = 0
    for day in range(WARM_DAYS):
        for slot, demand in enumerate(DIURNAL_DEMAND):
            now = (day * len(DIURNAL_DEMAND) + slot) * WINDOW_S
            if forecaster is not None:
                forecaster.roll(now)
                pool.set_target(kind, False,
                                forecaster.target_for(kind, False))
            provisioned += pool.target_for(kind, False)
            windows += 1
            pool.refill()
            for _ in range(demand):
                pool.try_acquire(kind, False)
    return {
        "misses": pool.stats.misses,
        "hits": pool.stats.hits,
        "prewarmed": pool.stats.prewarmed,
        "avg_provisioned_depth": round(provisioned / windows, 4),
    }


def _run_warm_pools() -> dict:
    static = _drive_pool(WarmPool(target_depth=STATIC_DEPTH))
    forecaster = WarmPoolForecaster(
        window_s=WINDOW_S, day_s=len(DIURNAL_DEMAND) * WINDOW_S,
        safety=1.0, min_depth=0, max_depth=16,
    )
    forecast = _drive_pool(WarmPool(target_depth=0),
                           forecaster=forecaster)
    ratio = static["misses"] / max(1, forecast["misses"])
    gates = {
        "static_misses": static["misses"],
        "forecast_misses": forecast["misses"],
        "miss_ratio": round(ratio, 4),
        "miss_ratio_floor": MISS_RATIO_FLOOR,
        "miss_ok": static["misses"] >= MISS_RATIO_FLOOR
        * max(1, forecast["misses"]),
        "capacity_ok": (forecast["avg_provisioned_depth"]
                        <= STATIC_DEPTH + 1e-9),
    }
    print_table(
        f"warm pools over {WARM_DAYS} diurnal days "
        f"(demand {list(DIURNAL_DEMAND)}/window)",
        ["policy", "misses", "hits", "prewarmed", "avg depth"],
        [["static depth=2", static["misses"], static["hits"],
          static["prewarmed"], static["avg_provisioned_depth"]],
         ["forecast", forecast["misses"], forecast["hits"],
          forecast["prewarmed"], forecast["avg_provisioned_depth"]]],
    )
    print(f"\nwarm pools: static/forecast miss ratio "
          f"{gates['miss_ratio']} >= {MISS_RATIO_FLOOR}: "
          f"{gates['miss_ok']}; equal capacity "
          f"(forecast avg depth {forecast['avg_provisioned_depth']} <= "
          f"{STATIC_DEPTH}): {gates['capacity_ok']}")
    return {"static": static, "forecast": forecast, "gates": gates}


# --------------------------------------------------------------- runner


def run(smoke: bool = False, write: bool = True) -> dict:
    frontier = _run_frontier(smoke)
    warm = _run_warm_pools()
    payload = {
        "scale": "smoke" if smoke else "full",
        "spot_frontier": frontier,
        "warm_pools": warm,
    }
    if write and not smoke:
        RESULT_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {RESULT_PATH}")

    fgates, wgates = frontier["gates"], warm["gates"]
    assert not fgates["drift"], (
        f"budget/ledger accounting drift: {fgates['drift']}"
    )
    assert fgates["cost_ok"], (
        f"blended cost reduction {fgates['cost_reduction']:.1%} under "
        f"the {COST_REDUCTION_FLOOR:.0%} floor"
    )
    assert fgates["miss_ok"], (
        f"SLO-miss rate rose {fgates['miss_rate_delta']:+.2%}, over "
        f"the {MISS_RATE_CEILING:.0%} ceiling"
    )
    assert wgates["capacity_ok"], (
        "forecast pool provisioned more average depth than static"
    )
    assert wgates["miss_ok"], (
        f"static/forecast miss ratio {wgates['miss_ratio']} under "
        f"the {MISS_RATIO_FLOOR}x floor"
    )
    return payload


# ------------------------------------------------------------ pytest hook


def test_autopilot_bench_smoke():
    """CI-scale frontier + full warm-pool comparison, same gates."""
    run(smoke=True, write=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale; does not rewrite "
                             "BENCH_AUTOPILOT.json")
    parser.add_argument("--no-write", action="store_true",
                        help="run without touching BENCH_AUTOPILOT.json")
    args = parser.parse_args()
    run(smoke=args.smoke, write=not args.no_write)
