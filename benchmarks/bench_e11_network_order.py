"""E11 — C12: in-network ordering vs software replication protocols (§3.4).

Replicated writes under three ordering schemes (primary-backup, leader
consensus, NOPaxos-style switch sequencer) across replica counts.

Expected shape: the switch sequencer has the lowest latency and zero
replica-to-replica coordination messages at every replica count; the gap
widens as replicas grow (software schemes serialize more hops and
processing).
"""

import pytest

from repro.distsem.network_order import OrderingScheme, run_ordered_writes

from _util import print_table

WRITES = 100


def sweep():
    rows = []
    for replicas in (3, 5, 7):
        for scheme in OrderingScheme:
            result = run_ordered_writes(scheme, WRITES, replicas)
            rows.append((
                replicas, scheme.value,
                result.mean_latency_s * 1e6,
                result.total_messages / WRITES,
                result.replica_to_replica_messages / WRITES,
            ))
    return rows


def test_e11_network_ordering(benchmark):
    rows = benchmark(sweep)
    print_table(
        f"E11 — replicated-write ordering schemes ({WRITES} writes)",
        ["replicas", "scheme", "mean latency (us)", "msgs/write",
         "replica-to-replica msgs/write"],
        rows,
    )

    by_key = {(r, s): (lat, msgs, r2r) for r, s, lat, msgs, r2r in rows}
    for replicas in (3, 5, 7):
        sequencer = by_key[(replicas, "switch-sequencer")]
        primary = by_key[(replicas, "primary-backup")]
        consensus = by_key[(replicas, "consensus")]
        # Sequencer wins latency and removes replica coordination.
        assert sequencer[0] < primary[0]
        assert sequencer[0] < consensus[0]
        assert sequencer[2] == 0.0
        assert primary[2] > 0 and consensus[2] > 0

    # The software schemes' latency grows faster with replica count.
    seq_growth = by_key[(7, "switch-sequencer")][0] \
        / by_key[(3, "switch-sequencer")][0]
    pb_growth = by_key[(7, "primary-backup")][0] \
        / by_key[(3, "primary-backup")][0]
    assert seq_growth <= pb_growth + 0.05


def test_e11_sequencer_orders_under_contention(benchmark):
    """Correctness side: concurrent sequenced writes from different
    clients apply in an identical order on every replica."""
    from repro.distsem.consistency import ConsistencyLevel
    from repro.distsem.network_order import SwitchSequencer
    from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
    from repro.distsem.store import ReplicatedStore
    from repro.hardware.devices import DeviceType
    from repro.hardware.fabric import Location
    from repro.hardware.topology import DatacenterSpec, build_datacenter

    def run():
        dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
        placement = ReplicaPlacer(dc.pool(DeviceType.SSD)).place(
            10, "t", ReplicationPolicy(factor=3))
        store = ReplicatedStore(
            dc.sim, dc.fabric, "S", placement,
            ConsistencyLevel.SEQUENTIAL,
            sequencer=SwitchSequencer(dc.fabric, dc.switch_locations[0]),
        )
        clients = [Location(0, rack, 50) for rack in range(4)]

        def client_writes(client, tag):
            for index in range(5):
                yield dc.sim.process(
                    store.write(client, "hot-key", f"{tag}-{index}", 256)
                )

        drivers = [dc.sim.process(client_writes(c, f"c{i}"))
                   for i, c in enumerate(clients)]
        dc.sim.run(until_event=dc.sim.all_of(drivers))
        return store

    store = benchmark(run)
    final_values = {replica.data["hot-key"] for replica in store.replicas}
    assert len(final_values) == 1, "replicas diverged under contention"
    assert all(r.next_sequence == 20 for r in store.replicas)
