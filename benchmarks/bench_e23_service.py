"""E23 — the multi-tenant serving layer (PR 4 tentpole).

Three claims, each asserted deterministically:

1. **Fairness under contention** — 8 equal-weight tenants submit 6
   16-GPU jobs each in an adversarial order (all of tenant-0's first,
   then tenant-1's, ...).  The datacenter runs one such job at a time,
   so admission order *is* the allocation.  Cut off mid-stream,
   weighted fair share spreads completions almost evenly (Jain >= 0.9)
   while FIFO has finished the early tenants and starved the late ones.

2. **Result-cache economics** — a tenant re-submitting the same
   (app, definition, inputs) across drain cycles gets served from the
   bounded result cache: hit rate > 0, saved cost credited.

3. **Batched placement throughput** — the same 200-app stream through
   the control plane (submission + placement, simulated execution
   excluded) runs >= 2x faster in batched mode, which memoizes
   admission templates and pays batch-level telemetry, while producing
   byte-identical placements to serial submission in the same order.
"""

import gc
import time

from repro.appmodel.annotations import AppBuilder
from repro.core.admission import FifoAdmission, WeightedFairShare
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service import UDCService

from _util import print_table

#: one rack, 16 GPUs: a 16-GPU job owns the datacenter, serializing jobs
TINY = DatacenterSpec(
    pods=1, racks_per_pod=1,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 2,
                      DeviceType.DRAM: 1, DeviceType.SSD: 1},
)

N_TENANTS = 8
JOBS_PER_TENANT = 6


def gpu_job(name, work=10.0):
    app = AppBuilder(name)

    @app.task(name="train", work=work, devices={DeviceType.GPU})
    def train(ctx):
        return name

    return app.build(), {"train": {"resource": {"device": "gpu",
                                                "amount": 16}}}


def cpu_job(name, work=2.0):
    app = AppBuilder(name)

    @app.task(name="crunch", work=work)
    def crunch(ctx):
        return name

    return app.build(), {"crunch": {"resource": "cheapest"}}


# ----------------------------------------------------- 1. fairness


def adversarial_run(policy):
    """All of tenant-0's jobs submitted first, then tenant-1's, ..."""
    service = UDCService(build_datacenter(TINY), policy=policy)
    for tenant in range(N_TENANTS):
        service.register_tenant(f"t{tenant}")
    for tenant in range(N_TENANTS):
        for job in range(JOBS_PER_TENANT):
            app, spec = gpu_job(f"t{tenant}-j{job}")
            service.submit(f"t{tenant}", app, spec)
    # Calibrate the mid-stream cutoff off one job's simulated makespan
    # (deterministic), then stop the clock about halfway through.
    probe = UDCService(build_datacenter(TINY))
    probe.submit("probe", *gpu_job("probe"))
    probe.drain()
    job_s = probe.handles[0].result.makespan_s
    cutoff = job_s * (N_TENANTS * JOBS_PER_TENANT // 2 + 1)
    service.drain(until=cutoff)
    return service


def test_e23_fair_share_vs_fifo_under_contention():
    fair = adversarial_run(WeightedFairShare())
    fifo = adversarial_run(FifoAdmission())
    fair_counts = fair.completed_by_tenant()
    fifo_counts = fifo.completed_by_tenant()
    print_table(
        f"E23 — adversarial stream, {N_TENANTS} tenants x "
        f"{JOBS_PER_TENANT} jobs, mid-stream cutoff",
        ["policy", "jain", "per-tenant completions"],
        [("fair-share", fair.fairness_index(),
          " ".join(str(fair_counts[t]) for t in sorted(fair_counts))),
         ("fifo", fifo.fairness_index(),
          " ".join(str(fifo_counts[t]) for t in sorted(fifo_counts)))],
    )
    total_fair = sum(fair_counts.values())
    # The cutoff really is mid-stream: contention, not quiescence.
    assert 10 <= total_fair < N_TENANTS * JOBS_PER_TENANT
    # Stride scheduling spreads the cutoff evenly across all 8 tenants...
    assert fair.fairness_index() >= 0.9
    assert max(fair_counts.values()) - min(fair_counts.values()) <= 2
    # ...while FIFO finishes early tenants and starves late ones.
    assert fifo.fairness_index() < 0.75
    assert min(fifo_counts.values()) == 0
    assert fair.fairness_index() > fifo.fairness_index()


# ------------------------------------------------- 2. result cache


def test_e23_result_cache_hit_rate():
    service = UDCService(build_datacenter(TINY))
    app, spec = cpu_job("report")
    for cycle in range(3):
        for variant in range(3):
            service.submit("analyst", app, spec,
                           inputs={"crunch": variant})
        service.drain()
    stats = service.cache_stats
    usage = service.ledger.usage("analyst")
    print_table(
        "E23 — result cache across 3 cycles x 3 repeated inputs",
        ["hits", "misses", "hit_rate", "executed", "cost_$", "saved_$"],
        [(stats.hits, stats.misses, stats.hit_rate, usage.completed,
          usage.total_cost, usage.cost_saved)],
    )
    # Cycle 1 misses and executes; cycles 2-3 are served from cache.
    assert stats.hit_rate > 0
    assert stats.hits == 6 and stats.misses == 3
    assert usage.completed == 3 and usage.cache_hits == 6
    assert usage.cost_saved > 0


# --------------------------------------- 3. batched placement speed


N_APPS = 200
#: 32 racks: locality scoring scans every candidate rack per task, so
#: the placement search — the part a batch round memoizes — carries a
#: realistic weight relative to fixed per-app allocation work.
STREAM_SPEC = DatacenterSpec(pods=2, racks_per_pod=16)


def stream_app():
    """A 10-module app whose control-plane cost is dominated by the
    placement search: every stage pulls from the shared raw store and
    its predecessor, so locality scoring weighs each candidate rack
    against two transfer sources."""
    app = AppBuilder("pipeline")
    raw = app.data("raw", size_gb=1.0)
    curated = app.data("curated", size_gb=1.0)
    previous = None
    for index in range(8):
        @app.task(name=f"s{index}", work=1.0, max_parallelism=1)
        def stage(ctx, _i=index):
            return _i

        app.reads(f"s{index}", raw, bytes_per_run=1 << 18)
        if previous is not None:
            app.flows(previous, f"s{index}", bytes_=1 << 16)
        previous = f"s{index}"
    app.writes("s7", curated, bytes_per_run=1 << 20)
    definition = {
        f"s{index}": {"resource": {"device": "cpu", "amount": 0.25},
                      "execenv": {"isolation": "strong"},
                      "distributed": {"retry": 2}}
        for index in range(8)
    }
    definition["raw"] = {"resource": "dram"}
    definition["curated"] = {
        "resource": "ssd",
        "distributed": {"replication": 2, "consistency": "sequential"},
    }
    return app.build(), definition


def _placement_bytes(service):
    """Placements at physical-device granularity, normalized to
    per-datacenter device positions (device ids number globally)."""
    datacenter = service.runtime.datacenter
    position = {device.device_id: index
                for index, device in enumerate(datacenter.devices)}
    stream = []
    for handle in service.handles:
        result = handle.result
        stream.append(sorted(
            (name, tuple((position[a.device.device_id], a.amount)
                         for a in obj.allocations))
            for name, obj in result.objects.items()
        ))
    return repr(stream).encode()


def submission_phase(batched):
    """Time ONLY the control plane: submit + dispatch of N_APPS apps.
    Execution is simulated and identical either way, so it is excluded
    from the clock but still run (to collect placements).  The cyclic
    collector is parked during the timed region (both modes equally) so
    earlier tests' garbage doesn't bill a random mode."""
    app, definition = stream_app()
    service = UDCService(build_datacenter(STREAM_SPEC), batched=batched,
                         result_cache_capacity=0)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for index in range(N_APPS):
            service.submit("tenant", app, definition, inputs={"s0": index})
        service.dispatch_round()
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    service.drain()
    assert all(h.status == "done" for h in service.handles)
    return elapsed, _placement_bytes(service)


def test_e23_batched_placement_2x_and_byte_identical():
    serial_s, serial_placements = submission_phase(batched=False)
    batched_s, batched_placements = submission_phase(batched=True)
    speedup = serial_s / batched_s
    print_table(
        f"E23 — control-plane time for the same {N_APPS}-app stream",
        ["mode", "seconds", "speedup"],
        [("serial", serial_s, 1.0), ("batched", batched_s, speedup)],
    )
    assert serial_placements == batched_placements
    assert speedup >= 2.0, (
        f"batched submission only {speedup:.2f}x faster "
        f"({batched_s:.3f}s vs {serial_s:.3f}s serial)"
    )
