"""E12 — C13: what remote attestation can and cannot verify (§4).

Runs a secure module under an honest provider and under providers that lie
about different properties, and reports the detection outcome per
property class.

Expected shape: lies about *measured* properties (environment mechanism,
single tenancy) are always caught; lies about *unmeasured* properties
(resource amount, replication factor) are never caught — the paper's open
problem, reproduced as a concrete blind spot.
"""

import dataclasses

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.core.verify import verify_run
from repro.execenv.attestation import Verifier
from repro.execenv.environments import EnvKind
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

SPEC = DatacenterSpec(pods=1, racks_per_pod=2)

DEFINITION = {
    "worker": {
        "resource": {"device": "cpu", "amount": 4},
        "execenv": {"env": "sgx-enclave", "single_tenant": True},
    },
    "vault": {"distributed": {"replication": 3}},
}


def build_app():
    app = AppBuilder("attest")

    @app.task(name="worker", work=1.0)
    def worker(ctx):
        return 1

    vault = app.data("vault", size_gb=1)
    app.writes("worker", vault)
    return app.build()


def run_scenario(dishonest_env=None, lie_amount=False, lie_replication=False):
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(build_app(), DEFINITION, dishonest_env=dishonest_env)
    records = dict(result.records)
    if lie_amount:
        # Provider delivered less compute but *claims* the promised amount.
        records["worker"] = dataclasses.replace(records["worker"], amount=4.0)
        result.objects["worker"].allocations[0].amount = 1.0
    if lie_replication:
        # One replica quietly dropped; the claim stays at 3.
        records["vault"] = dataclasses.replace(
            records["vault"], replication_factor=3)
    report = verify_run(result.objects, records,
                        Verifier(runtime.root_of_trust))
    return report


def test_e12_attestation_coverage(benchmark):
    honest = benchmark(run_scenario)

    env_lie = run_scenario(dishonest_env={"worker": EnvKind.CONTAINER})
    amount_lie = run_scenario(lie_amount=True)
    replication_lie = run_scenario(lie_replication=True)

    def verdict(report, prop):
        checks = [c for c in report.checks if c.prop == prop]
        return checks[0].status if checks else "-"

    rows = [
        ["env_kind (measured)", verdict(honest, "env_kind"),
         verdict(env_lie, "env_kind"), "caught"],
        ["single_tenant (measured)", verdict(honest, "single_tenant"),
         verdict(env_lie, "single_tenant"), "caught"],
        ["amount (NOT measured)", verdict(honest, "amount"),
         verdict(amount_lie, "amount"), "NOT caught"],
        ["replication (NOT measured)", verdict(honest, "replication"),
         verdict(replication_lie, "replication"), "NOT caught"],
    ]
    print_table(
        "E12 — attestation coverage: honest vs lying provider",
        ["property", "honest verdict", "lying verdict", "expected"],
        rows,
    )

    # Shapes: the measured/unmeasured split from §4.
    assert verdict(honest, "env_kind") == "attested"
    assert verdict(env_lie, "env_kind") == "violated"
    assert verdict(env_lie, "single_tenant") == "violated"
    # The blind spot: unmeasured lies verify as "trusted".
    assert verdict(amount_lie, "amount") == "trusted"
    assert verdict(replication_lie, "replication") == "trusted"
    assert honest.ok
    assert not env_lie.ok


def test_e12_detection_rate_over_many_trials(benchmark):
    """Detection is deterministic: 100% for measured lies, 0% for
    unmeasured lies, across environment-mechanism choices."""

    def trial_matrix():
        caught_env = 0
        caught_amount = 0
        trials = 0
        for fake in (EnvKind.CONTAINER, EnvKind.VM, EnvKind.MICRO_VM,
                     EnvKind.UNIKERNEL):
            env_report = run_scenario(dishonest_env={"worker": fake})
            amount_report = run_scenario(lie_amount=True)
            caught_env += int(not env_report.ok)
            caught_amount += int(not amount_report.ok)
            trials += 1
        return trials, caught_env, caught_amount

    trials, caught_env, caught_amount = benchmark(trial_matrix)
    print(f"\nenv-swap lies caught: {caught_env}/{trials};  "
          f"amount lies caught: {caught_amount}/{trials}")
    assert caught_env == trials
    assert caught_amount == 0
