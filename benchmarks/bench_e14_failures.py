"""E14 — §3.4: failure-handling strategies (re-execute vs checkpoint).

A long-running module is killed at varying progress points and recovered
under each user-selectable strategy.  Reported: end-to-end makespan, the
checkpoint overhead paid while healthy, and recovered progress.

Expected shape: rerun's makespan grows with the failure point (all work
lost); checkpoint-restore's stays near the no-failure baseline plus one
interval; the crossover favors checkpointing for anything but very early
failures.  Failure-free runs show checkpointing's overhead as the premium.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

WORK = 100.0  # seconds of compute on 1 CPU core
SPEC = DatacenterSpec(pods=1, racks_per_pod=2)


def long_app():
    app = AppBuilder("long-job")

    @app.task(name="job", work=WORK, state_bytes=64 << 20)
    def job(ctx):
        return "done"

    return app.build()


def run_case(strategy: str, fail_at=None):
    if strategy == "checkpoint":
        definition = {"job": {"resource": {"device": "cpu", "amount": 1},
                              "distributed": {"checkpoint": True,
                                              "checkpoint_interval": 0.1}}}
    else:
        definition = {"job": {"resource": {"device": "cpu", "amount": 1},
                              "distributed": {"recovery": strategy}}}
    runtime = UDCRuntime(build_datacenter(SPEC))
    plan = [(fail_at, "fd:job")] if fail_at is not None else None
    result = runtime.run(long_app(), definition, failure_plan=plan)
    return result


def sweep():
    rows = []
    for fail_frac in (None, 0.25, 0.5, 0.9):
        fail_at = None if fail_frac is None else fail_frac * WORK + 1.0
        rerun = run_case("rerun", fail_at)
        ckpt = run_case("checkpoint", fail_at)
        rows.append((
            "none" if fail_frac is None else f"{fail_frac:.0%}",
            rerun.makespan_s,
            ckpt.makespan_s,
            ckpt.objects["job"].record.checkpoint_s,
            ckpt.objects["job"].record.recovered_from_progress,
        ))
    return rows


def test_e14_failure_strategies(benchmark):
    rows = benchmark(sweep)
    print_table(
        f"E14 — recovery strategy vs failure point ({WORK:.0f}s job, "
        f"10% checkpoint interval)",
        ["failure at", "rerun makespan_s", "ckpt makespan_s",
         "ckpt overhead_s", "resumed from"],
        rows,
    )
    by_point = {row[0]: row for row in rows}

    # Failure-free: checkpointing costs a premium, rerun is free.
    assert by_point["none"][2] > by_point["none"][1]
    assert by_point["none"][3] > 0

    # Late failure: checkpointing wins big (rerun loses ~90 s).
    assert by_point["90%"][1] > by_point["90%"][2] + 30
    # Resumed from a late snapshot (checkpoint overhead delays chunk
    # completion slightly, so the last snapshot may be the 80% one).
    assert by_point["90%"][4] >= 0.75

    # Rerun makespan grows with the failure point; checkpoint stays flat.
    rerun_curve = [by_point[k][1] for k in ("25%", "50%", "90%")]
    assert rerun_curve == sorted(rerun_curve)
    ckpt_curve = [by_point[k][2] for k in ("25%", "50%", "90%")]
    assert max(ckpt_curve) - min(ckpt_curve) < 0.3 * WORK


def test_e14_standby_failover_beats_reallocation(benchmark):
    """Task replication (Table 1's A4 row): a hot standby removes the
    re-allocation step on failover."""

    def run():
        with_standby = UDCRuntime(build_datacenter(SPEC)).run(
            long_app(),
            {"job": {"resource": {"device": "cpu", "amount": 1},
                     "distributed": {"replication": 2, "checkpoint": True,
                                     "checkpoint_interval": 0.1}}},
            failure_plan=[(51.0, "fd:job")],
        )
        return with_standby

    result = benchmark(run)
    events = result.telemetry.events_of("failover-standby")
    print(f"\nfailover events: {[e.detail for e in events]}; "
          f"makespan {result.makespan_s:.1f}s")
    assert events, "standby failover did not engage"
    assert result.outputs["job"] == "done"
    # Standby costs money: two compute allocations were billed.
    assert result.row("job").cost > 0
