"""E8 — C5: the cloud DevOps matrix from hell (§1, §2).

Grows a cloud ecosystem year by year (new services, new hardware/software
features) and accumulates development cost under the provider-dictated
model (every service x feature pair integrated) vs UDC's decoupled layers
(one-time infrastructure + per-item cost).

Expected shape: matrix cost grows superlinearly and the decoupled curve —
despite its upfront investment — crosses below it within the first years,
ending several x cheaper over a decade.
"""

import pytest

from repro.economics.devops_matrix import (
    decoupled_cost,
    matrix_cost,
    sweep_growth,
)

from _util import print_table


def test_e8_devops_matrix(benchmark):
    scenario = benchmark(sweep_growth, horizon_years=10)

    print_table(
        "E8 — cumulative development cost (engineer-weeks)",
        ["year", "services", "features", "matrix (provider-dictated)",
         "decoupled (UDC)", "ratio"],
        [
            (y, s, f, m, d, m / d)
            for y, s, f, m, d in zip(
                scenario.years, scenario.services, scenario.features,
                scenario.matrix, scenario.decoupled,
            )
        ],
    )
    print(f"\ncrossover year: {scenario.crossover_year}")

    # Shapes.
    assert 0 <= scenario.crossover_year <= 3
    assert scenario.matrix[-1] / scenario.decoupled[-1] > 3
    # Matrix growth accelerates; decoupled growth is constant per year.
    matrix_deltas = [b - a for a, b in zip(scenario.matrix,
                                           scenario.matrix[1:])]
    assert all(later >= earlier for earlier, later
               in zip(matrix_deltas, matrix_deltas[1:]))
    decoupled_deltas = {
        round(b - a, 6)
        for a, b in zip(scenario.decoupled, scenario.decoupled[1:])
    }
    assert len(decoupled_deltas) == 1


def test_e8_marginal_feature_cost(benchmark):
    """The per-change view: what one new feature costs to ship at a given
    ecosystem size — the exact pain §1 describes."""

    def marginal():
        rows = []
        for services in (10, 25, 50, 100):
            matrix_marginal = matrix_cost(services, 11) - matrix_cost(services, 10)
            udc_marginal = decoupled_cost(services, 11) - decoupled_cost(services, 10)
            rows.append((services, matrix_marginal, udc_marginal,
                         matrix_marginal / udc_marginal))
        return rows

    rows = benchmark(marginal)
    print_table(
        "E8 — cost of shipping ONE new feature",
        ["existing services", "matrix", "decoupled", "ratio"],
        rows,
    )
    # Matrix marginal cost grows with the service count; UDC's does not.
    matrix_costs = [r[1] for r in rows]
    assert matrix_costs == sorted(matrix_costs)
    assert len({r[2] for r in rows}) == 1
    assert rows[-1][3] > rows[0][3]
