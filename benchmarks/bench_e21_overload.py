"""E21 — overload: the admission queue under sustained excess demand.

The fine-grained pay-per-use model only works if the control plane
degrades gracefully when demand exceeds capacity: arrivals must wait for
releases, not crash, and the queue must drain once the burst passes.

A burst of GPU jobs arrives at a small datacenter that can run only two
at a time.  Expected shape: all jobs eventually complete in arrival
order; queue waits grow roughly linearly with queue position (the
classic single-server backlog ramp); a genuinely oversized job reports
``unplaceable`` without disturbing the rest.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

#: 4 GPU boards of 8 = 32 GPUs; each job wants 16 -> 2 concurrent jobs
SPEC = DatacenterSpec(
    pods=1, racks_per_pod=2,
    devices_per_rack={DeviceType.CPU: 2, DeviceType.GPU: 2,
                      DeviceType.DRAM: 1, DeviceType.SSD: 1},
)
N_JOBS = 8
JOB_SECONDS = 30.0


def gpu_job(name):
    app = AppBuilder(name)

    @app.task(name="train", work=JOB_SECONDS * 40.0 * 16,
              devices={DeviceType.GPU})
    def train(ctx):
        return name

    return app.build(), {"train": {"resource": {"device": "gpu",
                                                "amount": 16}}}


def run_burst():
    runtime = UDCRuntime(build_datacenter(SPEC))
    submissions = []
    for index in range(N_JOBS):
        dag, spec = gpu_job(f"job{index}")
        submissions.append(
            runtime.submit(dag, spec, tenant=f"t{index}", queue_if_full=True)
        )
    results = runtime.drain()
    return runtime, submissions, results


def test_e21_overload(benchmark):
    runtime, submissions, results = benchmark(run_burst)

    rows = [
        (index, submission.status, submission.queue_wait_s,
         submission.submitted_at,
         submission.finished_at - submission.submitted_at)
        for index, submission in enumerate(submissions)
    ]
    print_table(
        f"E21 — {N_JOBS} x 16-GPU jobs hitting a 32-GPU datacenter",
        ["job", "status", "queue wait_s", "started_s", "ran_s"],
        rows,
    )

    # All complete, in arrival order.
    assert all(s.status == "done" for s in submissions)
    starts = [s.submitted_at for s in submissions]
    assert starts == sorted(starts)
    # Two ran immediately; the rest queued.
    immediate = [s for s in submissions if s.queue_wait_s == 0]
    assert len(immediate) == 2
    # Backlog ramp: each queued wave waits ~one job-length more.
    waits = [s.queue_wait_s for s in submissions]
    for wave in range(1, N_JOBS // 2):
        expected = wave * JOB_SECONDS
        for submission in submissions[2 * wave:2 * wave + 2]:
            assert submission.queue_wait_s == pytest.approx(expected, rel=0.1)
    # No capacity leaked across the burst.
    assert runtime.datacenter.pool(DeviceType.GPU).total_used == 0.0


def test_e21_oversized_job_does_not_wedge_queue(benchmark):
    def run():
        runtime = UDCRuntime(build_datacenter(SPEC))
        too_big_dag, too_big_spec = gpu_job("gigantic")
        too_big_spec["train"]["resource"]["amount"] = 64  # > 32 total
        giant = runtime.submit(too_big_dag, too_big_spec, tenant="giant",
                               queue_if_full=True)
        normal_dag, normal_spec = gpu_job("normal")
        normal = runtime.submit(normal_dag, normal_spec, tenant="normal",
                                queue_if_full=True)
        runtime.drain()
        return giant, normal

    giant, normal = benchmark(run)
    print(f"\ngiant: {giant.status}; normal: {normal.status} "
          f"(wait {normal.queue_wait_s:.1f}s)")
    assert giant.status == "unplaceable"
    assert normal.status == "done"
