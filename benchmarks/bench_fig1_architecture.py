"""F1 — Figure 1: who defines/manages each layer, per cloud scheme.

Figure 1 contrasts four schemes (local datacenter, IaaS/CaaS, FaaS, UDC)
by which layers the *user* defines vs the *provider*.  This bench
regenerates the figure as a table and backs each UDC cell with an
executable check: the cell is only printed "user-defined" if this
repository's runtime actually accepts a user definition at that layer.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

LAYERS = [
    "application",
    "system software (exec env)",
    "hardware resources",
    "distributed semantics",
    "management burden",
]

#: Figure 1's qualitative matrix.  U = user-defined & user-managed,
#: P = provider-defined, U/P = user-defined but provider-managed.
FIGURE1 = {
    "local datacenter": ["U", "U", "U", "U", "user (high)"],
    "IaaS / CaaS":      ["U", "U", "P (instance menu)", "P", "user (high)"],
    "FaaS":             ["U", "P", "P", "P", "provider (low)"],
    "UDC":              ["U", "U/P", "U/P", "U/P", "provider (low)"],
}


def _udc_accepts_all_three_aspects() -> bool:
    """Executable backing for UDC's row: one run where the user defines
    every layer and the provider fulfills each."""
    app = AppBuilder("fig1-probe")

    @app.task(name="t", work=1.0)
    def t(ctx):
        return 1

    store = app.data("d", size_gb=1)
    app.writes("t", store)
    runtime = UDCRuntime(build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)))
    result = runtime.run(app.build(), {
        "t": {
            "resource": {"device": "cpu", "amount": 2},          # hardware
            "execenv": {"env": "micro-vm"},                      # system sw
            "distributed": {"checkpoint": True},                 # distsem
        },
        "d": {"distributed": {"replication": 2}},
    })
    return (
        result.row("t").device == "cpu"
        and result.row("t").env == "micro-vm"
        and result.objects["t"].record.checkpoints_taken >= 0
        and result.row("d").replication == 2
    )


def test_fig1_architecture_matrix(benchmark):
    fulfilled = benchmark(_udc_accepts_all_three_aspects)
    assert fulfilled, "UDC row is not backed by the implementation"

    rows = [[scheme] + cells for scheme, cells in FIGURE1.items()]
    print_table("Figure 1 — layer control per cloud scheme",
                ["scheme"] + LAYERS, rows)

    # Shape: UDC is the only scheme with user-defined + provider-managed
    # cells at every infrastructure layer.
    udc = FIGURE1["UDC"]
    assert udc[1] == udc[2] == udc[3] == "U/P"
    assert "provider" in udc[4]
    assert FIGURE1["FaaS"][2].startswith("P")
    assert FIGURE1["IaaS / CaaS"][3] == "P"
