"""Shared helpers for the benchmark harness.

Every bench prints the rows/series it regenerates (run pytest with ``-s``
to see them) and asserts the *shape* of the paper's claim, so the suite
doubles as a regression test on the reproduction.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> str:
    """Render and print a fixed-width table; returns the rendered text."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    return text


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.5f}"
    return str(cell)
