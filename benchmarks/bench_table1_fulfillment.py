"""T1 — Table 1: cell-by-cell fulfillment audit of the user definition.

Runs the medical pipeline under the exact Table-1 definition, then checks
every promised aspect cell against what was actually provided, with the
verification status the paper's §4 predicts: environment/tenancy cells
attested by the hardware root of trust, resource amounts and distributed
cells trusted provider claims.
"""

import pytest

from repro.core.runtime import UDCRuntime
from repro.core.verify import verify_run
from repro.execenv.attestation import Verifier
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.workloads.medical import build_medical_app

from _util import print_table

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def run_and_verify():
    dag, definition = build_medical_app()
    runtime = UDCRuntime(build_datacenter(SPEC))
    result = runtime.run(dag, definition, tenant="hospital")
    report = verify_run(result.objects, result.records,
                        Verifier(runtime.root_of_trust))
    return result, report


def test_table1_fulfillment(benchmark):
    result, report = benchmark(run_and_verify)

    print_table(
        "Table 1 — fulfillment audit",
        ["module", "property", "promised", "provided", "status"],
        [[c.module, c.prop, c.promised, c.provided, c.status]
         for c in report.checks],
    )
    attested = len(report.attested)
    trusted = len(report.trusted)
    print(f"\nchecks: {len(report.checks)}  attested: {attested}  "
          f"trusted: {trusted}  violated: {len(report.violated)}")

    # Shape: everything fulfilled; the attested/trusted split matches §4.
    assert report.ok
    assert attested > 0, "TEE cells must be hardware-attested"
    assert trusted > 0, "replication/amount cells are trusted claims"
    statuses = {(c.module, c.prop): c.status for c in report.checks}
    assert statuses[("A4", "env_kind")] == "attested"
    assert statuses[("A4", "single_tenant")] == "attested"
    assert statuses[("S1", "replication")] == "trusted"
    assert statuses[("A2", "amount")] == "trusted"  # amounts unattestable
