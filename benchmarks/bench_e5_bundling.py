"""E5 — C7: secure-env cold starts vs vertical bundling (Principle 3, §3.3).

A chain of N fine-grained modules, each demanding a strong (attestable)
environment.  §3.3's worry: *"(cold) starting many environments for many
modules can significantly slow down the entire application."*  Principle
3's answer: pre-assembled resource units in a warm pool.

Reported: makespan and aggregate startup time with bundling off/on, across
chain lengths.  Expected shape: cold startup grows linearly with N and
dominates the makespan; bundling removes most of it.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table


def chain_app(n_modules: int):
    app = AppBuilder(f"chain-{n_modules}")
    previous = None
    for index in range(n_modules):
        @app.task(name=f"m{index}", work=1.0)
        def module(ctx):
            return None

        if previous is not None:
            app.flows(previous, f"m{index}", bytes_=1 << 16)
        previous = f"m{index}"
    return app.build()


def run_chain(n_modules: int, bundling: bool):
    dag = chain_app(n_modules)
    definition = {
        f"m{i}": {"execenv": {"env": "sgx-enclave"}}
        for i in range(n_modules)
    }
    runtime = UDCRuntime(
        build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4)),
        warm_pool=WarmPool(enabled=bundling, target_depth=n_modules),
        prewarm=bundling,
    )
    return runtime.run(dag, definition)


def sweep():
    rows = []
    for n in (2, 4, 8, 16):
        cold = run_chain(n, bundling=False)
        warm = run_chain(n, bundling=True)
        rows.append((
            n,
            cold.makespan_s, cold.total_startup_s,
            warm.makespan_s, warm.total_startup_s,
            cold.makespan_s / warm.makespan_s,
        ))
    return rows


def test_e5_bundling(benchmark):
    rows = benchmark(sweep)
    print_table(
        "E5 — secure cold starts vs vertically-bundled warm units",
        ["modules", "cold makespan_s", "cold startup_s",
         "warm makespan_s", "warm startup_s", "speedup (x)"],
        rows,
    )

    for n, cold_mk, cold_start, warm_mk, warm_start, speedup in rows:
        # Cold startup ~ n x 2 s (SGX cold start), warm ~ n x 0.05 s.
        assert cold_start == pytest.approx(n * 2.0, rel=0.05)
        assert warm_start == pytest.approx(n * 0.05, rel=0.05)
        assert speedup > 2.0
    # Startup share of cold makespan grows with chain depth: the paper's
    # "significantly slow down the entire application".
    first = rows[0]
    last = rows[-1]
    assert last[2] / last[1] >= first[2] / first[1] * 0.9
    # Warm-pool hit accounting adds up.
    warm = run_chain(8, bundling=True)
    assert warm.warm_hits == 8 and warm.warm_misses == 0
