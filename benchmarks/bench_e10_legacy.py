"""E10 — C11: semi-automated legacy-program partitioning (§4).

Synthetic call graphs with planted module structure (dense intra-module
call/data-flow, sparse cross-module) are cut by the KL-based partitioner,
with and without developer hints, against random assignment and the
theoretical floor (the planted cut).

Expected shape: partitioner cut-fraction close to the planted cut and far
below random; hints never split; quality degrades gracefully as the
planted structure blurs.
"""

import random

import networkx as nx
import pytest

from repro.appmodel.legacy import (
    cut_weight,
    partition_program,
    random_partition,
)

from _util import print_table


def planted_graph(modules=4, functions=12, blur=0.0, seed=3):
    """Dense planted clusters; ``blur`` in [0,1] raises cross-cluster
    weights toward intra-cluster weights."""
    rng = random.Random(seed)
    graph = nx.Graph()
    internal, external = 10.0, 1.0 + blur * 8.0
    clusters = []
    for c in range(modules):
        nodes = [f"m{c}f{i}" for i in range(functions)]
        clusters.append(nodes)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if rng.random() < 0.6:
                    graph.add_edge(u, v, weight=internal * rng.uniform(0.5, 1.5))
    for c in range(modules):
        for _ in range(3):
            u = rng.choice(clusters[c])
            v = rng.choice(clusters[(c + 1) % modules])
            graph.add_edge(u, v, weight=external * rng.uniform(0.5, 1.5))
    planted = [set(nodes) for nodes in clusters]
    return graph, planted


def run_partitions(blur=0.0):
    graph, planted = planted_graph(blur=blur)
    kl = partition_program(graph, 4)
    rnd = random_partition(graph, 4, seed=1)
    floor = cut_weight(graph, planted) / max(
        sum(d.get("weight", 1.0) for _u, _v, d in graph.edges(data=True)), 1e-9
    )
    return kl, rnd, floor


def test_e10_legacy_partitioning(benchmark):
    kl, rnd, floor = benchmark(run_partitions)

    rows = []
    for blur in (0.0, 0.3, 0.6, 1.0):
        kl_b, rnd_b, floor_b = run_partitions(blur=blur)
        rows.append((blur, floor_b, kl_b.cut_fraction, rnd_b.cut_fraction))
    print_table(
        "E10 — cross-segment dependency fraction (lower is better)",
        ["structure blur", "planted floor", "KL partitioner", "random"],
        rows,
    )

    # Shapes.
    assert kl.cut_fraction < rnd.cut_fraction / 3
    assert kl.cut_fraction <= floor * 1.5 + 0.02  # near the planted cut
    for _blur, floor_b, kl_frac, rnd_frac in rows:
        assert kl_frac < rnd_frac


def test_e10_hints_respected(benchmark):
    """Developer hints ('these functions belong to one semantic module')
    are hard constraints."""

    def run():
        graph, planted = planted_graph(seed=8)
        # Hint spans two planted clusters: the developer knows better.
        hint = {next(iter(planted[0])), next(iter(planted[1]))}
        report = partition_program(graph, 4, developer_hints=[hint])
        return report, hint

    report, hint = benchmark(run)
    nodes = list(hint)
    assert report.segment_of(nodes[0]) == report.segment_of(nodes[1])
    print(f"\nhint {sorted(hint)} kept together in segment "
          f"{report.segment_of(nodes[0])} "
          f"(cut fraction {report.cut_fraction:.3f})")
