"""E22 — user-defined resilience policies under gray failures.

Six parallel workers read a shared dataset while a deterministic fault
schedule plays out: one worker's device becomes an 8x straggler, a fabric
partition stalls cross-rack transfers, and one worker crashes (with
repair).  The same application runs under five policy configurations —
no policy, retry-only, hedge-only, deadline-only, and all three — and the
table compares makespan, tail (slowest worker's wall time), cost, and the
policy counters.

Expected shape: crash-stop alone is absorbed by every config (the
provider's default recovery loop), but the *gray* straggler is only
absorbed by hedging — the speculative duplicate on a healthy device cuts
the tail by several multiples at a quantified cost premium.  A deadline
without a hedge converts the straggler into an SLO violation (the worker
is abandoned); retry alone never fires on a straggler because nothing
crashes.  The whole schedule is seeded: the same seed yields a
byte-identical JSON summary, which the determinism assertion checks.
"""

import json

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.simulator.rng import RngRegistry

from _util import print_table

WORK = 30.0          # seconds of compute per worker on 1 CPU core
N_WORKERS = 6
SLOW_FACTOR = 8.0
DEADLINE_S = 90.0    # comfortably above 1x work, far below 8x work
SPEC = DatacenterSpec(pods=1, racks_per_pod=4)

POLICIES = {
    "baseline": {},
    "retry": {"retry": {"max_attempts": 4, "base_backoff_s": 0.2}},
    "hedge": {"hedge": {"latency_factor": 1.5}},
    "deadline": {"deadline_s": DEADLINE_S},
    "full": {"retry": {"max_attempts": 4, "base_backoff_s": 0.2},
             "hedge": {"latency_factor": 1.5},
             "deadline_s": DEADLINE_S},
}


def worker_app():
    app = AppBuilder("e22")
    dataset = app.data("ds", size_gb=1.0)
    for index in range(N_WORKERS):
        # max_parallelism=1 keeps the wall time at WORK regardless of the
        # over-allocation below.
        @app.task(name=f"w{index}", work=WORK, max_parallelism=1)
        def work(ctx, _i=index):
            return f"w{_i}"

        app.reads(f"w{index}", dataset, bytes_per_run=4 << 20)
    return app.build()


def definition_for(policy: dict) -> dict:
    # amount=17 of a 32-core device: over half, so best-fit cannot pack
    # two workers onto one device — each worker (and each hedge) gets a
    # device of its own, and the straggler fault hits exactly one worker.
    spec = {}
    for index in range(N_WORKERS):
        spec[f"w{index}"] = {
            "resource": {"device": "cpu", "amount": 17},
            "distributed": dict(policy),
        }
    return spec


def run_config(name: str, seed: int = 0):
    """One seeded run under POLICIES[name] and the shared fault schedule."""
    runtime = UDCRuntime(build_datacenter(SPEC), rng=RngRegistry(seed))
    submission = runtime.submit(worker_app(), definition_for(POLICIES[name]))
    # The deterministic chaos schedule (mirrors `udc chaos --faults`):
    runtime.injector.slow_at(2.0, "fd:w3", factor=SLOW_FACTOR)
    runtime.injector.partition_at(1.0, Location(0, 0), Location(0, 1),
                                  duration_s=40.0, stall_s=5.0)
    runtime.injector.fail_at(5.0, "fd:w1", repair_after=2.0)
    runtime.drain()
    return submission.result


def summarize(result):
    tail = max(row.wall_s for row in result.rows if row.kind == "task")
    return {
        "makespan_s": result.makespan_s,
        "tail_s": tail,
        "cost": result.total_cost,
        # the straggler's bill vs an unaffected worker's: the hedge
        # premium shows up as w3 paying for two overlapping allocations
        "straggler_cost": result.row("w3").cost,
        "healthy_cost": result.row("w0").cost,
        "completed": len(result.outputs),
        "retries": result.total_retries,
        "hedges": result.total_hedges,
        "slo_miss": result.slo_violations,
    }


def sweep():
    return {name: summarize(run_config(name)) for name in POLICIES}


def test_e22_resilience_policies(benchmark):
    stats = benchmark(sweep)
    print_table(
        f"E22 — resilience policies vs gray faults ({N_WORKERS} workers, "
        f"{SLOW_FACTOR:g}x straggler + partition + crash)",
        ["config", "makespan_s", "tail_s", "cost_$", "w3_cost_$", "done",
         "retries", "hedges", "slo_miss"],
        [(name, s["makespan_s"], s["tail_s"], s["cost"], s["straggler_cost"],
          s["completed"], s["retries"], s["hedges"], s["slo_miss"])
         for name, s in stats.items()],
    )
    base, hedge = stats["baseline"], stats["hedge"]
    deadline, full = stats["deadline"], stats["full"]

    # Everyone survives the crash (default recovery), so completion only
    # differs where a deadline abandons the straggler.
    assert base["completed"] == N_WORKERS
    assert base["slo_miss"] == 0

    # Hedging absorbs the straggler: the duplicate on a healthy device
    # cuts the tail by multiples...
    assert hedge["hedges"] >= 1
    assert hedge["tail_s"] < 0.6 * base["tail_s"]
    assert hedge["completed"] == N_WORKERS
    # ...at a quantified per-module premium: the straggler pays for two
    # overlapping allocations (primary until cancellation + the hedge),
    # so its bill exceeds an unaffected worker's.
    assert hedge["straggler_cost"] > 1.3 * hedge["healthy_cost"]
    # End to end, hedging is still CHEAPER than the baseline: cancelling
    # the straggler stops its meter ~6x earlier, which more than pays for
    # the duplicate.  Pay-per-use billing makes speculation nearly free.
    assert hedge["cost"] < base["cost"]

    # A deadline without a hedge turns the straggler into an SLO miss.
    assert deadline["slo_miss"] == 1
    assert deadline["completed"] == N_WORKERS - 1
    assert deadline["makespan_s"] < base["makespan_s"]

    # All three policies together: everything completes, nothing misses
    # its SLO, and the tail matches the hedge-only win.
    assert full["completed"] == N_WORKERS
    assert full["slo_miss"] == 0
    assert full["tail_s"] < 0.6 * base["tail_s"]

    # Retry alone cannot absorb a gray failure — nothing crashes on the
    # straggler's device, so its tail stays within noise of the baseline.
    assert stats["retry"]["tail_s"] > 0.9 * base["tail_s"]


def test_e22_deterministic_given_seed():
    """Same seed -> byte-identical run summary; different seed diverges
    somewhere in the retry jitter (backoff timing), not necessarily in
    the aggregate counters."""
    first = json.dumps(run_config("full", seed=7).to_json_dict(),
                       sort_keys=True)
    second = json.dumps(run_config("full", seed=7).to_json_dict(),
                        sort_keys=True)
    assert first == second
