"""E16 — §3.2 ablation: telemetry-driven fine tuning.

*"Since user specified resources may be inaccurate ... UDC would perform
fine tuning (enlarging or shrinking the amount of resources for a module
...) based on telemetry data collected at the run time."*

A tenant over-declares compute for tasks whose real parallelism caps out
far lower (the classic 8-cores-for-a-2-thread-job mistake).  The same app
runs with the tuner on and off.

Expected shape: identical makespan (the extra cores were idle anyway),
but the tuner returns the stranded units to the pool mid-run — lower
tenant cost and lower pool occupancy.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)
STAGES = 4


def overdeclared_app():
    app = AppBuilder("overdeclared")
    previous = None
    for index in range(STAGES):
        @app.task(name=f"svc{index}", work=30.0, max_parallelism=2)
        def svc(ctx):
            return None

        if previous:
            app.flows(previous, f"svc{index}", bytes_=1 << 16)
        previous = f"svc{index}"
    return app.build()


#: the IT team declares 8 cores per service; real parallelism is 2.
DEFINITION = {
    f"svc{i}": {"resource": {"device": "cpu", "amount": 8},
                "distributed": {"checkpoint": True,
                                "checkpoint_interval": 0.2}}
    for i in range(STAGES)
}


def run_once(tuning: bool):
    runtime = UDCRuntime(build_datacenter(SPEC), tuning=tuning)
    result = runtime.run(overdeclared_app(), DEFINITION)
    return runtime, result


def test_e16_tuning_ablation(benchmark):
    def both():
        return run_once(False), run_once(True)

    (rt_off, off), (rt_on, on) = benchmark(both)

    rows = [
        ["tuning off", off.makespan_s, off.total_cost,
         0, 0.0],
        ["tuning on", on.makespan_s, on.total_cost,
         len([a for a in rt_on.tuner.actions if a.kind == "shrink"]),
         rt_on.tuner.total_units_saved()],
    ]
    print_table(
        f"E16 — {STAGES} services declared at 8 cores, real parallelism 2",
        ["mode", "makespan_s", "tenant cost_$", "shrinks", "core-units freed"],
        rows,
    )

    # Shapes.
    assert on.makespan_s == pytest.approx(off.makespan_s, rel=0.01), \
        "shrinking idle cores must not slow the job"
    assert on.total_cost < off.total_cost * 0.75
    assert rt_on.tuner.total_units_saved() == pytest.approx(6.0 * STAGES)
    assert not rt_off.tuner.actions


def test_e16_tuner_grows_underdeclared(benchmark):
    """The other direction: a task pinned at 100% utilization grows
    toward its declared ceiling when the device has headroom."""

    def run():
        app = AppBuilder("under")

        @app.task(name="hot", work=60.0)
        def hot(ctx):
            return None

        runtime = UDCRuntime(build_datacenter(SPEC))
        runtime.submit(
            app.build(),
            {"hot": {"resource": {"device": "cpu", "amount": 2},
                     "distributed": {"checkpoint": True,
                                     "checkpoint_interval": 0.2}}},
        )
        runtime.drain()
        return runtime

    runtime = benchmark(run)
    grows = [a for a in runtime.tuner.actions if a.kind == "grow"]
    # A fully-utilized allocation at its declared amount does not grow
    # (ceiling reached): assert the tuner respected the declaration.
    assert not grows
    print("\ntuner respected the declared ceiling (no unauthorized growth)")
