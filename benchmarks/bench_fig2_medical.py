"""F2 — Figure 2: the medical-information-processing application end to end.

Runs the full hospital pipeline (A1–A4 diagnosis path, B1–B2 analytics
path, S1–S4 data modules) under the exact Table-1 definition and prints
the per-module execution report.
"""

import pytest

from repro.core.runtime import UDCRuntime
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.workloads.medical import build_medical_app

from _util import print_table

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)
INPUTS = {
    "A1": {"pixels": list(range(256)), "patient": "p-fig2"},
    "A3": {"patient": "p-fig2"},
    "B1": {"consented": True},
}


def run_pipeline():
    dag, definition = build_medical_app()
    runtime = UDCRuntime(
        build_datacenter(SPEC), warm_pool=WarmPool(enabled=True), prewarm=True
    )
    return runtime.run(dag, definition, tenant="hospital", inputs=INPUTS)


def test_fig2_medical_pipeline(benchmark):
    result = benchmark(run_pipeline)

    print_table(
        "Figure 2 — medical pipeline per-module report",
        ["module", "kind", "device", "env", "1-tenant", "rep",
         "wall_s", "startup_s", "cost_$"],
        [
            [r.name, r.kind, r.device, r.env, "Y" if r.single_tenant else "-",
             r.replication, r.wall_s, r.startup_s, r.cost]
            for r in result.rows
        ],
    )
    print(f"\nmakespan: {result.makespan_s:.3f}s  "
          f"total cost: ${result.total_cost:.4f}  "
          f"diagnosis: {result.outputs['A4']}")

    # Shape: the full pipeline completes, produces a diagnosis and an
    # analytics result, with zero failures.
    assert set(result.outputs) == {"A1", "A2", "A3", "A4", "B1", "B2"}
    assert result.outputs["A4"]["patient"] == "p-fig2"
    assert result.outputs["B2"]["cohort_size"] >= 1
    assert result.total_failures == 0
    assert result.makespan_s > 0
