"""E15 — §2: multi-tenant consolidation on the shared UDC runtime.

The provider-side half of the economics argument: *"without resource
wastes, providers could potentially consolidate more applications to the
same amount of computing resources and shutting down the remaining ones."*

N tenants submit the same mixed application concurrently.  Compared:

* **dedicated** — each tenant gets their own datacenter (today's
  capacity-planning-per-customer);
* **consolidated** — all tenants share one datacenter of the same size,
  contending through the scheduler.

Expected shape: consolidated peak pool usage ≈ dedicated single-tenant
usage × N, but against 1× the hardware instead of N× — so the provider
powers a fraction of the devices; tenant makespans stay close to solo.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

TENANTS = 6
SPEC = DatacenterSpec(pods=2, racks_per_pod=4)


def tenant_app(tag: str):
    app = AppBuilder(f"app-{tag}")

    @app.task(name="web", work=5.0)
    def web(ctx):
        return None

    @app.task(name="batch", work=20.0)
    def batch(ctx):
        return None

    store = app.data("state", size_gb=8)
    app.flows("web", "batch", bytes_=1 << 20)
    app.writes("batch", store, bytes_per_run=1 << 20)
    return app.build()


DEFINITION = {
    "web": {"resource": {"device": "cpu", "amount": 2, "mem_gb": 8}},
    "batch": {"resource": {"device": "cpu", "amount": 4, "mem_gb": 16}},
    "state": {"resource": "ssd", "distributed": {"replication": 2}},
}


def devices_in_use(datacenter) -> int:
    return sum(1 for d in datacenter.devices if d.allocations)


def run_consolidated():
    runtime = UDCRuntime(build_datacenter(SPEC))
    for index in range(TENANTS):
        runtime.submit(tenant_app(str(index)), DEFINITION,
                       tenant=f"tenant-{index}")
    peak_devices = devices_in_use(runtime.datacenter)
    peak_cpu = runtime.datacenter.pool(DeviceType.CPU).total_used
    results = runtime.drain()
    return results, peak_devices, peak_cpu


def run_dedicated():
    makespans, devices, cpu_used = [], 0, 0.0
    for index in range(TENANTS):
        runtime = UDCRuntime(build_datacenter(SPEC))
        runtime.submit(tenant_app(str(index)), DEFINITION,
                       tenant=f"tenant-{index}")
        devices += devices_in_use(runtime.datacenter)
        cpu_used += runtime.datacenter.pool(DeviceType.CPU).total_used
        results = runtime.drain()
        makespans.append(results[0].makespan_s)
    return makespans, devices, cpu_used


def test_e15_consolidation(benchmark):
    (consolidated, peak_devices, peak_cpu) = benchmark(run_consolidated)
    dedicated_makespans, dedicated_devices, dedicated_cpu = run_dedicated()

    total_devices = len(build_datacenter(SPEC).devices)
    rows = [
        ["dedicated (one DC per tenant)",
         TENANTS * total_devices, dedicated_devices, dedicated_cpu,
         max(dedicated_makespans)],
        ["consolidated (shared DC)",
         total_devices, peak_devices, peak_cpu,
         max(r.makespan_s for r in consolidated)],
    ]
    print_table(
        f"E15 — {TENANTS} tenants: dedicated vs consolidated",
        ["deployment", "devices provisioned", "devices active",
         "cpu units in use", "worst makespan_s"],
        rows,
    )
    provisioned_saving = 1 - total_devices / (TENANTS * total_devices)
    print(f"\nprovider hardware provisioned: -{provisioned_saving:.0%} "
          f"under consolidation")

    # Shapes.
    assert len(consolidated) == TENANTS
    assert all(r.total_failures == 0 for r in consolidated)
    # Same aggregate demand served by 1/N of the provisioned hardware.
    assert peak_cpu == pytest.approx(dedicated_cpu, rel=0.01)
    # Tenants barely notice each other (pools have headroom).
    solo = max(dedicated_makespans)
    worst = max(r.makespan_s for r in consolidated)
    assert worst <= solo * 1.25
    # Active devices shared, not duplicated per tenant.
    assert peak_devices < dedicated_devices


def test_e15_per_tenant_cost_unchanged(benchmark):
    """Pay-per-use: consolidation changes the provider's costs, not the
    tenant's bill."""

    def both():
        shared = UDCRuntime(build_datacenter(SPEC))
        for index in range(3):
            shared.submit(tenant_app(str(index)), DEFINITION,
                          tenant=f"t{index}")
        shared_costs = [r.total_cost for r in shared.drain()]
        solo_runtime = UDCRuntime(build_datacenter(SPEC))
        solo_cost = solo_runtime.run(tenant_app("solo"), DEFINITION).total_cost
        return shared_costs, solo_cost

    shared_costs, solo_cost = benchmark(both)
    print(f"\nshared-tenancy bills: {[round(c, 6) for c in shared_costs]} "
          f"vs solo {solo_cost:.6f}")
    for cost in shared_costs:
        assert cost == pytest.approx(solo_cost, rel=0.05)
