"""E6 — C8: locality hints guide compute/data placement (§3.1, §3.2).

A data-hungry pipeline (each stage reads a large data module) placed with
the locality-aware scheduler vs with locality scoring disabled.  Reported:
cross-rack bytes on the fabric and pipeline makespan.

Expected shape: locality placement moves far fewer bytes across racks and
finishes faster; co-located stages (the paper's A1~A2 example) exchange
their intermediate data rack-locally.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

MB = 1 << 20
#: many racks so that a locality-oblivious placement is usually remote
SPEC = DatacenterSpec(pods=2, racks_per_pod=4)


def data_heavy_app():
    app = AppBuilder("locality")

    @app.task(name="extract", work=2.0)
    def extract(ctx):
        return None

    @app.task(name="transform", work=2.0)
    def transform(ctx):
        return None

    dataset = app.data("dataset", size_gb=40.0, hot=False)
    staging = app.data("staging", size_gb=10.0, hot=False)
    app.reads("extract", dataset, bytes_per_run=512 * MB)
    app.writes("extract", staging, bytes_per_run=256 * MB)
    app.reads("transform", staging, bytes_per_run=256 * MB)
    return app.build()


DEFINITION = {
    "dataset": {"resource": "ssd"},
    "staging": {"resource": "ssd"},
}


def run_once(use_locality: bool):
    runtime = UDCRuntime(build_datacenter(SPEC), use_locality=use_locality)
    result = runtime.run(data_heavy_app(), DEFINITION)
    stats = runtime.datacenter.fabric.stats
    return result, stats


def compare():
    with_locality, stats_local = run_once(True)
    without, stats_remote = run_once(False)
    return [
        ("locality-aware", with_locality.makespan_s,
         stats_local.bytes_cross_rack / MB, stats_local.bytes_total / MB),
        ("locality-oblivious", without.makespan_s,
         stats_remote.bytes_cross_rack / MB, stats_remote.bytes_total / MB),
    ]


def test_e6_locality(benchmark):
    rows = benchmark(compare)
    print_table(
        "E6 — locality-aware vs oblivious placement",
        ["scheduler", "makespan_s", "cross-rack MB", "total MB"],
        rows,
    )
    aware, oblivious = rows
    assert aware[2] < oblivious[2], "locality must cut cross-rack traffic"
    assert aware[1] <= oblivious[1] * 1.001


def test_e6_colocation_keeps_exchange_local(benchmark):
    """The paper's A1~A2 example: co-located stages exchange data with
    zero fabric hops (same device)."""

    def run():
        app = AppBuilder("coloc")

        @app.task(name="a1", work=1.0, output_bytes=64 * MB)
        def a1(ctx):
            return None

        @app.task(name="a2", work=1.0)
        def a2(ctx):
            return None

        app.flows("a1", "a2", bytes_=64 * MB)
        app.colocate("a1", "a2")
        runtime = UDCRuntime(build_datacenter(SPEC))
        result = runtime.run(app.build(), None)
        return result, runtime.datacenter.fabric.stats

    result, stats = benchmark(run)
    print(f"\nco-located exchange: {stats.by_hop} "
          f"(64 MB stage transfer never crosses a rack)")
    assert stats.bytes_cross_rack == 0
    a1_dev = result.objects["a1"].primary_allocation.device
    a2_dev = result.objects["a2"].primary_allocation.device
    assert a1_dev is a2_dev
