"""E9 — C10: higher unit price, lower total cost (§2, §4).

Feeds the *measured* inputs from this repo's other experiments — the E1
waste fraction and the E2 consolidation gain — into the pricing model and
sweeps the unit-price multiplier, reporting user saving and provider
profit change at each point.

Expected shape: a non-empty win-win window; the paper's qualitative claim
("increase the unit price ... still offers users a lower total cost")
holds for every multiplier inside it.
"""

import pytest

from repro.baselines.iaas import IaasCloud
from repro.economics.pricing import pricing_window
from repro.hardware.catalog import default_catalog
from repro.hardware.server import ServerCluster, ServerSpec
from repro.workloads.generators import heterogeneous_mix, skewed_demands

from _util import print_table


def measured_inputs():
    """Waste from the E1 mix; consolidation gain from the E2 skew point."""
    mix = heterogeneous_mix(400, seed=11)
    cloud = IaasCloud(default_catalog()).provision_all(mix.demands)
    waste = cloud.mean_waste_fraction

    demands = skewed_demands(400, cpu_heavy_fraction=0.1, seed=2).demands
    cluster = ServerCluster(ServerSpec(cpus=32, mem_gb=128))
    cluster.pack(list(demands))
    server_util = cluster.demanded_utilization()
    gain = 0.97 / server_util  # pools pack to ~97% (E2)
    return waste, gain


def test_e9_pricing_window(benchmark):
    waste, gain = benchmark(measured_inputs)
    window = pricing_window(waste_fraction=waste, consolidation_gain=gain)

    rows = []
    for multiplier in (1.0, 1.1, window.provider_breakeven, window.midpoint,
                       window.user_breakeven, 1.8):
        rows.append((
            multiplier,
            window.user_saving_at(multiplier),
            window.provider_profit_gain_at(multiplier),
            "win-win" if (window.user_saving_at(multiplier) > 1e-9
                          and window.provider_profit_gain_at(multiplier) > 1e-9)
            else "-",
        ))
    print_table(
        f"E9 — unit-price multiplier sweep "
        f"(measured waste={waste:.3f}, consolidation={gain:.2f}x)",
        ["multiplier", "user saving", "provider profit delta", "verdict"],
        rows,
    )
    print(f"\nwin-win window: ({window.provider_breakeven:.3f}, "
          f"{window.user_breakeven:.3f}), width {window.width:.3f}")

    # Shapes.
    assert window.exists, "no win-win window at measured parameters"
    assert window.width > 0.2
    mid = window.midpoint
    assert mid > 1.0, "the win-win price is a genuine unit-price INCREASE"
    assert window.user_saving_at(mid) > 0
    assert window.provider_profit_gain_at(mid) > 0
    # Outside the window someone loses.
    assert window.provider_profit_gain_at(window.provider_breakeven - 0.05) < 0
    assert window.user_saving_at(window.user_breakeven + 0.05) < 0


def test_e9_window_sensitivity(benchmark):
    """The window exists across the plausible parameter neighborhood and
    widens with waste and consolidation."""

    def sweep():
        rows = []
        for waste in (0.25, 0.35, 0.45):
            for gain in (1.5, 2.0, 2.5):
                window = pricing_window(waste, gain)
                rows.append((waste, gain, window.provider_breakeven,
                             window.user_breakeven, window.width))
        return rows

    rows = benchmark(sweep)
    print_table(
        "E9 — window sensitivity",
        ["waste", "gain", "provider breakeven", "user breakeven", "width"],
        rows,
    )
    widths = {(w, g): width for w, g, _pb, _ub, width in rows}
    assert all(width > 0 for width in widths.values())
    assert widths[(0.45, 2.5)] > widths[(0.25, 1.5)]
