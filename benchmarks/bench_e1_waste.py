"""E1 — C1/C2: ~35% of IaaS spend pays for unused resources.

Provisions a heterogeneous workload mix against the real 2021 instance
catalog (cheapest covering instance per job) and against UDC's exact
per-unit billing, with and without telemetry-driven tuning.  Also
regenerates §1's 8-GPU case study.

Expected shape: catalog waste in the 30–45% band (Flexera reported ~35%);
UDC-tuned bill ≈ (1 - waste) x IaaS bill.
"""

import pytest

from repro.baselines.iaas import IaasCloud, udc_exact_hourly_cost
from repro.hardware.catalog import default_catalog
from repro.hardware.server import WorkloadDemand
from repro.workloads.generators import heterogeneous_mix

from _util import print_table


def provision(n_jobs=400, seed=11):
    mix = heterogeneous_mix(n_jobs, seed=seed)
    cloud = IaasCloud(default_catalog()).provision_all(mix.demands)
    return mix, cloud


def test_e1_waste(benchmark):
    mix, cloud = benchmark(provision)

    iaas = cloud.total_hourly_cost
    udc_tuned = udc_exact_hourly_cost(mix.demands, tuned=True)
    udc_shape = udc_exact_hourly_cost(mix.demands, tuned=False)
    rows = [
        ["IaaS (cheapest catalog fit)", iaas, "-"],
        ["UDC exact shape (untuned)", udc_shape, 1 - udc_shape / iaas],
        ["UDC tuned to observed usage", udc_tuned, 1 - udc_tuned / iaas],
    ]
    print_table("E1 — hourly bill for the same 400-job mix",
                ["billing model", "$/hour", "saving vs IaaS"], rows)
    print(f"\nspend-weighted waste fraction: {cloud.mean_waste_fraction:.3f} "
          f"(paper cites ~0.35)")

    # The §1 case study.
    study = IaasCloud(default_catalog())
    allocation = study.provision(WorkloadDemand(cpus=4, mem_gb=16, gpus=8,
                                                name="8-gpu-ml"))
    print(f"8-GPU job -> {allocation.instance.name}: pays for "
          f"{allocation.instance.vcpus:.0f} vCPUs, needs 4 "
          f"(waste {allocation.waste_fraction:.1%})")

    # Shapes.
    assert 0.30 <= cloud.mean_waste_fraction <= 0.45
    assert udc_tuned < udc_shape < iaas
    assert allocation.instance.name == "p3.16xlarge"
    assert not cloud.unplaceable


def test_e1_waste_stable_across_seeds(benchmark):
    def across_seeds():
        return [
            provision(n_jobs=300, seed=seed)[1].mean_waste_fraction
            for seed in range(5)
        ]

    wastes = benchmark(across_seeds)
    print(f"\nE1 waste across seeds: {[round(w, 3) for w in wastes]}")
    assert all(0.28 <= w <= 0.48 for w in wastes)
