"""E18 — §3.2: dry-run profiling as a resource-aspect oracle.

The paper's sizing pipeline — developer candidates → dry runs → resource
aspects — against the two naive alternatives a tenant actually has today:
accept provider defaults, or hand-overprovision everything "to be safe".

The same 6-task application runs under all three definitions plus the
latency-targeted autosize.  Expected shape: autosize(cost) matches the
cheapest bill at moderate latency; autosize(latency) meets the deadline
the cheap configs miss; overprovisioning buys little speed for much money
(its parallelism-capped tasks cannot use the extra units).
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.autosize import autosize
from repro.core.runtime import UDCRuntime
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

SPEC = DatacenterSpec(pods=1, racks_per_pod=4)


def analytics_app():
    app = AppBuilder("analytics")
    stages = [
        ("ingest", 6.0, {DeviceType.CPU}, 4),
        ("clean", 10.0, {DeviceType.CPU}, 2),
        ("join", 16.0, {DeviceType.CPU}, 4),
        ("featurize", 20.0, {DeviceType.CPU, DeviceType.GPU}, None),
        ("train", 120.0, {DeviceType.CPU, DeviceType.GPU}, None),
        ("report", 4.0, {DeviceType.CPU}, 1),
    ]
    previous = None
    for name, work, devices, cap in stages:
        @app.task(name=name, work=work, devices=devices, max_parallelism=cap)
        def stage(ctx):
            return None

        if previous:
            app.flows(previous, name, bytes_=4 << 20)
        previous = name
    return app.build()


def overprovisioned_definition(dag):
    return {
        task.name: {
            "resource": {
                "device": ("gpu" if DeviceType.GPU in task.device_candidates
                           else "cpu"),
                "amount": 8,
            }
        }
        for task in dag.tasks
    }


def run_under(definition, tuning=False):
    runtime = UDCRuntime(build_datacenter(SPEC), tuning=tuning)
    result = runtime.run(analytics_app(), definition)
    return result


def sweep():
    dag = analytics_app()
    cases = [
        ("provider defaults", None),
        ("hand-overprovisioned (8 units each)",
         overprovisioned_definition(dag)),
        ("autosize(cost)", autosize(dag, optimize="cost")),
        ("autosize(latency=30s)", autosize(dag, end_to_end_latency_s=30.0)),
    ]
    rows = []
    for label, definition in cases:
        result = run_under(definition)
        rows.append((label, result.makespan_s, result.total_cost))
    return rows


def test_e18_autosize_quality(benchmark):
    rows = benchmark(sweep)
    print_table(
        "E18 — sizing strategies for the same 6-stage analytics app",
        ["definition", "makespan_s", "cost_$"],
        rows,
    )
    by = {row[0]: row for row in rows}

    defaults = by["provider defaults"]
    over = by["hand-overprovisioned (8 units each)"]
    cost_sized = by["autosize(cost)"]
    latency_sized = by["autosize(latency=30s)"]

    # The latency-targeted sizing meets its deadline; cheap configs miss it.
    assert latency_sized[1] <= 30.0 * 1.25  # startup/transfer slack
    assert defaults[1] > 30.0

    # Cost-optimized autosizing is in the same price class as defaults
    # and far below overprovisioning.
    assert cost_sized[2] <= defaults[2] * 1.5
    assert cost_sized[2] < over[2] / 3

    # Overprovisioning wastes: parallelism-capped stages can't use 8 units,
    # so its speedup-per-dollar is terrible vs the latency-sized config.
    over_value = (defaults[1] - over[1]) / max(over[2] - defaults[2], 1e-9)
    sized_value = (defaults[1] - latency_sized[1]) / max(
        latency_sized[2] - defaults[2], 1e-9)
    assert sized_value > over_value


def test_e18_tuner_rescues_overprovisioning(benchmark):
    """Even a badly-sized definition converges: the tuner claws back
    what the profiler would have never allocated."""

    def run():
        dag = analytics_app()
        off = run_under(overprovisioned_definition(dag), tuning=False)
        on = run_under(overprovisioned_definition(dag), tuning=True)
        return off, on

    off, on = benchmark(run)
    print(f"\noverprovisioned: ${off.total_cost:.5f} untuned vs "
          f"${on.total_cost:.5f} tuned "
          f"({1 - on.total_cost / off.total_cost:.0%} reclaimed)")
    assert on.total_cost < off.total_cost
    assert on.makespan_s == pytest.approx(off.makespan_s, rel=0.05)
