"""Perf-scale — the indexed placement hot path vs. the naive reference.

PR 2 rebuilt ``ResourcePool`` allocation around incremental capacity
accounting and a bisect-sorted free index: one placement is
O(log N + k) in fleet size instead of the historical full scan + sort
(with a per-call re-sum of pool totals on top).  This bench drives the
same seeded allocate/release churn through both paths at 100 / 1 000 /
5 000 devices and reports placements/second, asserting:

* **identical decisions** — the two paths place every request on the
  same device, in the same order (the golden-trace property that
  ``tests/test_placement_equivalence.py`` checks on full workloads);
* **super-linear speedup** — the indexed path's advantage *grows* with
  fleet size (the point of an index), and is ≥ 10x at the
  1 000-device × 10 000-placement point;
* **no regression** — when a committed ``BENCH_PERF.json`` baseline
  exists, the current speedup ratio must stay within 2x of it (ratios,
  not absolute rates, so the check is stable across CI hardware).

Run it three ways::

    PYTHONPATH=src python benchmarks/bench_perf_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_perf_scale.py --smoke   # CI
    PYTHONPATH=src python -m pytest benchmarks/bench_perf_scale.py -x -q

Results land in ``BENCH_PERF.json`` at the repo root (see
``docs/performance.md`` for how to read them).
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

import repro.hardware.devices as devices_mod
import repro.hardware.pools as pools_mod
from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceType
from repro.hardware.fabric import Location
from repro.hardware.pools import AllocationError, ResourcePool

try:
    from _util import print_table
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).parent))
    from _util import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PERF.json"

SEED = 2024
TENANTS = 16
RELEASE_FRACTION = 0.35      # churn: roughly a third of ops free capacity
LOCALITY_FRACTION = 0.3      # ops carrying a preferred-location hint
SINGLE_TENANT_FRACTION = 0.02
#: (devices, placements) points for the full run; smoke trims this.
FULL_SCALES = [(100, 10_000), (1_000, 10_000), (5_000, 10_000)]
SMOKE_SCALES = [(100, 2_000), (1_000, 2_000)]
#: the naive path is O(N log N + live-allocs) *per placement*; cap its
#: sample at large N and report rates, or the bench takes tens of minutes.
NAIVE_OP_CAP = 1_500


def build_pool(n_devices: int, indexed: bool) -> ResourcePool:
    """A CPU pool of ``n_devices`` spread over 8-slot racks, 32 racks/pod.

    The global id counters are pinned so the indexed and naive builds get
    identical device ids — placement tie-breaks must see the same fleet.
    """
    devices_mod._device_ids = itertools.count()
    pools_mod._alloc_ids = itertools.count()
    pool = ResourcePool(DeviceType.CPU, indexed=indexed)
    for index in range(n_devices):
        pool.add_device(Device(
            spec=DEFAULT_SPECS[DeviceType.CPU],
            location=Location(
                pod=index // 256, rack=(index // 8) % 32, slot=index % 8
            ),
        ))
    pool.alloc_log = []
    return pool


def generate_ops(n_devices: int, n_placements: int, seed: int = SEED):
    """A deterministic allocate/release script, independent of pool state.

    Amounts are grain multiples (0.25-core steps up to 8 cores) so the
    incremental accounting is exercised on the same binary-exact floats
    the real workloads use.  Releases name a *position* into the caller's
    live-allocation list; both paths replay the identical script.
    """
    rng = random.Random(seed)
    locations = [
        Location(pod=i // 256, rack=(i // 8) % 32, slot=i % 8)
        for i in range(n_devices)
    ]
    ops: List[Tuple] = []
    placements = 0
    while placements < n_placements:
        if ops and rng.random() < RELEASE_FRACTION:
            ops.append(("release", rng.randrange(1 << 30)))
            continue
        amount = 0.25 * rng.randint(1, 32)
        tenant = f"t{rng.randrange(TENANTS)}"
        preferred = (
            rng.choice(locations)
            if rng.random() < LOCALITY_FRACTION else None
        )
        single = rng.random() < SINGLE_TENANT_FRACTION
        ops.append(("alloc", amount, tenant, preferred, single))
        placements += 1
    return ops


def run_ops(pool: ResourcePool, ops) -> Tuple[float, int, List]:
    """Replay ``ops``; returns (elapsed_s, placements_done, trace)."""
    live = []
    placements = 0
    start = time.perf_counter()
    for op in ops:
        if op[0] == "release":
            if live:
                pool.release(live.pop(op[1] % len(live)))
            continue
        _, amount, tenant, preferred, single = op
        try:
            live.append(pool.allocate(
                amount, tenant,
                single_tenant=single, preferred_location=preferred,
            ))
        except AllocationError:
            # Same deterministic overflow on both paths: shed the oldest
            # allocation and move on.
            if live:
                pool.release(live.pop(0))
        placements += 1
    elapsed = time.perf_counter() - start
    return elapsed, placements, list(pool.alloc_log)


def bench_scale(n_devices: int, n_placements: int) -> dict:
    ops = generate_ops(n_devices, n_placements)
    # Naive reference first (its op count may be capped at large N).
    naive_ops = ops if n_devices <= 1_000 else ops[:NAIVE_OP_CAP]
    naive_pool = build_pool(n_devices, indexed=False)
    naive_s, naive_n, naive_trace = run_ops(naive_pool, naive_ops)

    indexed_pool = build_pool(n_devices, indexed=True)
    indexed_s, indexed_n, indexed_trace = run_ops(indexed_pool, ops)
    indexed_pool.check_accounting()

    # Byte-identical decisions over the ops both paths executed.
    assert indexed_trace[:len(naive_trace)] == naive_trace, (
        f"placement divergence at {n_devices} devices"
    )

    naive_rate = naive_n / naive_s
    indexed_rate = indexed_n / indexed_s
    return {
        "devices": n_devices,
        "placements": indexed_n,
        "naive_placements_timed": naive_n,
        "naive_s": round(naive_s, 4),
        "indexed_s": round(indexed_s, 4),
        "naive_rate_per_s": round(naive_rate, 1),
        "indexed_rate_per_s": round(indexed_rate, 1),
        "speedup": round(indexed_rate / naive_rate, 2),
    }


def load_baseline() -> Optional[dict]:
    if RESULT_PATH.exists():
        try:
            return json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            return None
    return None


def check_regression(results: List[dict], baseline: Optional[dict]) -> List[str]:
    """Compare speedup ratios against the committed baseline.

    Ratios (indexed/naive on the same host) are hardware-independent in a
    way absolute rates are not, so CI runners of different vintages share
    one baseline.  A >2x drop fails the perf-smoke job.
    """
    if not baseline:
        return []
    by_devices = {r["devices"]: r for r in baseline.get("scales", [])}
    failures = []
    for row in results:
        ref = by_devices.get(row["devices"])
        if ref is None:
            continue
        if row["speedup"] < ref["speedup"] / 2:
            failures.append(
                f"{row['devices']} devices: speedup {row['speedup']}x is "
                f">2x below committed baseline {ref['speedup']}x"
            )
    return failures


def run(smoke: bool = False, write: bool = True) -> dict:
    scales = SMOKE_SCALES if smoke else FULL_SCALES
    results = [bench_scale(n, m) for n, m in scales]
    print_table(
        "Perf scale: indexed placement vs naive reference",
        ["devices", "placements", "naive/s", "indexed/s", "speedup"],
        [(r["devices"], r["placements"], r["naive_rate_per_s"],
          r["indexed_rate_per_s"], f"{r['speedup']}x") for r in results],
    )

    # Super-linear: the index wins *more* as the fleet grows.
    speedups = {r["devices"]: r["speedup"] for r in results}
    assert speedups[1_000] > speedups[100], (
        f"speedup did not grow with fleet size: {speedups}"
    )
    if not smoke:
        assert speedups[1_000] >= 10, (
            f"expected >=10x at 1k devices, got {speedups[1_000]}x"
        )

    regressions = check_regression(results, load_baseline())
    report = {
        "bench": "bench_perf_scale",
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "scales": results,
        "regressions": regressions,
    }
    if write and not smoke:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH.relative_to(REPO_ROOT)}")
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        raise SystemExit(1)
    return report


# -- pytest entry points ----------------------------------------------------

def test_perf_scale_smoke():
    """Smoke point: identical traces + the speedup grows with fleet size."""
    report = run(smoke=True, write=False)
    assert report["scales"][0]["speedup"] > 1
    assert not report["regressions"]


def test_trace_identical_with_locality_and_gating():
    """Decision equivalence under the adversarial bits: locality hints,
    single-tenant pins, and an admission filter gating half the fleet."""
    ops = generate_ops(64, 800, seed=9)
    traces = []
    for indexed in (True, False):
        pool = build_pool(64, indexed=indexed)
        pool.admission_filter = lambda d: d.seq % 2 == 0
        run_ops(pool, ops)
        traces.append(list(pool.alloc_log))
    assert traces[0] == traces[1]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scales for CI; does not rewrite BENCH_PERF.json",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="run without touching BENCH_PERF.json",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, write=not args.no_write)
