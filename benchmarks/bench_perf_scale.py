"""Perf-scale — indexed placement, the naive reference, and sharded cells.

PR 2 rebuilt ``ResourcePool`` allocation around incremental capacity
accounting and a bisect-sorted free index: one placement is
O(log N + k) in fleet size instead of the historical full scan + sort
(with a per-call re-sum of pool totals on top).  This bench drives the
same seeded allocate/release churn through both paths at 100 / 1 000 /
5 000 devices and reports placements/second, asserting:

* **identical decisions** — the two paths place every request on the
  same device, in the same order (the golden-trace property that
  ``tests/test_placement_equivalence.py`` checks on full workloads);
* **super-linear speedup** — the indexed path's advantage *grows* with
  fleet size (the point of an index), and is ≥ 10x at the
  1 000-device × 10 000-placement point;
* **no regression** — when a committed ``BENCH_PERF.json`` baseline
  exists, the current speedup ratio must stay within 2x of it (ratios,
  not absolute rates, so the check is stable across CI hardware).

The indexed path itself still pays an index-maintenance cost that grows
with fleet size (its own rate *falls* from ~98k/s at 100 devices to
~39k/s at 5k) — which is what the **cells mode** attacks: the fleet is
partitioned into placement cells (``repro.core.cells``), each with its
own pool indexes, fronted by the ``CellRouter``; aggregate placement
rate is measured at several cell counts over a fixed 51 200-device
fleet (asserting ≥ 3x at 8 cells vs 1) plus a scale-out series at a
constant 6 400 devices/cell out to 102 400 devices (asserting
near-flat per-placement cost).

Run it three ways::

    PYTHONPATH=src python benchmarks/bench_perf_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_perf_scale.py --smoke   # CI
    PYTHONPATH=src python -m pytest benchmarks/bench_perf_scale.py -x -q

Results land in ``BENCH_PERF.json`` at the repo root (see
``docs/performance.md`` for how to read them).
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

import repro.hardware.devices as devices_mod
import repro.hardware.pools as pools_mod
from repro.core.cells import CellRouter, partition_datacenter
from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceType
from repro.hardware.fabric import Location
from repro.hardware.pools import AllocationError, ResourcePool
from repro.hardware.topology import DatacenterSpec, build_datacenter

try:
    from _util import print_table
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).parent))
    from _util import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PERF.json"

SEED = 2024
TENANTS = 16
RELEASE_FRACTION = 0.35      # churn: roughly a third of ops free capacity
LOCALITY_FRACTION = 0.3      # ops carrying a preferred-location hint
SINGLE_TENANT_FRACTION = 0.02
#: (devices, placements) points for the full run; smoke trims this.
FULL_SCALES = [(100, 10_000), (1_000, 10_000), (5_000, 10_000)]
SMOKE_SCALES = [(100, 2_000), (1_000, 2_000)]
#: the naive path is O(N log N + live-allocs) *per placement*; cap its
#: sample at large N and report rates, or the bench takes tens of minutes.
NAIVE_OP_CAP = 1_500

#: cells mode, fixed fleet: one 51 200-device fleet at several cell
#: counts — aggregate rate should grow ~linearly with cells.
CELL_FLEET = 51_200
CELL_COUNTS = [1, 2, 4, 8]
CELL_PLACEMENTS = 40_000
#: cells mode, scale-out: constant 6 400 devices/cell — per-placement
#: cost should stay near-flat as the fleet grows 16x.
SCALE_OUT = [(6_400, 1), (12_800, 2), (25_600, 4), (51_200, 8),
             (102_400, 16)]
SCALE_OUT_PLACEMENTS = 20_000
#: smoke variants for CI: small enough to finish in seconds, big enough
#: that index maintenance (not router overhead) dominates.
SMOKE_CELL_FLEET = 12_800
SMOKE_CELL_COUNTS = [1, 4]
SMOKE_CELL_PLACEMENTS = 6_000


def build_pool(n_devices: int, indexed: bool) -> ResourcePool:
    """A CPU pool of ``n_devices`` spread over 8-slot racks, 32 racks/pod.

    The global id counters are pinned so the indexed and naive builds get
    identical device ids — placement tie-breaks must see the same fleet.
    """
    devices_mod._device_ids = itertools.count()
    pools_mod._alloc_ids = itertools.count()
    pool = ResourcePool(DeviceType.CPU, indexed=indexed)
    for index in range(n_devices):
        pool.add_device(Device(
            spec=DEFAULT_SPECS[DeviceType.CPU],
            location=Location(
                pod=index // 256, rack=(index // 8) % 32, slot=index % 8
            ),
        ))
    pool.alloc_log = []
    return pool


def generate_ops(n_devices: int, n_placements: int, seed: int = SEED):
    """A deterministic allocate/release script, independent of pool state.

    Amounts are grain multiples (0.25-core steps up to 8 cores) so the
    incremental accounting is exercised on the same binary-exact floats
    the real workloads use.  Releases name a *position* into the caller's
    live-allocation list; both paths replay the identical script.
    """
    rng = random.Random(seed)
    locations = [
        Location(pod=i // 256, rack=(i // 8) % 32, slot=i % 8)
        for i in range(n_devices)
    ]
    ops: List[Tuple] = []
    placements = 0
    while placements < n_placements:
        if ops and rng.random() < RELEASE_FRACTION:
            ops.append(("release", rng.randrange(1 << 30)))
            continue
        amount = 0.25 * rng.randint(1, 32)
        tenant = f"t{rng.randrange(TENANTS)}"
        preferred = (
            rng.choice(locations)
            if rng.random() < LOCALITY_FRACTION else None
        )
        single = rng.random() < SINGLE_TENANT_FRACTION
        ops.append(("alloc", amount, tenant, preferred, single))
        placements += 1
    return ops


def run_ops(pool: ResourcePool, ops) -> Tuple[float, int, List]:
    """Replay ``ops``; returns (elapsed_s, placements_done, trace)."""
    live = []
    placements = 0
    start = time.perf_counter()
    for op in ops:
        if op[0] == "release":
            if live:
                pool.release(live.pop(op[1] % len(live)))
            continue
        _, amount, tenant, preferred, single = op
        try:
            live.append(pool.allocate(
                amount, tenant,
                single_tenant=single, preferred_location=preferred,
            ))
        except AllocationError:
            # Same deterministic overflow on both paths: shed the oldest
            # allocation and move on.
            if live:
                pool.release(live.pop(0))
        placements += 1
    elapsed = time.perf_counter() - start
    return elapsed, placements, list(pool.alloc_log)


def bench_scale(n_devices: int, n_placements: int) -> dict:
    ops = generate_ops(n_devices, n_placements)
    # Naive reference first (its op count may be capped at large N).
    extrapolated = n_devices > 1_000
    naive_ops = ops[:NAIVE_OP_CAP] if extrapolated else ops
    naive_pool = build_pool(n_devices, indexed=False)
    naive_s, naive_n, naive_trace = run_ops(naive_pool, naive_ops)

    indexed_pool = build_pool(n_devices, indexed=True)
    indexed_s, indexed_n, indexed_trace = run_ops(indexed_pool, ops)
    indexed_pool.check_accounting()

    # Byte-identical decisions over the ops both paths executed.
    assert indexed_trace[:len(naive_trace)] == naive_trace, (
        f"placement divergence at {n_devices} devices"
    )

    naive_rate = naive_n / naive_s
    indexed_rate = indexed_n / indexed_s
    if extrapolated:
        # The naive sample is truncated, and early ops are cheaper for
        # BOTH paths (fewer live allocations to scan/release).  Rates
        # from different op windows are not comparable, so the speedup
        # is computed from the indexed path re-timed on the *same*
        # truncated prefix — and the row says so (``extrapolated``)
        # instead of passing the capped naive rate off as a full-run
        # measurement.
        subset_pool = build_pool(n_devices, indexed=True)
        subset_s, subset_n, _ = run_ops(subset_pool, naive_ops)
        speedup = (subset_n / subset_s) / naive_rate
    else:
        speedup = indexed_rate / naive_rate
    return {
        "devices": n_devices,
        "placements": indexed_n,
        "naive_placements_timed": naive_n,
        "extrapolated": extrapolated,
        "naive_s": round(naive_s, 4),
        "indexed_s": round(indexed_s, 4),
        "naive_rate_per_s": round(naive_rate, 1),
        "indexed_rate_per_s": round(indexed_rate, 1),
        "speedup": round(speedup, 2),
    }


# -- sharded cells ----------------------------------------------------------

def build_sharded_fleet(n_devices: int, n_cells: int):
    """A CPU-only datacenter of ``n_devices`` partitioned into cells.

    Uses the real substrate — ``build_datacenter`` then
    ``partition_datacenter`` — with the same 8-devices/rack,
    32-racks/pod layout ``generate_ops`` assumes.  Global id counters
    are pinned so every cell count sees the identical fleet.
    """
    if n_devices % 256:
        raise ValueError(f"fleet size must be a multiple of 256 "
                         f"(8/rack x 32 racks/pod), got {n_devices}")
    devices_mod._device_ids = itertools.count()
    pools_mod._alloc_ids = itertools.count()
    datacenter = build_datacenter(DatacenterSpec(
        pods=n_devices // 256, racks_per_pod=32,
        devices_per_rack={DeviceType.CPU: 8},
    ))
    cells = partition_datacenter(datacenter, n_cells)
    for cell in cells:
        cell.pool(DeviceType.CPU).alloc_log = []
    return cells, CellRouter(cells)


def run_cells_ops(cells, router: CellRouter, ops) -> Tuple[float, int]:
    """Replay ``ops`` through the router; returns (elapsed_s, placements).

    Every alloc is routed by the cell order for its amount and spills to
    the next cell on rejection — the same deterministic walk the sharded
    service performs.  Releases go to the allocation's owning cell pool.
    """
    cpu = DeviceType.CPU
    pools = [cell.pool(cpu) for cell in cells]
    live: List[Tuple] = []
    placements = 0
    start = time.perf_counter()
    for op in ops:
        if op[0] == "release":
            if live:
                alloc, pool = live.pop(op[1] % len(live))
                pool.release(alloc)
            continue
        _, amount, tenant, preferred, single = op
        placed = False
        for hops, cell_id in enumerate(router.order({cpu: amount})):
            try:
                alloc = pools[cell_id].allocate(
                    amount, tenant,
                    single_tenant=single, preferred_location=preferred,
                )
            except AllocationError:
                continue
            live.append((alloc, pools[cell_id]))
            router.record_placement(cell_id, hops)
            placed = True
            break
        if not placed and live:
            # Same deterministic overflow as the flat bench: shed the
            # oldest allocation and move on.
            alloc, pool = live.pop(0)
            pool.release(alloc)
        placements += 1
    elapsed = time.perf_counter() - start
    return elapsed, placements


def bench_cells(n_devices: int, n_cells: int, n_placements: int) -> dict:
    ops = generate_ops(n_devices, n_placements)
    cells, router = build_sharded_fleet(n_devices, n_cells)
    elapsed, placements = run_cells_ops(cells, router, ops)
    for cell in cells:
        cell.pool(DeviceType.CPU).check_accounting()
    rate = placements / elapsed
    return {
        "devices": n_devices,
        "cells": n_cells,
        "placements": placements,
        "elapsed_s": round(elapsed, 4),
        "rate_per_s": round(rate, 1),
        "us_per_placement": round(1e6 * elapsed / placements, 2),
        "spills": router.spills,
    }


def load_baseline() -> Optional[dict]:
    if RESULT_PATH.exists():
        try:
            return json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            return None
    return None


def check_regression(results: List[dict], baseline: Optional[dict]) -> List[str]:
    """Compare speedup ratios against the committed baseline.

    Ratios (indexed/naive on the same host) are hardware-independent in a
    way absolute rates are not, so CI runners of different vintages share
    one baseline.  A >2x drop fails the perf-smoke job.
    """
    if not baseline:
        return []
    by_devices = {r["devices"]: r for r in baseline.get("scales", [])}
    failures = []
    for row in results:
        ref = by_devices.get(row["devices"])
        if ref is None:
            continue
        if row["speedup"] < ref["speedup"] / 2:
            failures.append(
                f"{row['devices']} devices: speedup {row['speedup']}x is "
                f">2x below committed baseline {ref['speedup']}x"
            )
    return failures


def run_cells_mode(smoke: bool = False) -> dict:
    """The sharded-control-plane half of the bench.

    Fixed fleet: aggregate placement rate vs cell count (the ~linear
    scaling claim).  Scale-out (full mode only): constant devices/cell
    while the fleet grows 16x (the near-flat per-placement-cost claim).
    """
    fleet = SMOKE_CELL_FLEET if smoke else CELL_FLEET
    counts = SMOKE_CELL_COUNTS if smoke else CELL_COUNTS
    n_placements = SMOKE_CELL_PLACEMENTS if smoke else CELL_PLACEMENTS
    fixed = [bench_cells(fleet, cells, n_placements) for cells in counts]
    print_table(
        f"Sharded cells: aggregate placement rate, {fleet} devices",
        ["cells", "placements", "rate/s", "us/placement", "spills",
         "scaling"],
        [(r["cells"], r["placements"], r["rate_per_s"],
          r["us_per_placement"], r["spills"],
          f"{r['rate_per_s'] / fixed[0]['rate_per_s']:.2f}x")
         for r in fixed],
    )
    by_cells = {r["cells"]: r["rate_per_s"] for r in fixed}
    if smoke:
        scaling_1_to_4 = by_cells[4] / by_cells[1]
        assert scaling_1_to_4 >= 1.7, (
            f"1->4 cells scaled only {scaling_1_to_4:.2f}x "
            f"(>=1.7x required): {by_cells}"
        )
        return {"fleet": fleet, "fixed_fleet": fixed,
                "scaling_1_to_4": round(scaling_1_to_4, 2)}

    scaling_1_to_8 = by_cells[8] / by_cells[1]
    assert scaling_1_to_8 >= 3.0, (
        f"8 cells scaled only {scaling_1_to_8:.2f}x over 1 cell "
        f"(>=3x required on a {fleet}-device fleet): {by_cells}"
    )
    scale_out = [bench_cells(n, cells, SCALE_OUT_PLACEMENTS)
                 for n, cells in SCALE_OUT]
    print_table(
        "Sharded cells: scale-out at constant 6400 devices/cell",
        ["devices", "cells", "rate/s", "us/placement", "spills"],
        [(r["devices"], r["cells"], r["rate_per_s"],
          r["us_per_placement"], r["spills"]) for r in scale_out],
    )
    # Near-flat per-placement cost: growing the fleet 16x (at constant
    # cell size) keeps per-cell index cost constant; the residual growth
    # is the router's O(cells) scoring pass (~3 us/cell).  Two gates:
    # the 16x fleet may cost at most 4x per placement (vs the ~16x a
    # single global index degrades), and the largest sharded fleet must
    # beat the *global* scheduler on a fleet half its size.
    costs = [r["us_per_placement"] for r in scale_out]
    assert max(costs) <= 4.0 * costs[0], (
        f"per-placement cost not flat across scale-out: {costs} us"
    )
    global_cost = fixed[0]["us_per_placement"]
    assert costs[-1] < global_cost, (
        f"sharded {scale_out[-1]['devices']}-device fleet costs "
        f"{costs[-1]} us/placement, not below the global scheduler's "
        f"{global_cost} us on {fixed[0]['devices']} devices"
    )
    return {
        "fleet": fleet,
        "fixed_fleet": fixed,
        "scaling_1_to_8": round(scaling_1_to_8, 2),
        "scale_out": scale_out,
    }


def run(smoke: bool = False, write: bool = True) -> dict:
    scales = SMOKE_SCALES if smoke else FULL_SCALES
    results = [bench_scale(n, m) for n, m in scales]
    print_table(
        "Perf scale: indexed placement vs naive reference",
        ["devices", "placements", "naive/s", "indexed/s", "speedup"],
        [(r["devices"], r["placements"], r["naive_rate_per_s"],
          r["indexed_rate_per_s"],
          f"{r['speedup']}x" + ("*" if r["extrapolated"] else ""))
         for r in results],
    )
    if any(r["extrapolated"] for r in results):
        print("  * naive path timed on a truncated prefix; speedup "
              "compares both paths over that same prefix")

    # Super-linear: the index wins *more* as the fleet grows.
    speedups = {r["devices"]: r["speedup"] for r in results}
    assert speedups[1_000] > speedups[100], (
        f"speedup did not grow with fleet size: {speedups}"
    )
    if not smoke:
        assert speedups[1_000] >= 10, (
            f"expected >=10x at 1k devices, got {speedups[1_000]}x"
        )

    print()
    cells_report = run_cells_mode(smoke=smoke)

    regressions = check_regression(results, load_baseline())
    report = {
        "bench": "bench_perf_scale",
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "scales": results,
        "cells": cells_report,
        "regressions": regressions,
    }
    if write and not smoke:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH.relative_to(REPO_ROOT)}")
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        raise SystemExit(1)
    return report


# -- pytest entry points ----------------------------------------------------

def test_perf_scale_smoke():
    """Smoke point: identical traces + the speedup grows with fleet size."""
    report = run(smoke=True, write=False)
    assert report["scales"][0]["speedup"] > 1
    assert not report["regressions"]


def test_cells_routing_deterministic():
    """The routed path is replayable: two runs of the same script over
    the same sharded fleet produce identical per-cell traces, and a
    single cell routes exactly like the flat indexed pool."""
    ops = generate_ops(512, 1_500, seed=11)
    traces = []
    for _ in range(2):
        cells, router = build_sharded_fleet(512, 2)
        run_cells_ops(cells, router, ops)
        traces.append([list(c.pool(DeviceType.CPU).alloc_log)
                       for c in cells])
    assert traces[0] == traces[1]
    assert any(traces[0])

    cells, router = build_sharded_fleet(512, 1)
    run_cells_ops(cells, router, ops)
    flat = build_pool(512, indexed=True)
    run_ops(flat, ops)
    assert cells[0].pool(DeviceType.CPU).alloc_log == flat.alloc_log


def test_trace_identical_with_locality_and_gating():
    """Decision equivalence under the adversarial bits: locality hints,
    single-tenant pins, and an admission filter gating half the fleet."""
    ops = generate_ops(64, 800, seed=9)
    traces = []
    for indexed in (True, False):
        pool = build_pool(64, indexed=indexed)
        pool.admission_filter = lambda d: d.seq % 2 == 0
        run_ops(pool, ops)
        traces.append(list(pool.alloc_log))
    assert traces[0] == traces[1]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scales for CI; does not rewrite BENCH_PERF.json",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="run without touching BENCH_PERF.json",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, write=not args.no_write)
