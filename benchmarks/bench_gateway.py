"""Gateway bench — latency, goodput, and fairness through the front door.

Runs one long-lived :class:`~repro.gateway.UDCGateway` (telemetry
disabled, the fleet-scale serving configuration) and drives it with the
real wire-protocol load generator in three phases:

1. **Peak** — a moderate closed loop measures pre-saturation capacity:
   peak goodput and unloaded closed-loop latency.
2. **Fairness at 10k** — a 10,000-tenant closed loop (multiplexed over a
   bounded connection pool) runs ~2.2 completions per tenant; Jain's
   index over per-tenant completions must stay >= 0.9.
3. **Overload** — two open-loop runs with identical machinery: a
   pre-saturation run offered ~0.5x the measured capacity, then an
   overload run offered ~3x.  Overload goodput must stay within 20% of
   the pre-saturation goodput (same-machinery comparison, so client
   overhead cancels out), and open- vs closed-loop latency under
   overload is reported side by side.

Results land in ``BENCH_GATEWAY.json`` at the repo root; ``--smoke``
runs the same phases at CI scale without rewriting it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.core.telemetry import Telemetry
from repro.gateway import GatewayConfig, UDCGateway
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service.service import UDCService
from repro.workloads.loadgen import run_closed_loop, run_open_loop

try:
    from _util import print_table
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).parent))
    from _util import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_GATEWAY.json"

SPEC = DatacenterSpec(
    pods=1, racks_per_pod=4,
    devices_per_rack={DeviceType.CPU: 16, DeviceType.GPU: 4,
                      DeviceType.DRAM: 4, DeviceType.SSD: 4},
)

#: (peak tenants, peak total, jain tenants, jain total, overload seconds)
FULL_SCALE = (256, 2_000, 10_000, 22_000, 8.0)
SMOKE_SCALE = (64, 400, 500, 1_100, 4.0)

JAIN_FLOOR = 0.9
#: overload goodput must stay within 20% of the pre-saturation peak
GOODPUT_FLOOR_FRACTION = 0.8


async def _run_phases(smoke: bool):
    peak_tenants, peak_total, jain_tenants, jain_total, overload_s = (
        SMOKE_SCALE if smoke else FULL_SCALE
    )
    service = UDCService(build_datacenter(SPEC),
                         telemetry=Telemetry(enabled=False))
    gateway = UDCGateway(service, GatewayConfig(
        port=0, workers=128, max_live=512, tick_sim_s=1.0,
    ))
    host, port = await gateway.start()
    try:
        peak = await run_closed_loop(
            host, port, tenants=peak_tenants, total=peak_total,
            duration_s=120.0, pool_size=128, wait_timeout_s=10.0,
        )
        fairness = await run_closed_loop(
            host, port, tenants=jain_tenants, total=jain_total,
            duration_s=300.0, pool_size=256, wait_timeout_s=10.0,
        )
        presat = await run_open_loop(
            host, port, rate_per_s=max(peak.goodput_per_s * 0.5, 20.0),
            duration_s=overload_s, tenants=peak_tenants,
            pool_size=128, wait_timeout_s=30.0, register=False,
            max_outstanding=2_000,
        )
        overload = await run_open_loop(
            host, port, rate_per_s=max(peak.goodput_per_s * 3.0, 50.0),
            duration_s=overload_s, tenants=peak_tenants,
            pool_size=128, wait_timeout_s=30.0, register=False,
            max_outstanding=2_000,
        )
    finally:
        await gateway.shutdown()
    return peak, fairness, presat, overload


def run(smoke: bool = False, write: bool = True) -> dict:
    peak, fairness, presat, overload = asyncio.run(_run_phases(smoke))

    goodput_floor = GOODPUT_FLOOR_FRACTION * presat.goodput_per_s
    gates = {
        "jain_floor": JAIN_FLOOR,
        "jain": round(fairness.jain, 4),
        "jain_ok": fairness.jain >= JAIN_FLOOR,
        "closed_peak_goodput_per_s": round(peak.goodput_per_s, 2),
        "presat_goodput_per_s": round(presat.goodput_per_s, 2),
        "overload_goodput_per_s": round(overload.goodput_per_s, 2),
        "overload_goodput_floor_per_s": round(goodput_floor, 2),
        "overload_goodput_ok": overload.goodput_per_s >= goodput_floor,
        "errors": (peak.errors + fairness.errors + presat.errors
                   + overload.errors),
    }
    payload = {
        "scale": "smoke" if smoke else "full",
        "phases": {
            "peak_closed": peak.to_dict(),
            "fairness_closed": fairness.to_dict(),
            "presat_open": presat.to_dict(),
            "overload_open": overload.to_dict(),
        },
        "gates": gates,
    }

    rows = []
    for label, report in (("peak (closed)", peak),
                          (f"{report_tenants(report=fairness)} (closed)",
                           fairness),
                          ("pre-saturation (open)", presat),
                          ("overload (open)", overload)):
        latency = report.to_dict()["latency_s"]
        rows.append([
            label, report.tenants, report.completed, report.shed,
            round(report.goodput_per_s, 1), round(report.jain, 4),
            round(latency["p50"] * 1e3, 2), round(latency["p99"] * 1e3, 2),
        ])
    print_table(
        "gateway: goodput / fairness / latency",
        ["phase", "tenants", "done", "shed", "goodput/s", "jain",
         "p50 ms", "p99 ms"],
        rows,
    )
    print(f"\ngates: jain {gates['jain']} >= {JAIN_FLOOR}: "
          f"{gates['jain_ok']}; overload goodput "
          f"{gates['overload_goodput_per_s']}/s >= "
          f"{gates['overload_goodput_floor_per_s']}/s: "
          f"{gates['overload_goodput_ok']}; errors: {gates['errors']}")

    if write and not smoke:
        RESULT_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {RESULT_PATH}")

    assert gates["errors"] == 0, "load generation hit transport errors"
    assert presat.shed == 0 and presat.dropped == 0, (
        "pre-saturation run was not actually below saturation"
    )
    assert gates["jain_ok"], (
        f"Jain {gates['jain']} under the {JAIN_FLOOR} fairness floor "
        f"at {fairness.tenants} tenants"
    )
    assert gates["overload_goodput_ok"], (
        f"shedding failed to hold goodput: {gates['overload_goodput_per_s']}"
        f"/s under the floor {gates['overload_goodput_floor_per_s']}/s"
    )
    return payload


def report_tenants(report) -> str:
    if report.tenants >= 1000:
        return f"{report.tenants // 1000}k tenants"
    return f"{report.tenants} tenants"


# ------------------------------------------------------------ pytest hook


def test_gateway_bench_smoke():
    """CI-scale run of all three phases with the same gates."""
    run(smoke=True, write=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale; does not rewrite "
                             "BENCH_GATEWAY.json")
    parser.add_argument("--no-write", action="store_true",
                        help="run without touching BENCH_GATEWAY.json")
    args = parser.parse_args()
    run(smoke=args.smoke, write=not args.no_write)
