"""E19 — the medical pipeline as an event-triggered service (§1 + §3).

The paper's serverless-GPU motivation, run on the *actual* UDC runtime
instead of the analytic FaaS model: the hospital deploys its data modules
once (standing S1–S4 stores), then every arriving CT scan triggers a
fresh per-event instance of the diagnosis tasks (A1–A4), attached to the
standing stores, on warm bundled resource units.

Compared: warm bundles on vs off, across arrival batches.  Expected
shape: per-event diagnosis latency with bundling sits near the pure
compute+transfer time; without bundling every event pays the secure
cold-start stack; standing data is placed exactly once.
"""

import pytest

from repro.appmodel.annotations import AppBuilder
from repro.core.runtime import UDCRuntime
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.workloads.medical import table1_definition

from _util import print_table

SPEC = DatacenterSpec(
    pods=2, racks_per_pod=4,
    devices_per_rack={
        DeviceType.CPU: 4, DeviceType.GPU: 3, DeviceType.DRAM: 2,
        DeviceType.NVM: 1, DeviceType.SSD: 2, DeviceType.HDD: 1,
    },
)
MB = 1 << 20
N_EVENTS = 6
INTERARRIVAL_S = 40.0


def storage_only_app():
    """The service's standing state: S1–S4 with their Table-1 aspects."""
    app = AppBuilder("medical-storage")
    app.data("S1", size_gb=50.0, record_bytes=64 * 1024)
    app.data("S2", size_gb=2.0, record_bytes=4 * 1024)
    app.data("S3", size_gb=1.0, record_bytes=8 * MB, hot=True)
    app.data("S4", size_gb=20.0, record_bytes=64 * 1024)
    return app.build()


def diagnosis_app(tag: str):
    """One per-event instance of the diagnosis path (A1, A2, A3, A4)."""
    from repro.workloads.medical import (
        _cnn_inference, _diagnose, _nlp_inference, _preprocess,
    )

    app = AppBuilder(f"diagnosis-{tag}")
    a1 = app.task(name="A1", work=0.5,
                  devices={DeviceType.CPU, DeviceType.GPU},
                  output_bytes=4 * MB, max_parallelism=2)(_preprocess)
    a2 = app.task(name="A2", work=40.0, devices={DeviceType.GPU},
                  output_bytes=64 * 1024)(_cnn_inference)
    a3 = app.task(name="A3", work=30.0, devices={DeviceType.GPU},
                  output_bytes=64 * 1024)(_nlp_inference)
    a4 = app.task(name="A4", work=2.0, devices={DeviceType.CPU},
                  output_bytes=16 * 1024, max_parallelism=2)(_diagnose)
    s1 = app.data("S1", size_gb=50.0)
    s3 = app.data("S3", size_gb=1.0, hot=True)
    app.reads(a1, s3, bytes_per_run=8 * MB)
    app.flows(a1, a2, bytes_=4 * MB)
    app.reads(a3, s1, bytes_per_run=4 * MB)
    app.flows(a2, a4, bytes_=64 * 1024)
    app.flows(a3, a4, bytes_=64 * 1024)
    app.writes(a4, s1, bytes_per_run=64 * 1024)
    app.colocate(a1, a2)
    return app.build()


def event_definition():
    full = table1_definition()
    return {name: full[name] for name in ("A1", "A2", "A3", "A4",
                                          "S1", "S3")}


def storage_definition():
    full = table1_definition()
    return {name: full[name] for name in ("S1", "S2", "S3", "S4")}


def run_service(bundling: bool):
    runtime = UDCRuntime(
        build_datacenter(SPEC),
        warm_pool=WarmPool(enabled=bundling, target_depth=8),
        prewarm=bundling,
    )
    # Deploy the standing state once (persistent: survives drain,
    # billed until decommission).
    deployment = runtime.submit(storage_only_app(), storage_definition(),
                                tenant="hospital", persistent=True)
    runtime.drain()
    stores = deployment.stores
    ssd_used_after_deploy = runtime.datacenter.pool(DeviceType.SSD).total_used

    # Stream scan arrivals; each attaches to the standing stores.
    handles = []
    for index in range(N_EVENTS):
        handles.append(runtime.submit_at(
            (index + 1) * INTERARRIVAL_S,
            diagnosis_app(str(index)),
            event_definition(),
            tenant="hospital",
            inputs={"A1": {"pixels": list(range(64)),
                           "patient": f"p-{index}"}},
            attach_stores=stores,
        ))
        if bundling:
            runtime.warm_pool.refill()
    results = runtime.drain()
    latencies = sorted(r.makespan_s for r in results)
    ssd_used_after_events = runtime.datacenter.pool(DeviceType.SSD).total_used
    storage_bill = runtime.decommission(deployment)
    return {
        "latencies": latencies,
        "results": results,
        "ssd_deployed": ssd_used_after_deploy,
        "ssd_stable": (ssd_used_after_deploy == ssd_used_after_events
                       and ssd_used_after_deploy > 0),
        "storage_bill": storage_bill,
        "runtime": runtime,
    }


def test_e19_event_triggered_diagnosis(benchmark):
    warm = benchmark(run_service, True)
    cold = run_service(False)

    rows = [
        ["cold starts every event", cold["latencies"][len(cold["latencies"]) // 2],
         cold["latencies"][-1]],
        ["warm bundled units", warm["latencies"][len(warm["latencies"]) // 2],
         warm["latencies"][-1]],
    ]
    print_table(
        f"E19 — per-event diagnosis latency over {N_EVENTS} scan arrivals",
        ["mode", "p50 latency_s", "max latency_s"],
        rows,
    )
    speedup = cold["latencies"][-1] / warm["latencies"][-1]
    print(f"\nbundling speedup on the event path: {speedup:.2f}x; "
          f"standing stores placed once: {warm['ssd_stable']}")

    # Shapes.
    assert len(warm["results"]) == N_EVENTS
    for result in warm["results"]:
        assert result.outputs["A4"] is not None
        assert result.total_failures == 0
    # Standing data was NOT re-placed per event, and stayed allocated
    # (and billed) for the whole service window.
    assert warm["ssd_stable"]
    assert warm["storage_bill"] > 0
    # Bundling removes the secure cold-start stack from the event path.
    assert speedup > 1.5
    # Diagnoses are per-patient (events did not cross-contaminate).
    patients = {r.outputs["A4"]["patient"] for r in warm["results"]}
    assert len(patients) == N_EVENTS
