"""E13 — §3.4: consistency-level and operation-preference trade-offs.

A replicated data module serves a mixed read/write workload from clients
spread across racks, under each consistency level and under reader
preference.

Expected shape: write latency ordered sequential > release > eventual;
reader preference cuts far-client read latency at the price of stale
reads; sequential reads are never stale.
"""

import pytest

from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import ReplicatedStore
from repro.hardware.devices import DeviceType
from repro.hardware.fabric import Location
from repro.hardware.topology import DatacenterSpec, build_datacenter

from _util import print_table

OPS = 60


def run_workload(consistency, preference=OpPreference.NONE):
    dc = build_datacenter(DatacenterSpec(pods=1, racks_per_pod=4))
    placement = ReplicaPlacer(dc.pool(DeviceType.SSD)).place(
        20, "t", ReplicationPolicy(factor=3))
    store = ReplicatedStore(dc.sim, dc.fabric, "S", placement,
                            consistency, preference)
    clients = [Location(0, rack, 77) for rack in range(4)]

    def driver():
        for index in range(OPS):
            client = clients[index % len(clients)]
            if index % 3 == 0:
                yield dc.sim.process(
                    store.write(client, f"k{index % 5}", b"x" * 512, 512)
                )
                if consistency == ConsistencyLevel.RELEASE and index % 9 == 0:
                    yield dc.sim.process(store.release(client))
            else:
                yield dc.sim.process(store.read(client, f"k{index % 5}"))

    done = dc.sim.process(driver())
    dc.sim.run(until_event=done)
    return store.totals()


def sweep():
    rows = []
    for consistency in ConsistencyLevel:
        for preference in (OpPreference.NONE, OpPreference.READER):
            totals = run_workload(consistency, preference)
            rows.append((
                consistency.value, preference.value,
                totals["mean_write_latency_s"] * 1e6,
                totals["mean_read_latency_s"] * 1e6,
                int(totals["stale_reads"]),
                int(totals["messages"]),
            ))
    return rows


def test_e13_consistency_tradeoffs(benchmark):
    rows = benchmark(sweep)
    print_table(
        f"E13 — consistency x preference under a mixed workload ({OPS} ops)",
        ["consistency", "preference", "write lat (us)", "read lat (us)",
         "stale reads", "messages"],
        rows,
    )
    data = {(c, p): (w, r, stale, msgs) for c, p, w, r, stale, msgs in rows}

    # Write latency strictly ordered by consistency strength.
    seq_w = data[("sequential", "none")][0]
    rel_w = data[("release", "none")][0]
    evt_w = data[("eventual", "none")][0]
    assert seq_w > rel_w > evt_w

    # Sequential primary reads are never stale.
    assert data[("sequential", "none")][2] == 0
    # Reader preference trades latency for staleness under sequential.
    assert data[("sequential", "reader")][1] \
        < data[("sequential", "none")][1]
    # Weaker levels expose staleness to readers somewhere in the sweep.
    stale_total = sum(stale for (c, p), (_w, _r, stale, _m) in data.items()
                      if c != "sequential" or p == "reader")
    assert stale_total > 0

    # Message cost tracks guarantees: sequential moves the most.
    assert data[("sequential", "none")][3] >= data[("release", "none")][3]


def test_e13_pod_level_vs_module_level_replication(benchmark):
    """§3.4's Kubernetes critique, quantified: replicating at pod
    granularity multiplies resources the user never asked to replicate."""
    from repro.appmodel.annotations import AppBuilder
    from repro.baselines.coarse import CoarseOrchestrator

    def run():
        app = AppBuilder("svc")
        for name in ("frontend", "auth", "billing", "search", "cache",
                     "indexer"):
            @app.task(name=name, work=1.0)
            def t(ctx):
                return None
        dag = app.build()
        demand = {"frontend": 3, "cache": 2}  # only two modules need replicas
        pods = CoarseOrchestrator(modules_per_pod=3).deploy(dag, demand)
        coarse = CoarseOrchestrator.total_units(pods)
        fine = CoarseOrchestrator.fine_grained_units(dag, demand)
        return coarse, fine

    coarse, fine = benchmark(run)
    print(f"\npod-level replication: {coarse['cpu']:.0f} cpu units;  "
          f"module-level (UDC): {fine['cpu']:.0f} cpu units;  "
          f"overhead {coarse['cpu'] / fine['cpu']:.2f}x")
    assert coarse["cpu"] > fine["cpu"] * 1.3
