"""``udc`` — command-line front door to the UDC runtime.

Subcommands:

* ``udc run APP.json [--spec SPEC.json] [...]`` — load a serialized IR
  program, apply a declarative aspect spec, execute it on a simulated
  datacenter, and print the run report (optionally a Gantt timeline and a
  fulfillment audit);
* ``udc profile APP.json`` — dry-run every task module across its
  candidate hardware and print the measurements (§3.2's tooling);
* ``udc autosize APP.json [--latency S]`` — emit a resource-aspect spec
  inferred from dry runs, ready to pass back to ``udc run --spec``;
* ``udc partition GRAPH.json -k N`` — cut a legacy dependency graph into
  N segments (§4's migration path);
* ``udc catalog DEMANDS.json`` — price a demand list against the 2021
  instance catalog vs UDC exact billing (the E1 arithmetic);
* ``udc chaos APP.json --faults FAULTS.json`` — run a program under a
  deterministic fault schedule (crashes, stragglers, fabric partitions,
  warm-pool exhaustion) and report how the declared resilience policies
  absorbed it (the E22 harness);
* ``udc trace APP.json`` — execute and print the hierarchical trace-span
  tree (schedule → allocate → env-acquire → execute → retry/hedge), plus
  an optional span-painted Gantt chart;
* ``udc metrics APP.json`` — execute and print the run's metrics registry
  as a Prometheus text snapshot or JSON;
* ``udc serve [--tenants N] [--policy fair|fifo]`` — replay a generated
  multi-tenant submission stream through the serving layer
  (:class:`~repro.service.UDCService`) and print per-tenant rollups,
  Jain's fairness index, and result-cache statistics;
* ``udc gateway [--port P] [--cells N]`` — serve the control plane over
  HTTP/1.1 + WebSocket (:class:`~repro.gateway.UDCGateway`): REST
  submission, streaming lifecycle events, bounded worker pool, and
  fair-share load shedding; ``--smoke`` runs an embedded closed-loop
  load generator and exits (the CI smoke path);
* ``udc lint [APP.json] --spec SPEC.json`` — statically analyze a
  definition (conflicts, feasibility vs the datacenter, DAG structure,
  information flow) without executing anything; ``--json`` emits a
  byte-deterministic report, exit 2 on error-severity findings; ``-``
  reads the app (or a ``modularize --json`` payload) from stdin;
* ``udc modularize SOURCE.py`` — compile a legacy single-file Python
  program (AST only, never executed) into a module DAG + definition
  that passes ``udc lint`` with zero findings (§4's module-cutter,
  claim C11); ``--json`` emits the byte-deterministic
  app+definition+report payload for piping into ``udc lint -``;
* ``udc record --workload NAME --journal J.jsonl`` — execute a named
  deterministic workload, journaling every control-plane event, with
  optional cadenced snapshots and a crash injector (``--crash-at N``
  exits 3 with the journal durable through event N);
* ``udc replay J.jsonl [--until N] [--resume]`` — re-execute a journal
  (config comes from its header), verifying every recorded fingerprint;
  ``--resume`` restarts a crashed run from the newest snapshot plus a
  journal-tail replay and finishes it — byte-identical to an
  uninterrupted run (exit 2 on divergence);
* ``udc bisect A.jsonl [B.jsonl]`` — binary-search two journals (or one
  journal against fresh re-execution) to the first divergent event id
  (exit 4 when a divergence is found).

All input formats are documented in each handler's docstring; everything
is plain JSON so non-Python frontends can target the same entry points.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.appmodel.loader import load_program_file
from repro.core.autosize import autosize
from repro.core.runtime import UDCRuntime
from repro.core.timeline import ascii_gantt, render_span_tree, span_gantt
from repro.core.verify import verify_run
from repro.execenv.attestation import Verifier
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.service import (
    BudgetExceeded,
    FifoAdmission,
    TenantSpec,
    UDCService,
    WeightedFairShare,
)
from repro.workloads.tenants import default_tenant_profiles, generate_tenant_trace

__all__ = ["main"]


def _build_dc(args) -> "object":
    return build_datacenter(
        DatacenterSpec(pods=args.pods, racks_per_pod=args.racks)
    )


def _add_dc_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pods", type=int, default=1,
                        help="datacenter pods (default 1)")
    parser.add_argument("--racks", type=int, default=4,
                        help="racks per pod (default 4)")


def _add_cells_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cells", type=int, default=1,
                        help="placement cells to shard the datacenter "
                             "into (default 1: the global scheduler)")


def cmd_run(args) -> int:
    """Execute an IR program.

    ``APP.json`` is :meth:`IRProgram.to_dict` output; ``--spec`` is the
    declarative definition format of :func:`repro.core.spec.parse_definition`.
    """
    dag = load_program_file(args.app)
    definition = None
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            definition = json.load(handle)
    runtime = UDCRuntime(
        _build_dc(args),
        warm_pool=WarmPool(enabled=args.warm),
        prewarm=args.warm,
    )
    result = runtime.run(dag, definition, tenant=args.tenant)
    print(result.format_table())
    if args.timeline:
        print()
        print(ascii_gantt(result))
    if args.verify:
        report = verify_run(result.objects, result.records,
                            Verifier(runtime.root_of_trust))
        print(f"\nfulfillment: {len(report.attested)} attested, "
              f"{len(report.trusted)} trusted, "
              f"{len(report.violated)} violated")
        for check in report.violated:
            print(f"  VIOLATED {check.module}.{check.prop}: promised "
                  f"{check.promised}, provided {check.provided}")
        return 0 if report.ok else 2
    return 0


def cmd_plan(args) -> int:
    """Placement preview: where would this app land, and at what burn rate
    (no execution, no allocations left behind)."""
    dag = load_program_file(args.app)
    definition = None
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            definition = json.load(handle)
    runtime = UDCRuntime(_build_dc(args))
    rows = runtime.plan(dag, definition, tenant=args.tenant)
    for row in rows:
        if row["kind"] == "data":
            print(f"{row['module']:<12} data  {row['replicas']} replica(s) "
                  f"on {', '.join(row['devices'])}  "
                  f"${row['hourly_cost']:.4f}/h"
                  + ("  [anti-affinity degraded]"
                     if row["anti_affinity_degraded"] else ""))
        else:
            tenancy = " single-tenant" if row["single_tenant"] else ""
            print(f"{row['module']:<12} task  {row['amount']:g} x "
                  f"{row['device_type']} in {row['env']}{tenancy} "
                  f"on {', '.join(row['devices'])}  "
                  f"${row['hourly_cost']:.4f}/h")
    total = sum(row["hourly_cost"] for row in rows)
    print(f"\ntotal burn rate while deployed: ${total:.4f}/h")
    return 0


def cmd_inspect(args) -> int:
    """Describe an IR program: modules, stages, locality relationships."""
    dag = load_program_file(args.app)
    print(f"application: {dag.name}")
    print(f"modules: {len(dag.tasks)} tasks, {len(dag.data_modules)} data")
    for depth, stage in enumerate(dag.task_stages()):
        print(f"  stage {depth}: {', '.join(stage)}")
    for group in dag.merged_colocation_groups():
        print(f"  co-located: {' ~ '.join(sorted(group))}")
    for (task_name, data_name), weight in sorted(dag.affinities.items()):
        print(f"  affinity: {task_name} <-> {data_name} "
              f"({weight / (1 << 20):.1f} MB/run)")
    for edge in dag.edges:
        print(f"  edge: {edge.src} -> {edge.dst} "
              f"({edge.bytes_transferred} B)")
    return 0


def cmd_profile(args) -> int:
    """Dry-run profile every task module (work x candidate hardware)."""
    from repro.core.profiler import DryRunProfiler

    dag = load_program_file(args.app)
    profiler = DryRunProfiler()
    for task in dag.tasks:
        result = profiler.profile(task)
        print(f"{task.name}:")
        for entry in sorted(result.entries,
                            key=lambda e: (e.device_type.value, e.amount)):
            print(f"  {entry.amount:g} x {entry.device_type.value:<5} "
                  f"-> {entry.wall_seconds:10.4f}s  ${entry.cost:.6f}  "
                  f"util {entry.utilization:.0%}")
    return 0


def cmd_autosize(args) -> int:
    """Infer resource aspects from dry runs; prints a spec JSON."""
    dag = load_program_file(args.app)
    definition = autosize(
        dag,
        end_to_end_latency_s=args.latency,
        optimize=args.optimize,
    )
    spec = {
        name: {
            "resource": {
                "device": bundle.resource.device.value,
                "amount": bundle.resource.amount,
            }
        }
        for name, bundle in definition.bundles.items()
        if bundle.resource is not None
    }
    json.dump(spec, sys.stdout, indent=2)
    print()
    return 0


def cmd_partition(args) -> int:
    """Cut a legacy dependency graph.

    ``GRAPH.json``: ``{"edges": [["caller", "callee", weight], ...],
    "hints": [["fn1", "fn2"], ...]}``.
    """
    import networkx as nx

    from repro.appmodel.legacy import partition_program

    with open(args.graph, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    graph = nx.Graph()
    for u, v, weight in raw["edges"]:
        graph.add_edge(str(u), str(v), weight=float(weight))
    hints = [set(map(str, h)) for h in raw.get("hints", [])]
    report = partition_program(graph, args.segments, developer_hints=hints)
    for index, segment in enumerate(report.segments):
        print(f"segment {index}: {sorted(segment)}")
    print(f"cross-segment weight: {report.cut_fraction:.1%}")
    return 0


def cmd_catalog(args) -> int:
    """Price demands: ``DEMANDS.json`` is a list of
    ``{"cpus": .., "mem_gb": .., "gpus": .., "duty": ..}`` objects."""
    from repro.baselines.iaas import IaasCloud, udc_exact_hourly_cost
    from repro.hardware.catalog import default_catalog
    from repro.hardware.server import WorkloadDemand

    with open(args.demands, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    demands = [
        WorkloadDemand(
            cpus=float(d.get("cpus", 0)),
            mem_gb=float(d.get("mem_gb", 0)),
            gpus=float(d.get("gpus", 0)),
            duty=float(d.get("duty", 1.0)),
            name=str(d.get("name", f"job-{i}")),
        )
        for i, d in enumerate(raw)
    ]
    cloud = IaasCloud(default_catalog()).provision_all(demands)
    for allocation in cloud.allocations:
        print(f"{allocation.demand.name:<16} -> {allocation.instance.name:<16}"
              f" ${allocation.hourly_cost:8.3f}/h  "
              f"waste {allocation.waste_fraction:.0%}")
    for demand in cloud.unplaceable:
        print(f"{demand.name:<16} -> (no instance fits)")
    print(f"\nIaaS total: ${cloud.total_hourly_cost:.2f}/h   "
          f"UDC exact: ${udc_exact_hourly_cost(demands):.2f}/h   "
          f"waste {cloud.mean_waste_fraction:.1%}")
    return 0


def _apply_faults(runtime, faults: list, problems: List[str]) -> None:
    """Schedule each fault entry against the runtime's injector.

    Entries are dicts with a ``kind`` and kind-specific fields (see
    :func:`cmd_chaos`); malformed entries are collected into ``problems``
    rather than aborting mid-schedule.
    """
    from repro.hardware.fabric import Location

    injector = runtime.injector
    for index, fault in enumerate(faults):
        if not isinstance(fault, dict):
            problems.append(f"fault[{index}]: must be a mapping")
            continue
        kind = str(fault.get("kind", "crash"))
        try:
            if kind == "crash":
                injector.fail_at(
                    float(fault["at"]), str(fault["domain"]),
                    repair_after=(
                        float(fault["repair_after"])
                        if fault.get("repair_after") is not None else None
                    ),
                )
            elif kind == "slow":
                injector.slow_at(
                    float(fault["at"]), str(fault["domain"]),
                    factor=float(fault.get("factor", 4.0)),
                    duration_s=(
                        float(fault["duration_s"])
                        if fault.get("duration_s") is not None else None
                    ),
                )
            elif kind == "partition":
                pod_a, rack_a = fault["a"]
                pod_b, rack_b = fault["b"]
                injector.partition_at(
                    float(fault["at"]),
                    Location(int(pod_a), int(rack_a)),
                    Location(int(pod_b), int(rack_b)),
                    duration_s=(
                        float(fault["duration_s"])
                        if fault.get("duration_s") is not None else None
                    ),
                    stall_s=float(fault.get("stall_s", 30.0)),
                )
            elif kind == "warm-exhaust":
                injector.exhaust_warm_pool_at(
                    float(fault["at"]),
                    duration_s=(
                        float(fault["duration_s"])
                        if fault.get("duration_s") is not None else None
                    ),
                )
            elif kind == "random":
                injector.random_failures(
                    [str(d) for d in fault["domains"]],
                    horizon_s=float(fault["horizon_s"]),
                    mtbf_s=float(fault["mtbf_s"]),
                    repair_after=(
                        float(fault["repair_after"])
                        if fault.get("repair_after") is not None else None
                    ),
                )
            else:
                problems.append(
                    f"fault[{index}]: unknown kind {kind!r} (expected "
                    f"crash/slow/partition/warm-exhaust/random)"
                )
        except KeyError as exc:
            problems.append(f"fault[{index}] ({kind}): missing field {exc}")
        except (TypeError, ValueError) as exc:
            problems.append(f"fault[{index}] ({kind}): {exc}")


def cmd_chaos(args) -> int:
    """Execute an IR program under a deterministic fault schedule.

    ``--faults FAULTS.json`` is a list of fault entries::

        [
          {"at": 5.0, "kind": "crash", "domain": "fd:job",
           "repair_after": 10.0},
          {"at": 5.0, "kind": "slow", "domain": "fd:job", "factor": 8,
           "duration_s": 60.0},
          {"at": 5.0, "kind": "partition", "a": [0, 0], "b": [0, 1],
           "stall_s": 30.0, "duration_s": 60.0},
          {"at": 5.0, "kind": "warm-exhaust", "duration_s": 120.0},
          {"kind": "random", "domains": ["fd:job"], "horizon_s": 1000,
           "mtbf_s": 200, "repair_after": 30.0}
        ]

    Task failure domains are named ``fd:<module>``.  The same ``--seed``
    always produces the same run (the determinism the E22 benchmark
    asserts); resilience aspects in ``--spec`` (retry/hedge/deadline_s)
    determine how much of the schedule the application survives.
    """
    from repro.simulator.rng import RngRegistry

    dag = load_program_file(args.app)
    definition = None
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            definition = json.load(handle)
    faults = []
    if args.faults:
        with open(args.faults, "r", encoding="utf-8") as handle:
            faults = json.load(handle)
        if not isinstance(faults, list):
            print("chaos: FAULTS.json must be a list of fault entries",
                  file=sys.stderr)
            return 2
    runtime = UDCRuntime(
        _build_dc(args),
        warm_pool=WarmPool(enabled=args.warm),
        prewarm=args.warm,
        rng=RngRegistry(args.seed),
    )
    submission = runtime.submit(dag, definition, tenant=args.tenant)
    problems: List[str] = []
    _apply_faults(runtime, faults, problems)
    if problems:
        for problem in problems:
            print(f"chaos: {problem}", file=sys.stderr)
        return 2
    runtime.drain()
    result = submission.result
    if args.json:
        payload = result.to_json_dict()
        payload["faults_injected"] = len(runtime.injector.injected)
        payload["breaker_opens"] = runtime.breakers.opens
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(result.format_table())
        print(f"\nchaos: {len(runtime.injector.injected)} fault(s) injected"
              f"   breaker opens: {runtime.breakers.opens}"
              f"   open now: {sorted(runtime.breakers.open_keys(runtime.sim.now))}")
    return 0 if result.slo_violations == 0 else 3


def _run_observed(args):
    """Shared execute-and-return-runtime path for trace/metrics."""
    from repro.simulator.rng import RngRegistry

    dag = load_program_file(args.app)
    definition = None
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            definition = json.load(handle)
    runtime = UDCRuntime(
        _build_dc(args),
        warm_pool=WarmPool(enabled=args.warm),
        prewarm=args.warm,
        rng=RngRegistry(args.seed),
    )
    result = runtime.run(dag, definition, tenant=args.tenant)
    return runtime, result


def cmd_trace(args) -> int:
    """Execute and print the run's trace-span tree.

    Every module's lifecycle is a root span; scheduling, allocation,
    environment acquisition, transfers, compute, retries, recovery, and
    hedges nest beneath it with phase attribution — the structured
    replacement for eyeballing the flat event log.
    """
    runtime, _result = _run_observed(args)
    telemetry = runtime.telemetry
    if args.json:
        payload = [span.to_dict() for span in telemetry.spans]
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(render_span_tree(telemetry, module=args.module))
    if args.gantt:
        print()
        print(span_gantt(telemetry))
    return 0


def _metrics_sharded(args):
    """Execute the app on a cell-sharded service and return the
    aggregated registry (per-cell labels + cross-cell sums)."""
    from repro.simulator.rng import RngRegistry

    dag = load_program_file(args.app)
    definition = None
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            definition = json.load(handle)
    service = UDCService(
        _build_dc(args), cells=args.cells,
        warm_pool=WarmPool(enabled=args.warm), prewarm=args.warm,
        rng=RngRegistry(args.seed),
    )
    service.submit(args.tenant, dag, definition)
    service.drain()
    return service.metrics_snapshot()


def cmd_metrics(args) -> int:
    """Execute and print the run's metrics snapshot.

    ``--format prom`` (default) emits the Prometheus text exposition
    format; ``--format json`` emits the registry as JSON (wall-clock
    histograms included — this snapshot is for humans and scrapers, not
    for byte-reproducible reports).
    """
    if args.cells > 1:
        registry = _metrics_sharded(args)
    else:
        runtime, _result = _run_observed(args)
        registry = runtime.metrics_snapshot()
    if args.format == "json":
        json.dump(registry.to_dict(include_wall_clock=True), sys.stdout,
                  indent=2, sort_keys=True)
        print()
    else:
        sys.stdout.write(registry.render_prometheus())
    return 0


def cmd_lint(args) -> int:
    """Statically analyze a definition against an app and a datacenter.

    ``APP.json`` (optional) is :meth:`IRProgram.to_dict` output and
    unlocks the structural, information-flow, and deadline checks;
    ``--spec`` is the declarative definition JSON.  At least one of the
    two is required.  ``-`` as the app reads a JSON payload from stdin —
    either a bare IR program, or the combined ``udc modularize --json``
    output (``{"app": ..., "definition": ...}``), whose definition is
    used unless ``--spec`` overrides it; this is what makes
    ``udc modularize app.py --json | udc lint -`` a pipeline.  Exit
    codes: 0 clean (warnings allowed unless ``--strict``), 2 on gating
    findings, 2 on unreadable inputs.
    """
    from repro.analysis import analyze_definition

    if not args.app and not args.spec:
        print("lint: nothing to analyze (give APP.json and/or --spec)",
              file=sys.stderr)
        return 2
    definition = {}
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            definition = json.load(handle)
    dag = None
    if args.app:
        from repro.appmodel.dag import DagValidationError
        from repro.appmodel.loader import load_program

        try:
            if args.app == "-":
                payload = json.load(sys.stdin)
                ir_dict = payload.get("app", payload) \
                    if isinstance(payload, dict) else payload
                if not args.spec and isinstance(payload, dict) \
                        and "definition" in payload:
                    definition = payload["definition"]
                dag = load_program(ir_dict)
            else:
                dag = load_program_file(args.app)
        except (DagValidationError, json.JSONDecodeError, KeyError,
                TypeError, ValueError) as exc:
            print(f"lint: {args.app}: {exc}", file=sys.stderr)
            return 2
    report = analyze_definition(definition, app=dag,
                                datacenter=_build_dc(args))
    if args.json:
        json.dump(report.to_json_dict(), sys.stdout, indent=2,
                  sort_keys=True)
        print()
    else:
        print(report.format_text())
    gating = report.errors if not args.strict \
        else report.errors + report.warnings
    return 2 if gating else 0


def cmd_modularize(args) -> int:
    """Compile a legacy Python source into a lint-clean UDC definition.

    ``SOURCE.py`` is analyzed statically (AST only — the file is never
    imported or executed).  The pipeline extracts the program's stores,
    functions, and data-flow graph, infers sensitivity labels, searches
    for the minimum-cross-dependency module cut, and emits an app +
    definition that passes ``udc lint`` with zero findings (the pipeline
    self-checks before printing).

    ``--json`` emits ``{"app": IR, "definition": spec, "report": ...}``
    byte-deterministically (same source + seed → identical bytes); pipe
    it into ``udc lint -``.  Exit codes mirror ``udc lint``: 0 on
    success, 2 when the source falls outside the supported subset.
    """
    from repro.analysis.program import ProgramAnalysisError, modularize

    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"modularize: {exc}", file=sys.stderr)
        return 2
    name = args.name or args.source.rsplit("/", 1)[-1].removesuffix(".py")
    try:
        result = modularize(source, name=name, seed=args.seed,
                            moves=args.moves, alpha=args.alpha,
                            datacenter=_build_dc(args))
    except ProgramAnalysisError as exc:
        print(f"modularize: {args.source}: {exc}", file=sys.stderr)
        return 2

    if args.json:
        sys.stdout.write(result.report_json() + "\n")
        return 0

    model, cut, taint = result.model, result.cut, result.taint
    print(f"modularize {name}: {len(model.tasks)} task(s), "
          f"{len(model.stores)} store(s), {len(model.drivers)} driver(s) "
          f"-> {len(cut.groups)} module(s)")
    if model.helpers:
        print(f"  inlined helpers: {', '.join(model.helpers)}")
    if model.dead:
        print(f"  dead code (not emitted): {', '.join(model.dead)}")
    if taint.raised:
        print(f"  labels raised to match writers: "
              f"{', '.join(taint.raised)}")
    print(f"  cut: cross-module traffic {cut.cross_bytes} B, "
          f"internalized {cut.internal_bytes} B, "
          f"parallel loss {cut.parallel_loss:g} work, "
          f"{cut.merges} merge(s), "
          f"{cut.moves_taken}/{cut.moves_tried} refinement move(s)")
    print("  modules:")
    for group in cut.groups:
        if group.kind == "task":
            label = taint.task_in[group.members[0]]
            task = result.emitted.dag.task(group.name)
            devices = ",".join(sorted(d.value for d in
                                      task.device_candidates))
            extra = " sanitizer" if task.sanitizer else ""
            print(f"    task  {group.name}  [{devices}]  "
                  f"label={label}{extra}")
        else:
            store = result.emitted.dag.data(group.name)
            label = taint.store_label[group.members[0]]
            print(f"    data  {group.name}  {store.size_gb:g}GB"
                  f"{' hot' if store.hot else ''}  label={label}")
    print("  lint: clean (0 findings)")
    return 0


def cmd_serve(args) -> int:
    """Replay a synthetic multi-tenant stream through the serving layer.

    Generates a diurnal-skewed submission trace
    (:func:`repro.workloads.tenants.generate_tenant_trace`), registers
    each profile's fair-share weight, submits everything in arrival
    order with a dispatch round every ``--round-every`` submissions,
    drains, and prints the per-tenant rollup plus Jain's fairness index
    and result-cache statistics.
    """
    profiles = default_tenant_profiles(count=args.tenants, seed=args.seed)
    trace = generate_tenant_trace(
        profiles,
        peak_rate_per_minute=args.rate,
        horizon_s=args.minutes * 60.0,
        repeat_fraction=args.repeat_fraction,
        seed=args.seed,
    )
    policy = (WeightedFairShare() if args.policy == "fair"
              else FifoAdmission())
    service = UDCService(_build_dc(args), policy=policy, cells=args.cells,
                         autopilot=args.autopilot,
                         warm_pool=WarmPool(enabled=args.warm),
                         prewarm=args.warm)
    spot_count = int(round(args.spot_fraction * len(profiles)))
    for index, profile in enumerate(profiles):
        service.register_tenant(profile.name, TenantSpec(
            weight=profile.weight,
            goal="cheapest" if index < spot_count else None,
            budget_dollars=args.budget,
            slo_s=args.slo,
        ))
    for index, arrival in enumerate(trace.submissions, start=1):
        try:
            service.submit(arrival.tenant, arrival.dag, arrival.definition,
                           inputs=arrival.inputs)
        except BudgetExceeded:
            pass  # counted as a rejection in the tenant rollup
        if index % args.round_every == 0:
            # Each round runs to quiescence so finished results land in
            # the cache before later re-submissions of the same inputs.
            service.drain()
    service.drain()

    rollups = service.rollup()
    fairness = service.fairness_index()
    stats = service.cache_stats
    drift = service.check_budget_accounting()
    economics_on = args.autopilot or args.budget is not None
    if args.json:
        payload = {
            "policy": args.policy,
            "rounds": service.rounds,
            "fairness_completed": fairness,
            "cache": {"hits": stats.hits, "misses": stats.misses,
                      "evictions": stats.evictions,
                      "hit_rate": stats.hit_rate},
            "tenants": [
                {"tenant": u.tenant, "submissions": u.submissions,
                 "completed": u.completed, "cache_hits": u.cache_hits,
                 "unplaceable": u.unplaceable, "rejected": u.rejected,
                 "total_cost": round(u.total_cost, 6),
                 "cost_saved": round(u.cost_saved, 6),
                 "billed_cost": round(u.billed_cost, 6),
                 "slo_misses": u.slo_misses}
                for u in rollups
            ],
        }
        if economics_on:
            payload["economics"] = {
                "autopilot": args.autopilot,
                "preemptions": service.preemptions,
                "budget": service.budget.snapshot(),
                "accounting_drift": drift,
            }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 1 if (economics_on and drift) else 0

    weights = {profile.name: profile.weight for profile in profiles}
    print(f"{len(trace)} submissions from {len(profiles)} tenants over "
          f"{args.minutes:g} min ({args.policy} admission, "
          f"{service.rounds} dispatch rounds)")
    print()
    header = (f"{'tenant':<12} {'wt':>4} {'subs':>5} {'cached':>6} "
              f"{'done':>5} {'unpl':>5} {'cost $':>10} {'saved $':>10}")
    print(header)
    print("-" * len(header))
    for usage in rollups:
        print(f"{usage.tenant:<12} {weights.get(usage.tenant, 1.0):>4g} "
              f"{usage.submissions:>5} {usage.cache_hits:>6} "
              f"{usage.completed:>5} {usage.unplaceable:>5} "
              f"{usage.total_cost:>10.4f} {usage.cost_saved:>10.4f}")
    print()
    print(f"Jain fairness (completed): {fairness:.3f}")
    print(f"Result cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.1%} hit rate), {stats.evictions} evictions")
    if economics_on:
        billed = sum(u.billed_cost for u in rollups)
        misses = sum(u.slo_misses for u in rollups)
        print(f"Economics: ${billed:.4f} billed, "
              f"{service.preemptions} preemption(s), "
              f"{misses} SLO miss(es), "
              f"{spot_count}/{len(profiles)} spot tenants")
        if drift:
            print("Budget accounting drift:", file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("Budget accounting: ledger and enforcer agree (zero drift)")
    return 0


def cmd_gateway(args) -> int:
    """Serve the control plane over HTTP/1.1 + WebSocket.

    Binds :class:`repro.gateway.UDCGateway` on ``--host``/``--port``
    (port 0 picks an ephemeral port and prints it) over a fresh service
    sharded into ``--cells`` placement cells.  ``--smoke`` runs an
    embedded closed-loop load generator against the freshly started
    server, prints its JSON report, optionally writes a Prometheus
    metrics snapshot (``--metrics-out``), and shuts down — the CI
    smoke path.  Without it the server runs until ``--duration``
    elapses, SIGINT, or a ``POST /v1/shutdown``.
    """
    import asyncio

    from repro.core.telemetry import Telemetry
    from repro.gateway import GatewayConfig, UDCGateway

    policy = (WeightedFairShare() if args.policy == "fair"
              else FifoAdmission())
    service = UDCService(
        _build_dc(args), policy=policy, cells=args.cells,
        telemetry=Telemetry(enabled=not args.no_telemetry),
    )
    config = GatewayConfig(
        host=args.host, port=args.port, workers=args.workers,
        max_live=args.max_live, tick_sim_s=args.tick_sim_s,
    )
    gateway = UDCGateway(service, config)

    async def run() -> int:
        host, port = await gateway.start()
        print(f"udc gateway listening on {host}:{port} "
              f"({service.cells} cell(s), workers={config.workers}, "
              f"max_live={config.max_live})", flush=True)
        if args.smoke:
            from repro.workloads.loadgen import run_closed_loop

            report = await run_closed_loop(
                host, port, tenants=args.smoke_tenants,
                total=args.smoke_total,
                duration_s=args.duration or 60.0,
            )
            if args.metrics_out:
                with open(args.metrics_out, "w", encoding="utf-8") as out:
                    out.write(gateway.metrics_text())
            await gateway.shutdown()
            json.dump(report.to_dict(), sys.stdout, indent=2,
                      sort_keys=True)
            print()
            ok = report.completed > 0 and report.errors == 0
            return 0 if ok else 2
        if args.duration:
            try:
                await asyncio.wait_for(gateway.wait_closed(),
                                       args.duration)
            except asyncio.TimeoutError:
                await gateway.shutdown()
        else:
            await gateway.wait_closed()
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as out:
                out.write(gateway.metrics_text())
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _replay_runner_for(args, config=None):
    """Build a ReplayRunner either from CLI args or a journal header."""
    from repro.replay import ReplayRunner, RunConfig

    if config is None:
        params = json.loads(args.params) if args.params else {}
        config = RunConfig(
            workload=args.workload, params=params, seed=args.seed,
            pods=args.pods, racks=args.racks, policy=args.policy,
            warm=args.warm, cells=args.cells,
            autopilot=getattr(args, "autopilot", False),
        )
    return ReplayRunner(config)


def _write_report(runner, service, path: Optional[str]) -> None:
    if not path:
        return
    with open(path, "wb") as handle:
        handle.write(runner.report_bytes(service))


def cmd_record(args) -> int:
    """Execute a named workload, journaling every control-plane event.

    ``--workload`` names a :data:`repro.replay.workloads.REPLAY_WORKLOADS`
    entry; ``--params`` is its JSON parameter object.  ``--snapshot-dir``
    + ``--snapshot-every N`` snapshot the full control plane after every
    Nth event; ``--crash-at K`` kills the run right after event K's
    journal line is durable (exit 3) — ``udc replay --resume`` finishes
    it.  ``--report`` writes the canonical final-report bytes, the
    artifact crash-resume equivalence is asserted on.
    """
    from repro.replay import SimulatedCrash

    runner = _replay_runner_for(args)
    try:
        service = runner.record(
            args.journal,
            snapshot_dir=args.snapshot_dir,
            snapshot_every=args.snapshot_every,
            crash_at=args.crash_at,
        )
    except SimulatedCrash as crash:
        print(f"record: simulated crash after event {crash.eid} "
              f"(journal intact at {args.journal})")
        return 3
    _write_report(runner, service, args.report)
    print(f"record: {len(runner.script.commands)} events journaled to "
          f"{args.journal}")
    return 0


def cmd_replay(args) -> int:
    """Re-execute a journal, verifying every recorded fingerprint.

    The run config comes from the journal header — a journal is
    self-contained.  Plain replay rebuilds the journaled prefix from
    scratch (``--until N`` stops early); ``--resume`` restarts a crashed
    run from the newest loadable snapshot in ``--snapshot-dir``, replays
    the journal tail, and finishes the remaining script, appending new
    events to the same journal.  Exit 2 if replay diverges from what the
    journal recorded.
    """
    from repro.replay import (
        ReplayDivergence,
        RunConfig,
        read_journal,
    )

    config_dict, events, torn = read_journal(args.journal)
    if torn:
        print(f"replay: dropped a torn final line in {args.journal} "
              f"(crash landed mid-append)", file=sys.stderr)
    runner = _replay_runner_for(args, RunConfig.from_json_dict(config_dict))
    try:
        if args.resume:
            service = runner.resume(
                args.journal,
                snapshot_dir=args.snapshot_dir,
                snapshot_every=args.snapshot_every,
            )
            print(f"replay: resumed {args.journal} to completion "
                  f"({len(runner.script.commands)} events)")
        else:
            service, replayed = runner.replay(
                args.journal, until=args.until,
                verify=not args.no_verify,
            )
            print(f"replay: {len(replayed)} of {len(events)} journaled "
                  f"events re-executed"
                  + ("" if args.no_verify else ", fingerprints verified"))
    except ReplayDivergence as div:
        print(f"replay: DIVERGED: {div}", file=sys.stderr)
        return 2
    _write_report(runner, service, args.report)
    return 0


def cmd_bisect(args) -> int:
    """Find the first divergent event between two runs.

    With two journals, binary-searches their shared prefix.  With one
    journal, probes fresh re-executions of the header config's script
    (O(log n) prefix runs) — where did the recorded run depart from what
    its config deterministically produces?  Exit 0 when identical, 4
    when a divergence is found.
    """
    from repro.replay import (
        RunConfig,
        bisect_replay,
        first_divergence,
        read_journal,
    )

    _config_a, events_a, _ = read_journal(args.journal_a)
    if args.journal_b:
        _config_b, events_b, _ = read_journal(args.journal_b)
        divergence = first_divergence(events_a, events_b)
    else:
        runner = _replay_runner_for(
            args, RunConfig.from_json_dict(_config_a)
        )
        divergence = bisect_replay(events_a, runner.fingerprint_at)
    if divergence is None:
        print("bisect: runs are identical")
        return 0
    print(f"bisect: {divergence.describe()}")
    event = (events_a[divergence.eid] if divergence.eid < len(events_a)
             else None)
    if event is not None:
        print(f"bisect: event {event.eid} is {event.op!r} "
              f"args={json.dumps(event.args, sort_keys=True)}")
    return 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="udc",
        description="User-Defined Cloud (HotOS '21 reproduction) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute an IR program")
    run_p.add_argument("app", help="IR program JSON (IRProgram.to_dict)")
    run_p.add_argument("--spec", help="declarative aspect spec JSON")
    run_p.add_argument("--tenant", default="cli-tenant")
    run_p.add_argument("--warm", action="store_true",
                       help="enable warm bundled resource units")
    run_p.add_argument("--timeline", action="store_true",
                       help="print an ASCII Gantt chart")
    run_p.add_argument("--verify", action="store_true",
                       help="run the fulfillment audit (exit 2 on violation)")
    _add_dc_args(run_p)
    run_p.set_defaults(handler=cmd_run)

    plan_p = sub.add_parser("plan",
                            help="placement preview (no execution)")
    plan_p.add_argument("app")
    plan_p.add_argument("--spec")
    plan_p.add_argument("--tenant", default="cli-tenant")
    _add_dc_args(plan_p)
    plan_p.set_defaults(handler=cmd_plan)

    inspect_p = sub.add_parser("inspect", help="describe an IR program")
    inspect_p.add_argument("app")
    inspect_p.set_defaults(handler=cmd_inspect)

    profile_p = sub.add_parser("profile", help="dry-run profile all tasks")
    profile_p.add_argument("app")
    profile_p.set_defaults(handler=cmd_profile)

    autosize_p = sub.add_parser("autosize",
                                help="infer resource aspects from dry runs")
    autosize_p.add_argument("app")
    autosize_p.add_argument("--latency", type=float, default=None,
                            help="end-to-end latency target (seconds)")
    autosize_p.add_argument("--optimize", choices=("cost", "speed"),
                            default="cost")
    autosize_p.set_defaults(handler=cmd_autosize)

    partition_p = sub.add_parser("partition",
                                 help="cut a legacy dependency graph")
    partition_p.add_argument("graph")
    partition_p.add_argument("-k", "--segments", type=int, required=True)
    partition_p.set_defaults(handler=cmd_partition)

    catalog_p = sub.add_parser("catalog",
                               help="price demands against the 2021 catalog")
    catalog_p.add_argument("demands")
    catalog_p.set_defaults(handler=cmd_catalog)

    chaos_p = sub.add_parser(
        "chaos",
        help="execute under a deterministic fault schedule (exit 3 on "
             "SLO violation)",
    )
    chaos_p.add_argument("app", help="IR program JSON (IRProgram.to_dict)")
    chaos_p.add_argument("--spec", help="declarative aspect spec JSON "
                                        "(retry/hedge/deadline_s live here)")
    chaos_p.add_argument("--faults", help="fault schedule JSON (see docs)")
    chaos_p.add_argument("--seed", type=int, default=0,
                         help="RNG seed for jitter/random faults (default 0)")
    chaos_p.add_argument("--tenant", default="cli-tenant")
    chaos_p.add_argument("--warm", action="store_true",
                         help="enable warm bundled resource units")
    chaos_p.add_argument("--json", action="store_true",
                         help="emit the run summary as JSON")
    _add_dc_args(chaos_p)
    chaos_p.set_defaults(handler=cmd_chaos)

    trace_p = sub.add_parser(
        "trace", help="execute and print the trace-span tree"
    )
    trace_p.add_argument("app", help="IR program JSON (IRProgram.to_dict)")
    trace_p.add_argument("--spec", help="declarative aspect spec JSON")
    trace_p.add_argument("--seed", type=int, default=0,
                         help="RNG seed (default 0)")
    trace_p.add_argument("--tenant", default="cli-tenant")
    trace_p.add_argument("--warm", action="store_true",
                         help="enable warm bundled resource units")
    trace_p.add_argument("--module", default=None,
                         help="only show trees rooted at this module")
    trace_p.add_argument("--gantt", action="store_true",
                         help="also print the span-painted Gantt chart")
    trace_p.add_argument("--json", action="store_true",
                         help="emit the raw span log as JSON")
    _add_dc_args(trace_p)
    trace_p.set_defaults(handler=cmd_trace)

    metrics_p = sub.add_parser(
        "metrics", help="execute and print the metrics snapshot"
    )
    metrics_p.add_argument("app", help="IR program JSON (IRProgram.to_dict)")
    metrics_p.add_argument("--spec", help="declarative aspect spec JSON")
    metrics_p.add_argument("--seed", type=int, default=0,
                           help="RNG seed (default 0)")
    metrics_p.add_argument("--tenant", default="cli-tenant")
    metrics_p.add_argument("--warm", action="store_true",
                           help="enable warm bundled resource units")
    metrics_p.add_argument("--format", choices=("prom", "json"),
                           default="prom")
    _add_dc_args(metrics_p)
    _add_cells_arg(metrics_p)
    metrics_p.set_defaults(handler=cmd_metrics)

    lint_p = sub.add_parser(
        "lint",
        help="statically analyze a definition (exit 2 on error findings)",
    )
    lint_p.add_argument("app", nargs="?", default=None,
                        help="IR program JSON (optional; unlocks DAG "
                             "structure, flow, and deadline checks)")
    lint_p.add_argument("--spec", help="declarative aspect spec JSON")
    lint_p.add_argument("--strict", action="store_true",
                        help="warnings also gate (exit 2)")
    lint_p.add_argument("--json", action="store_true",
                        help="emit the report as deterministic JSON")
    _add_dc_args(lint_p)
    lint_p.set_defaults(handler=cmd_lint)

    modularize_p = sub.add_parser(
        "modularize",
        help="compile a legacy Python source into a lint-clean "
             "UDC definition (exit 2 on unsupported input)",
    )
    modularize_p.add_argument("source",
                              help="legacy single-file Python program "
                                   "(analyzed via AST, never executed)")
    modularize_p.add_argument("--name", default=None,
                              help="application name (default: the "
                                   "source file's stem)")
    modularize_p.add_argument("--seed", type=int, default=0,
                              help="cutter refinement RNG seed "
                                   "(default 0)")
    modularize_p.add_argument("--moves", type=int, default=64,
                              help="local-refinement move proposals "
                                   "(default 64)")
    modularize_p.add_argument("--alpha", type=float,
                              default=float(1 << 20),
                              help="bytes of cross-module traffic one "
                                   "serialized work-unit costs in the "
                                   "cut objective (default 1 MiB)")
    modularize_p.add_argument("--json", action="store_true",
                              help="emit the byte-deterministic "
                                   "app+definition+report JSON payload")
    _add_dc_args(modularize_p)
    modularize_p.set_defaults(handler=cmd_modularize)

    serve_p = sub.add_parser(
        "serve",
        help="replay a multi-tenant stream through the serving layer",
    )
    serve_p.add_argument("--tenants", type=int, default=8,
                         help="tenant population size (default 8)")
    serve_p.add_argument("--minutes", type=float, default=30.0,
                         help="trace horizon in minutes (default 30)")
    serve_p.add_argument("--rate", type=float, default=0.5,
                         help="peak submissions/min per tenant (default 0.5)")
    serve_p.add_argument("--repeat-fraction", type=float, default=0.25,
                         help="fraction of submissions re-using an earlier "
                              "input payload (default 0.25)")
    serve_p.add_argument("--round-every", type=int, default=8,
                         help="dispatch round every N submissions "
                              "(default 8)")
    serve_p.add_argument("--policy", choices=("fair", "fifo"),
                         default="fair",
                         help="admission ordering (default fair)")
    serve_p.add_argument("--seed", type=int, default=0,
                         help="RNG seed (default 0)")
    serve_p.add_argument("--warm", action="store_true",
                         help="enable warm bundled resource units")
    serve_p.add_argument("--autopilot", action="store_true",
                         help="enable the economic autopilot (adaptive "
                              "budget ceilings + forecast-sized warm "
                              "pools); gates on zero accounting drift")
    serve_p.add_argument("--spot-fraction", type=float, default=0.0,
                         help="fraction of tenants registered on the "
                              "preemptible spot tier (default 0)")
    serve_p.add_argument("--budget", type=float, default=None,
                         help="per-tenant budget in dollars (default "
                              "unlimited)")
    serve_p.add_argument("--slo", type=float, default=None,
                         help="per-tenant completion SLO in seconds "
                              "(default none)")
    serve_p.add_argument("--json", action="store_true",
                         help="emit the rollup as JSON")
    _add_dc_args(serve_p)
    _add_cells_arg(serve_p)
    serve_p.set_defaults(handler=cmd_serve)

    gateway_p = sub.add_parser(
        "gateway",
        help="serve the control plane over HTTP/1.1 + WebSocket",
    )
    gateway_p.add_argument("--host", default="127.0.0.1")
    gateway_p.add_argument("--port", type=int, default=8080,
                           help="listen port (0 picks an ephemeral port "
                                "and prints it; default 8080)")
    gateway_p.add_argument("--workers", type=int, default=64,
                           help="bounded worker-pool size (default 64)")
    gateway_p.add_argument("--max-live", type=int, default=512,
                           help="live-submission watermark where fair-"
                                "share load shedding engages "
                                "(default 512)")
    gateway_p.add_argument("--tick-sim-s", type=float, default=0.05,
                           help="simulated seconds per engine tick "
                                "(default 0.05)")
    gateway_p.add_argument("--duration", type=float, default=None,
                           help="shut down gracefully after this many "
                                "real seconds (default: run until "
                                "SIGINT or POST /v1/shutdown)")
    gateway_p.add_argument("--no-telemetry", action="store_true",
                           help="serve with telemetry disabled "
                                "(fleet-scale throughput)")
    gateway_p.add_argument("--policy", choices=("fair", "fifo"),
                           default="fair",
                           help="admission ordering (default fair)")
    gateway_p.add_argument("--smoke", action="store_true",
                           help="run an embedded closed-loop load "
                                "generator, print its JSON report, and "
                                "shut down (CI smoke path)")
    gateway_p.add_argument("--smoke-tenants", type=int, default=50,
                           help="smoke mode: concurrent tenants "
                                "(default 50)")
    gateway_p.add_argument("--smoke-total", type=int, default=200,
                           help="smoke mode: completions to reach "
                                "(default 200)")
    gateway_p.add_argument("--metrics-out", default=None,
                           help="write a Prometheus metrics snapshot "
                                "here before exiting")
    _add_dc_args(gateway_p)
    _add_cells_arg(gateway_p)
    gateway_p.set_defaults(handler=cmd_gateway)

    record_p = sub.add_parser(
        "record",
        help="journal a deterministic workload run (exit 3 on --crash-at)",
    )
    record_p.add_argument("--workload", required=True,
                          help="named workload (fig2-medical, tenant-trace)")
    record_p.add_argument("--journal", required=True,
                          help="journal JSONL path to write")
    record_p.add_argument("--params", default=None,
                          help="workload parameter JSON object")
    record_p.add_argument("--seed", type=int, default=0,
                          help="RNG seed (default 0)")
    record_p.add_argument("--policy", choices=("fair", "fifo"),
                          default="fair")
    record_p.add_argument("--warm", action="store_true",
                          help="enable warm bundled resource units")
    record_p.add_argument("--autopilot", action="store_true",
                          help="enable the economic autopilot for the "
                               "recorded run")
    record_p.add_argument("--snapshot-dir", default=None,
                          help="directory for cadenced snapshots")
    record_p.add_argument("--snapshot-every", type=int, default=None,
                          help="snapshot after every Nth event")
    record_p.add_argument("--crash-at", type=int, default=None,
                          help="simulate a control-plane crash after "
                               "this event id (exit 3)")
    record_p.add_argument("--report", default=None,
                          help="write the canonical final report here")
    _add_dc_args(record_p)
    _add_cells_arg(record_p)
    record_p.set_defaults(handler=cmd_record)

    replay_p = sub.add_parser(
        "replay",
        help="re-execute a journal, verifying fingerprints "
             "(exit 2 on divergence)",
    )
    replay_p.add_argument("journal", help="journal JSONL recorded by "
                                          "udc record")
    replay_p.add_argument("--until", type=int, default=None,
                          help="replay only through this event id")
    replay_p.add_argument("--resume", action="store_true",
                          help="finish a crashed run (snapshot + journal "
                               "tail), appending to the journal")
    replay_p.add_argument("--snapshot-dir", default=None,
                          help="snapshot directory for --resume")
    replay_p.add_argument("--snapshot-every", type=int, default=None,
                          help="keep snapshotting on this cadence while "
                               "resuming")
    replay_p.add_argument("--no-verify", action="store_true",
                          help="skip fingerprint verification")
    replay_p.add_argument("--report", default=None,
                          help="write the canonical final report here")
    replay_p.set_defaults(handler=cmd_replay)

    bisect_p = sub.add_parser(
        "bisect",
        help="binary-search to the first divergent event "
             "(exit 4 when found)",
    )
    bisect_p.add_argument("journal_a", help="journal JSONL")
    bisect_p.add_argument("journal_b", nargs="?", default=None,
                          help="second journal; omitted = probe fresh "
                               "re-executions of journal_a's config")
    bisect_p.set_defaults(handler=cmd_bisect)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
