"""Core discrete-event simulation engine.

The design follows the classic event-heap pattern (SimPy-style) but is
self-contained and deterministic:

* Time is a float; simultaneous events are ordered by a monotonically
  increasing sequence number, so a run with the same seed is bit-for-bit
  reproducible.
* A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
  :class:`Event` objects to suspend; when the event fires, the process is
  resumed with the event's value (or the event's exception is thrown into
  the generator).
* Processes may be interrupted (:meth:`Process.interrupt`), which raises
  :class:`Interrupt` inside the generator at its current suspension point.
  Failure injection in :mod:`repro.distsem.failures` is built on this.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimClock",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries whatever object the interrupter passed
    (for failure injection this is a :class:`~repro.distsem.failures.Failure`).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules its callbacks to run at the current
    simulation time.  Once the callbacks have run it is *processed*.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._state = _PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.callbacks: List[Callable[["Event"], None]] = []

    # -- inspection ------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True once triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._state = _TRIGGERED
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiters see the exception raised at their ``yield``.
        """
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._exception = exception
        self.sim._schedule_event(self)
        return self

    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._state = _TRIGGERED
        self._value = value
        sim._schedule_event(self, delay=delay)


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    Value is a ``(event, value)`` pair identifying which event won.  A
    failure of any constituent propagates.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for event in self.events:
            if event.processed:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((event, event._value))


class AllOf(Event):
    """Fires when all of ``events`` have fired; value is the list of values."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if event.processed:
                if event._exception is not None:
                    self.fail(event._exception)
                    return
                continue
            self._remaining += 1
            event.callbacks.append(self._on_child)
        if self._remaining == 0 and not self.triggered:
            self.succeed([e._value for e in self.events])

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running activity driven by a generator.

    The process is itself an :class:`Event` that fires when the generator
    returns (value = the generator's return value) or raises (failure).
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick-start on the next event-loop tick at the current time.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its suspension point.

        Interrupting a finished process is a silent no-op, which makes
        failure injection idempotent.
        """
        if self.triggered:
            return
        interrupt_event = Event(self.sim)
        interrupt_event._interrupt_cause = Interrupt(cause)  # type: ignore[attr-defined]
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.succeed()

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        # Detach from whatever we were waiting on (relevant for interrupts).
        if self._waiting_on is not None and event is not self._waiting_on:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None

        interrupt = getattr(event, "_interrupt_cause", None)
        try:
            if interrupt is not None:
                target = self._generator.throw(interrupt)
            elif event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as escaped:
            # An uncaught interrupt terminates the process unexceptionally:
            # the interrupter decided its fate.
            self.succeed(escaped.cause)
            return
        except Exception as exc:  # noqa: BLE001 - process failure propagates
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        self._waiting_on = target
        if target.processed:
            # Already happened: resume on the next tick so ordering stays FIFO.
            relay = Event(self.sim)
            relay._value = target._value
            relay._exception = target._exception
            relay._state = _TRIGGERED
            relay.callbacks.append(self._resume)
            self.sim._schedule_event(relay)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)


class SimClock:
    """A picklable ``() -> now`` callable bound to a simulator.

    Components that need the current time but must survive snapshot
    serialization (pool utilization meters, for one) hold one of these
    instead of a ``lambda: sim.now`` closure — lambdas cannot be
    pickled, and the replay subsystem snapshots whole control planes.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator"):
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now

    def __getstate__(self):
        return self.sim

    def __setstate__(self, state):
        self.sim = state


class Simulator:
    """The event loop: a clock plus a heap of triggered events."""

    def __init__(self):
        self._now = 0.0
        self._seq = 0
        self._heap: List[tuple] = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def is_quiescent(self) -> bool:
        """True when no triggered event is pending on the heap.

        At a quiescent point every process generator has either finished
        or is parked on an event nothing will ever fire — running the
        clock is a no-op.  This is the snapshot boundary for
        :mod:`repro.replay`: between events, never inside one.
        """
        return not self._heap

    # -- public scheduling API --------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        event = self.timeout(when - self._now)
        event.callbacks.append(lambda _e: callback())
        return event

    # -- engine internals --------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def step(self) -> None:
        """Process the single next event."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap time went backwards")
        self._now = when
        event._process()

    def run(self, until: Optional[float] = None, until_event: Optional[Event] = None) -> Any:
        """Run until the heap drains, ``until`` time passes, or an event fires.

        Returns ``until_event.value`` when given, else ``None``.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past")
        while self._heap:
            if until_event is not None and until_event.processed:
                return until_event.value
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return None
            self.step()
        if until_event is not None:
            if until_event.processed:
                return until_event.value
            raise SimulationError(
                "simulation ran out of events before until_event fired (deadlock?)"
            )
        if until is not None and until > self._now:
            self._now = until
        return None
