"""Waitable resources built on the event engine.

Three primitives cover every coordination pattern in the reproduction:

* :class:`Store` — an unbounded (or bounded) FIFO of items; actors'
  mailboxes, the fabric's in-flight message queues, and the serverless
  baseline's request queues are Stores.
* :class:`Gate` — a level-triggered condition; processes wait until it is
  opened (used for barrier-style startup and checkpoint quiescence).
* :class:`CapacityResource` — a counted resource with FIFO waiters; models
  anything with finite concurrent capacity (a GPU's execution slots, a
  server's cores in the IaaS baseline).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.simulator.engine import Event, SimulationError, Simulator

__all__ = ["CapacityResource", "Gate", "Store"]


class Store:
    """FIFO item queue with waitable ``get`` and (optionally bounded) ``put``."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("Store capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event fires once it is accepted."""
        event = Event(self.sim)
        if self._getters:
            # Hand directly to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Dequeue the oldest item; the returned event fires with the item."""
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            event.succeed(item)
            # Capacity freed: admit the oldest blocked putter, if any.
            if self._putters:
                put_event, put_item = self._putters.popleft()
                self._items.append(put_item)
                put_event.succeed()
        else:
            self._getters.append(event)
        return event


class Gate:
    """A level-triggered condition that processes can wait on.

    While closed, :meth:`wait` returns events that fire only when the gate
    opens.  While open, :meth:`wait` returns an already-fired event.
    """

    def __init__(self, sim: Simulator, open_: bool = False):
        self.sim = sim
        self._open = open_
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        if self._open:
            return
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        event = Event(self.sim)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event


class CapacityResource:
    """A counted resource; acquires block FIFO when capacity is exhausted."""

    def __init__(self, sim: Simulator, capacity: int):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[tuple] = deque()  # (event, amount)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self, amount: int = 1) -> Event:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"acquire({amount}) invalid for capacity {self.capacity}"
            )
        event = Event(self.sim)
        if not self._waiters and self._in_use + amount <= self.capacity:
            self._in_use += amount
            event.succeed(amount)
        else:
            self._waiters.append((event, amount))
        return event

    def release(self, amount: int = 1) -> None:
        if amount <= 0 or amount > self._in_use:
            raise SimulationError(f"release({amount}) exceeds in-use {self._in_use}")
        self._in_use -= amount
        # Admit waiters in FIFO order while they fit (no overtaking).
        while self._waiters:
            event, want = self._waiters[0]
            if self._in_use + want > self.capacity:
                break
            self._waiters.popleft()
            self._in_use += want
            event.succeed(want)
