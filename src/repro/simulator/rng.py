"""Named, independently seeded random streams.

Every consumer of randomness in the reproduction (arrival generators,
failure injection, placement jitter, workload synthesis) draws from its own
named stream.  Streams are derived deterministically from a single run seed
and the stream name, so:

* the same run seed reproduces a run exactly;
* adding a new randomness consumer never perturbs existing streams
  (the classic "one shared Random" pitfall in simulators).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))
