"""Named, independently seeded random streams.

Every consumer of randomness in the reproduction (arrival generators,
failure injection, placement jitter, workload synthesis) draws from its own
named stream.  Streams are derived deterministically from a single run seed
and the stream name, so:

* the same run seed reproduces a run exactly;
* adding a new randomness consumer never perturbs existing streams
  (the classic "one shared Random" pitfall in simulators).
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))

    # -- state capture / restore (checkpoint & replay) ---------------------

    def stream_names(self) -> list:
        """Names of every stream drawn so far, sorted."""
        return sorted(self._streams)

    def getstate(self, name: str) -> Any:
        """The named stream's generator state (creates it on first use,
        so capture-before-first-draw round-trips too)."""
        return self.stream(name).getstate()

    def setstate(self, name: str, state: Any) -> None:
        """Restore one stream to a previously captured state."""
        self.stream(name).setstate(state)

    def capture(self) -> Dict[str, Any]:
        """Snapshot every registered stream's state, keyed by name."""
        return {name: rng.getstate() for name, rng in self._streams.items()}

    def restore(self, states: Dict[str, Any]) -> None:
        """Restore streams from a :meth:`capture` snapshot.

        Streams absent from ``states`` are left alone (they will be
        derived fresh from the root seed on first draw, exactly as in
        the original run); unknown names are created then restored.
        """
        for name in sorted(states):
            self.setstate(name, states[name])

    def state_fingerprint(self) -> str:
        """A stable hex digest over every stream's current state.

        Two registries with the same root seed and draw history agree;
        one extra draw on any stream changes the digest — the per-event
        divergence probe the replay journal records.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.root_seed).encode("utf-8"))
        for name in sorted(self._streams):
            digest.update(name.encode("utf-8"))
            digest.update(repr(self._streams[name].getstate()).encode("utf-8"))
        return digest.hexdigest()
