"""Deterministic discrete-event simulation engine.

This package is the substrate beneath every other subsystem in the
reproduction: the disaggregated hardware model, the execution environments,
the distributed-semantics protocols, and the UDC runtime all execute as
processes on a single :class:`~repro.simulator.engine.Simulator`.

The engine is intentionally small and fully deterministic:

* a single event heap ordered by ``(time, sequence)``;
* generator-based processes (`yield` an event to suspend);
* interruptible processes (used for failure injection);
* waitable resources (:class:`~repro.simulator.resources.Store`,
  :class:`~repro.simulator.resources.Gate`,
  :class:`~repro.simulator.resources.CapacityResource`);
* named, seeded random streams (:class:`~repro.simulator.rng.RngRegistry`)
  so that adding a new consumer of randomness never perturbs existing ones.
"""

from repro.simulator.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simulator.resources import CapacityResource, Gate, Store
from repro.simulator.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "CapacityResource",
    "Event",
    "Gate",
    "Interrupt",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
