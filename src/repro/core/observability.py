"""Structured observability: hierarchical spans and a metrics registry.

The paper's runtime loop is telemetry-driven ("UDC would perform fine
tuning ... based on telemetry data collected at the run time", §3.2), and
diagnosing the tail-latency and utilization claims at fleet scale needs
more than a flat event list.  This module supplies the two table-stakes
primitives (PAPERS.md: Dapper; Monarch):

* :class:`Span` — a timestamped, hierarchical trace span with *phase
  attribution*.  The runtime, scheduler, warm pool, and resilience
  machinery emit spans for every stage of a module's life:
  ``schedule → allocate → env-acquire → execute → retry/hedge/recover``.
  Spans carry a parent id, so one task's boot, transfers, compute,
  retries, and speculative hedges form a tree rooted at its lifecycle
  span (rendered by ``udc trace`` via :mod:`repro.core.timeline`).

* :class:`MetricsRegistry` — Prometheus-style counters, gauges, and
  histograms, maintained incrementally at emit time (no event-list
  re-scan) and renderable as a text exposition snapshot
  (:meth:`MetricsRegistry.render_prometheus`) or JSON
  (:meth:`MetricsRegistry.to_dict`), surfaced by ``udc metrics``.

Both are owned by :class:`~repro.core.telemetry.Telemetry`, which keeps
the PR 2 guarantee: with ``enabled=False`` every span/metric call is a
fast no-op (``NULL_SPAN`` is returned; the registry is never even
constructed), so disabled observability stays off the allocator hot path.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
]

# --------------------------------------------------------------------- spans

#: Canonical phase vocabulary.  Spans may use any string, but the emitters
#: in this repo stick to these so dashboards and the golden tests can key
#: off them.
PHASES = (
    "lifecycle",    # a module's whole run (the root span)
    "schedule",     # scheduler decision-making / dependency waits
    "allocate",     # pool allocation (compute, memory, standbys)
    "env-acquire",  # environment boot: cold start or warm-pool rebind
    "execute",      # transfers + chunked compute
    "retry",        # a re-execution attempt after a failure
    "hedge",        # a speculative duplicate attempt
    "recover",      # backoff + migration + checkpoint restore
    "service",      # serving-layer dispatch rounds and batched placement
)


@dataclass
class Span:
    """One timed operation in a trace tree.

    ``end_s`` is ``None`` while the span is open; :meth:`duration_s`
    treats an open span as zero-length.  ``status`` is ``"running"``
    until ended, then ``"ok"`` / ``"error"`` / ``"cancelled"`` /
    ``"abandoned"`` / ``"interrupted"``.
    """

    span_id: int
    parent_id: Optional[int]
    module: str
    name: str
    phase: str
    start_s: float
    end_s: Optional[float] = None
    status: str = "running"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "module": self.module,
            "name": self.name,
            "phase": self.phase,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _NullSpan(Span):
    """The span returned when telemetry is disabled: writes vanish."""

    def __init__(self):
        super().__init__(span_id=-1, parent_id=None, module="", name="",
                         phase="", start_s=0.0)

    @property
    def attrs(self) -> Dict[str, object]:  # type: ignore[override]
        # A fresh dict per access: callers may write, nothing accumulates.
        return {}

    @attrs.setter
    def attrs(self, value) -> None:
        pass


#: Singleton no-op span handed out by disabled telemetry so emitters never
#: branch on "did I get a span back".
NULL_SPAN = _NullSpan()


# -------------------------------------------------------------------- metrics

#: Default histogram bucket upper bounds (seconds): spans sub-millisecond
#: control-plane work through multi-minute cold starts.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0,
)

#: Canonical help strings, attached the first time a family is created so
#: emit sites stay one-liners.
METRIC_HELP: Dict[str, str] = {
    "udc_placements_total": "Module placements performed, by module kind.",
    "udc_placement_latency_seconds":
        "Wall-clock latency of one scheduler placement decision.",
    "udc_env_startup_seconds":
        "Simulated environment boot time (cold or warm), per attempt.",
    "udc_task_wall_seconds": "Simulated end-to-end wall time per task module.",
    "udc_retries_total": "Task re-executions after failures.",
    "udc_failures_total": "Failure interrupts delivered to task attempts.",
    "udc_deadline_misses_total": "Modules abandoned at their deadline (SLO).",
    "udc_hedges_total": "Speculative duplicate attempts launched.",
    "udc_hedge_wins_total": "Hedged tasks where the duplicate finished first.",
    "udc_hedge_losses_total":
        "Hedges that lost the race or died before finishing.",
    "udc_breaker_trips_total": "Circuit breakers newly opened.",
    "udc_warm_pool_hits_total": "Environment acquisitions served warm.",
    "udc_warm_pool_misses_total": "Environment acquisitions that cold-start.",
    "udc_warm_pool_outage_misses_total":
        "Warm-pool misses attributable to an injected outage.",
    "udc_warm_pool_prewarmed_total": "Shells stocked by prewarm/refill.",
    "udc_warm_pool_hit_rate": "Lifetime warm-pool hit rate.",
    "udc_pool_utilization":
        "Instantaneous fraction of live pool capacity in use.",
    "udc_pool_mean_utilization": "Time-weighted mean pool utilization.",
    "udc_pool_capacity_units": "Live pool capacity, in device units.",
    "udc_pool_used_units": "Live pool capacity currently allocated.",
    "udc_pool_peak_used_units": "High-water mark of allocated capacity.",
    "udc_breakers_open": "Circuit breakers currently open.",
    "udc_tenant_submissions_total":
        "Submissions received by the serving layer, per tenant.",
    "udc_tenant_admitted_total":
        "Submissions admitted straight into the runtime, per tenant.",
    "udc_tenant_queued_total":
        "Submissions parked in the admission queue, per tenant.",
    "udc_tenant_rejections_total":
        "Submissions rejected at the front door by quota, per tenant.",
    "udc_tenant_cache_hits_total":
        "Submissions served from the result cache, per tenant.",
    "udc_tenant_cache_misses_total":
        "Submissions that missed the result cache, per tenant.",
    "udc_tenant_completed_total":
        "Submissions that ran to completion, per tenant.",
    "udc_tenant_unplaceable_total":
        "Submissions that could never be placed, per tenant.",
    "udc_tenant_cost_dollars_total":
        "Settled execution cost, per tenant, in dollars.",
    "udc_tenant_billed_dollars_total":
        "Dollars billed through the tenant's pricing plan (spot discounts "
        "land here; equals cost on the firm tier).",
    "udc_budget_rejections_total":
        "Submissions shed at the front door for an exhausted budget "
        "ceiling, per tenant.",
    "udc_slo_misses_total":
        "Completions whose queue wait + makespan blew the declared SLO, "
        "per tenant.",
    "udc_preemptions_total":
        "Spot-tier submissions evicted so firm-tier work could place.",
    "udc_tenant_preemptions_total":
        "Preemptions suffered, per (victim) tenant.",
    "udc_warm_pool_target_depth":
        "Forecast-driven shelf depth set by the autopilot, per env shape.",
    "udc_tenant_queue_wait_seconds":
        "Simulated time a submission waited in the admission queue.",
    "udc_service_rounds_total": "Serving-layer dispatch rounds executed.",
    "udc_service_dispatched_total":
        "Buffered submissions dispatched by scheduling rounds.",
    "udc_lint_checks_total":
        "Submissions run through the static analyzer at the front door.",
    "udc_lint_findings_total":
        "Static-analysis findings surfaced at the front door, by severity.",
    "udc_lint_rejections_total":
        "Submissions rejected by error-severity lint findings, per tenant.",
}

#: Metric families measured in host wall-clock time rather than simulated
#: time.  Everything else in a run is deterministic for a given seed;
#: these are not, so JSON snapshots embedded in run reports exclude them
#: by default (``MetricsRegistry.to_dict``) to keep report bytes
#: reproducible.  The Prometheus text rendering always includes them.
WALL_CLOCK_METRICS = frozenset({
    "udc_placement_latency_seconds",
    # Gateway families measure real network/event-loop time, which
    # varies run to run like placement latency does.
    "udc_gateway_request_seconds",
    "udc_gateway_tick_seconds",
})

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the
    implicit final ``+Inf`` bucket equals ``count``.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from the cumulative buckets (upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for bound, cumulative in zip(self.buckets, self.bucket_counts):
            if cumulative >= rank:
                return bound
        return math.inf


@dataclass
class _Family:
    """All instruments sharing one metric name."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    instruments: Dict[LabelKey, object] = field(default_factory=dict)


class MetricsRegistry:
    """Named counters/gauges/histograms with optional labels.

    Instruments are created on first use; a name is bound to one kind for
    the registry's lifetime (mixing kinds raises).  Rendering never
    mutates state, so snapshots are safe to take mid-run.
    """

    def __init__(self):
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_text: str = "",
                buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(
                name=name, kind=kind,
                help=help_text or METRIC_HELP.get(name, ""),
                buckets=buckets,
            )
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None,
                help: str = "") -> Counter:
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = family.instruments[key] = Counter()
        return instrument

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None,
              help: str = "") -> Gauge:
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = family.instruments[key] = Gauge()
        return instrument

    def histogram(self, name: str, labels: Optional[Dict[str, str]] = None,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        family = self._family(name, "histogram", help, buckets)
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = family.instruments[key] = Histogram(family.buckets)
        return instrument

    # -- reads ---------------------------------------------------------------

    def value(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> float:
        """Current value of a counter/gauge (0.0 when never emitted)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        instrument = family.instruments.get(_label_key(labels))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise ValueError(f"{name!r} is a histogram; read it via family")
        return instrument.value

    def families(self) -> Iterable[_Family]:
        return (self._families[name] for name in sorted(self._families))

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _fmt_labels(key: LabelKey, extra: str = "") -> str:
        parts = [f'{k}="{v}"' for k, v in key]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    @staticmethod
    def _fmt_value(value: float) -> str:
        return f"{value:g}"

    def render_prometheus(self) -> str:
        """Text exposition snapshot (Prometheus format, version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.instruments):
                instrument = family.instruments[key]
                if isinstance(instrument, Histogram):
                    for bound, bucket in zip(instrument.buckets,
                                             instrument.bucket_counts):
                        le = self._fmt_labels(key, f'le="{bound:g}"')
                        lines.append(
                            f"{family.name}_bucket{le} {bucket}"
                        )
                    le = self._fmt_labels(key, 'le="+Inf"')
                    lines.append(
                        f"{family.name}_bucket{le} {instrument.count}"
                    )
                    lines.append(
                        f"{family.name}_sum{self._fmt_labels(key)} "
                        f"{self._fmt_value(instrument.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{self._fmt_labels(key)} "
                        f"{instrument.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{self._fmt_labels(key)} "
                        f"{self._fmt_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self, include_wall_clock: bool = False) -> Dict[str, object]:
        """JSON-serializable snapshot, keyed by metric name.

        Wall-clock families (:data:`WALL_CLOCK_METRICS`) are skipped
        unless ``include_wall_clock`` — they vary run to run and would
        break byte-identical report reproducibility.
        """
        out: Dict[str, object] = {}
        for family in self.families():
            if not include_wall_clock and family.name in WALL_CLOCK_METRICS:
                continue
            values = []
            for key in sorted(family.instruments):
                instrument = family.instruments[key]
                entry: Dict[str, object] = {"labels": dict(key)}
                if isinstance(instrument, Histogram):
                    entry["buckets"] = {
                        f"{bound:g}": count
                        for bound, count in zip(instrument.buckets,
                                                instrument.bucket_counts)
                    }
                    entry["buckets"]["+Inf"] = instrument.count
                    entry["sum"] = instrument.sum
                    entry["count"] = instrument.count
                else:
                    entry["value"] = instrument.value
                values.append(entry)
            out[family.name] = {
                "type": family.kind, "help": family.help, "values": values,
            }
        return out
