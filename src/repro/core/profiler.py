"""Dry-run profiling for resource-aspect inference (paper §3.2).

*"We believe a viable solution is a combination of developer knowledge,
program analysis, and 'dry-run' profiling ... The IT team or the cloud
provider will then use tools that UDC provides (e.g., profilers,
cross-platform compilers, etc.) to perform dry runs that execute the
program with developer-supplied test inputs on different types of hardware
within the developer-defined set.  The actual resource usage observed for
each task is then used as the resource aspect of the task."*

:class:`DryRunProfiler` runs a task module against each device type in the
developer's candidate set on a scratch simulator, measures wall time and
cost per run, and recommends a :class:`~repro.core.aspects.ResourceAspect`
for a latency target or a cost ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.appmodel.module import TaskModule
from repro.core.aspects import ResourceAspect
from repro.hardware.devices import DEFAULT_SPECS, DeviceSpec, DeviceType

__all__ = ["DryRunProfiler", "ProfileEntry", "ProfileResult"]


@dataclass(frozen=True)
class ProfileEntry:
    """Measured behaviour of one (device type, amount) configuration."""

    device_type: DeviceType
    amount: float
    wall_seconds: float
    cost: float          # $ for the run at on-demand unit prices
    utilization: float   # fraction of the allocation the task kept busy


@dataclass
class ProfileResult:
    """All dry-run measurements for one task."""

    task: str
    entries: List[ProfileEntry] = field(default_factory=list)

    def fastest(self) -> ProfileEntry:
        return min(self.entries, key=lambda e: (e.wall_seconds, e.cost))

    def cheapest(self) -> ProfileEntry:
        return min(self.entries, key=lambda e: (e.cost, e.wall_seconds))

    def meeting_latency(self, max_seconds: float) -> Optional[ProfileEntry]:
        """Cheapest configuration meeting a latency target, if any."""
        ok = [e for e in self.entries if e.wall_seconds <= max_seconds]
        return min(ok, key=lambda e: e.cost) if ok else None


class DryRunProfiler:
    """Profiles task modules across their candidate hardware."""

    def __init__(self, specs: Optional[Dict[DeviceType, DeviceSpec]] = None):
        self.specs = specs or DEFAULT_SPECS

    def profile(
        self,
        task: TaskModule,
        amounts: Optional[List[float]] = None,
    ) -> ProfileResult:
        """Dry-run ``task`` on every candidate type at each amount.

        Amounts default to {1, 2, 4} units clipped to device capacity.
        The measured utilization exposes over-allocation: amounts beyond
        the task's parallelism cap run no faster but cost more.
        """
        result = ProfileResult(task=task.name)
        for device_type in sorted(task.device_candidates, key=lambda d: d.value):
            spec = self.specs.get(device_type)
            if spec is None or spec.compute_rate <= 0:
                continue
            for amount in amounts or [1.0, 2.0, 4.0]:
                amount = max(min(amount, spec.capacity), spec.min_grain)
                wall = task.execution_seconds(
                    device_type, amount, spec.compute_rate
                )
                cost = amount * spec.unit_price_hour * (wall / 3600.0)
                utilization = task.usable_amount(amount) / amount
                entry = ProfileEntry(
                    device_type=device_type,
                    amount=amount,
                    wall_seconds=wall,
                    cost=cost,
                    utilization=utilization,
                )
                if not any(
                    e.device_type == entry.device_type and e.amount == entry.amount
                    for e in result.entries
                ):
                    result.entries.append(entry)
        if not result.entries:
            raise ValueError(
                f"task {task.name}: no profilable candidate device types"
            )
        return result

    def recommend(
        self,
        task: TaskModule,
        latency_target_s: Optional[float] = None,
        amounts: Optional[List[float]] = None,
    ) -> ResourceAspect:
        """Turn dry-run measurements into a concrete resource aspect.

        With a latency target: the cheapest configuration meeting it
        (falling back to the fastest when none does).  Without: the
        cheapest overall.
        """
        profile = self.profile(task, amounts=amounts)
        if latency_target_s is not None:
            entry = profile.meeting_latency(latency_target_s) or profile.fastest()
        else:
            entry = profile.cheapest()
        return ResourceAspect(device=entry.device_type, amount=entry.amount)
