"""Admission-queue ordering policies.

When placement fails for lack of capacity, ``queue_if_full`` submissions
park in the runtime's admission queue and re-enter as running work
releases resources.  *Which* parked submission gets the freed capacity is
a policy decision: the paper's provider serves many user-defined clouds
from one substrate (§2), so admission order is where tenant fairness is
enforced.

The runtime orders every retry round by :meth:`AdmissionPolicy.sort_key`
and notifies the policy of each successful admission, making the order a
pure, deterministic function of (tenant, submission seq) — previously
parked submissions re-entered in insertion order only, with no way to
prioritize and no defined tie-break.

* :class:`FifoAdmission` — insertion order (the historical behavior,
  now with an explicit seq tie-break).
* :class:`WeightedFairShare` — stride scheduling over per-tenant virtual
  time: each admission advances the tenant's clock by ``1 / weight``, so
  long-run admission rates are proportional to weights and a starved
  tenant's next submission always sorts ahead.  Ties (equal virtual
  time) break by submission seq, keeping the order deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["AdmissionPolicy", "FifoAdmission", "WeightedFairShare"]


class AdmissionPolicy:
    """Orders pending submissions; notified as admissions succeed.

    Keys are compared across one queue, so a policy only needs internal
    consistency: lower sorts first, and keys must embed ``seq`` (every
    submission's unique monotonic id) to guarantee a total, deterministic
    order even when the policy ranks two tenants equal.
    """

    def sort_key(self, tenant: str, seq: int) -> Tuple:
        raise NotImplementedError

    def on_admitted(self, tenant: str) -> None:
        """Called once per successful admission (direct or retried)."""


class FifoAdmission(AdmissionPolicy):
    """First queued, first retried — submission seq IS arrival order."""

    def sort_key(self, tenant: str, seq: int) -> Tuple:
        return (seq,)

    def on_admitted(self, tenant: str) -> None:
        pass


class WeightedFairShare(AdmissionPolicy):
    """Stride scheduling: admission rates proportional to tenant weights.

    A tenant first seen mid-run starts at the minimum live virtual time
    (not zero), so a latecomer competes fairly instead of monopolizing
    the queue until it "catches up".
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None,
                 default_weight: float = 1.0):
        if default_weight <= 0:
            raise ValueError(f"weights must be positive, got {default_weight}")
        self.default_weight = default_weight
        self._weights: Dict[str, float] = {}
        self._vtime: Dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            self.set_weight(tenant, weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(
                f"tenant {tenant!r}: weight must be positive, got {weight}"
            )
        self._weights[tenant] = weight

    def weight_of(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    def _vtime_of(self, tenant: str) -> float:
        if tenant not in self._vtime:
            floor = min(self._vtime.values()) if self._vtime else 0.0
            self._vtime[tenant] = floor
        return self._vtime[tenant]

    def sort_key(self, tenant: str, seq: int) -> Tuple:
        return (self._vtime_of(tenant), seq)

    def on_admitted(self, tenant: str) -> None:
        self._vtime[tenant] = (
            self._vtime_of(tenant) + 1.0 / self.weight_of(tenant)
        )
