"""Placement cells and the cross-cell router (sharded control plane).

One global :class:`~repro.core.scheduler.UdcScheduler` over one global
set of pool indexes stops scaling past a few thousand devices: every
allocate pays an index update proportional to the whole fleet, so
BENCH_PERF.json shows placement throughput *falling* as the fleet grows.
The fix — standard for cloud control planes (Buyya et al., "A Manifesto
for Future Generation Cloud Computing") — is to partition the
datacenter into **placement cells**, each a rack-group with its own
pools, scheduler, and batch/admission memo state, fronted by a
**router** that picks a cell from cheap coarse aggregates and spills to
the next cell on rejection.

Determinism contract
--------------------

Everything here is a pure function of (datacenter spec, cell count,
prior placements):

* :func:`partition_racks` splits the sorted ``(pod, rack)`` key list
  into contiguous near-equal groups — no hashing, no iteration over
  sets.
* :class:`CellRouter` orders cells by ``(-score, cell_id)`` where the
  score reads only the cells' incrementally-maintained pool aggregates
  (PR 2's accounting), so the same command sequence routes identically
  on every run — placements stay replayable under ``repro.replay``.
* Spill is a deterministic walk of that order; the submission parks on
  the first-choice cell's admission queue only after every cell
  rejected.

The single-cell configuration bypasses nothing and adds nothing: with
``cells=1`` the service talks to one runtime exactly as before, and the
golden traces in ``tests/test_placement_equivalence.py`` pin the
byte-identity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.hardware.devices import DeviceType
from repro.hardware.pools import PoolSet, ResourcePool
from repro.hardware.topology import Datacenter
from repro.simulator.engine import SimClock

__all__ = [
    "CellRouter",
    "estimate_demand",
    "partition_datacenter",
    "partition_racks",
]

#: mirrors the scheduler's media fallback for unpinned data modules —
#: the router only needs the *first* viable medium for a coarse estimate
_HOT_MEDIA = [DeviceType.DRAM, DeviceType.NVM, DeviceType.SSD, DeviceType.HDD]
_COLD_MEDIA = [DeviceType.HDD, DeviceType.SSD, DeviceType.NVM, DeviceType.DRAM]


def partition_racks(
    rack_keys: Sequence[Tuple[int, int]], n_cells: int
) -> List[List[Tuple[int, int]]]:
    """Split sorted ``(pod, rack)`` keys into ``n_cells`` contiguous
    near-equal groups (earlier groups take the remainder).

    Contiguous-by-sort-order keeps a cell's racks topologically close
    (same pod before crossing pods) and makes the assignment a pure
    function of the spec — no hashing involved.
    """
    keys = sorted(rack_keys)
    if n_cells < 1:
        raise ValueError(f"cell count must be >= 1, got {n_cells}")
    if n_cells > len(keys):
        raise ValueError(
            f"cannot partition {len(keys)} racks into {n_cells} cells"
        )
    base, extra = divmod(len(keys), n_cells)
    groups: List[List[Tuple[int, int]]] = []
    start = 0
    for index in range(n_cells):
        size = base + (1 if index < extra else 0)
        groups.append(keys[start:start + size])
        start += size
    return groups


def partition_datacenter(
    datacenter: Datacenter, n_cells: int
) -> List[Datacenter]:
    """Carve ``datacenter`` into ``n_cells`` cell-view datacenters.

    Each cell shares the parent's simulator, spec, fabric, and switch
    locations (the physical substrate is one datacenter) but owns fresh
    :class:`ResourcePool` indexes over only its rack-group's devices —
    the per-cell state whose size bounds per-placement cost.  Devices
    are *moved*: the parent's pools are emptied (see
    :meth:`ResourcePool.detach_all_devices`) so no stale second index
    can drift, and the parent datacenter must not be used for placement
    afterwards.

    Every cell gets a pool for every device type the spec names, even
    when its racks carry none of that type (heterogeneous
    ``rack_profiles``): an empty pool reports zero free capacity, which
    routes demand — and spills placements — to the cells that do carry
    the type.
    """
    rack_keys = sorted(
        {(d.location.pod, d.location.rack) for d in datacenter.devices}
    )  # det: ok — sorted immediately
    groups = partition_racks(rack_keys, n_cells)
    cell_of_rack: Dict[Tuple[int, int], int] = {}
    for cell_id, group in enumerate(groups):
        for key in group:
            cell_of_rack[key] = cell_id

    indexed = all(pool.indexed for pool in datacenter.pools)
    cells: List[Datacenter] = []
    for cell_id in range(n_cells):
        pools = PoolSet()
        for device_type in datacenter.spec.all_device_types():
            pool = ResourcePool(
                device_type, clock=SimClock(datacenter.sim), indexed=indexed
            )
            pool.cell = str(cell_id)
            pools.pools[device_type] = pool
        cells.append(
            Datacenter(
                sim=datacenter.sim,
                spec=datacenter.spec,
                pools=pools,
                fabric=datacenter.fabric,
                devices=[],
                switch_locations=list(datacenter.switch_locations),
            )
        )

    for device_type in datacenter.spec.all_device_types():
        parent_pool = datacenter.pool(device_type)
        for device in parent_pool.detach_all_devices():
            cell = cells[cell_of_rack[device.location.pod,
                                      device.location.rack]]
            cell.pool(device_type).add_device(device)
            cell.devices.append(device)
    for cell in cells:
        cell.devices.sort(key=lambda d: d.seq)
    datacenter.devices = []
    return cells


def estimate_demand(
    app: ModuleDAG, datacenter: Datacenter
) -> Dict[DeviceType, float]:
    """Coarse resource demand of one application, by device type.

    This is the router's *hint*, not an admission decision: task modules
    count one minimum grain of their statically-cheapest candidate type
    (the same price-per-work rule the scheduler applies before capacity
    gating), data modules their ``size_gb`` on the first medium of the
    scheduler's hot/cold preference order.  Definition aspects (explicit
    amounts, device pins) are deliberately not parsed here — routing
    must stay cheap — and any resulting misestimate is corrected by the
    rejection-spill fallback.
    """
    spec = datacenter.spec
    demand: Dict[DeviceType, float] = {}
    for name in app.modules:
        module = app.modules[name]
        if isinstance(module, TaskModule):
            candidates = [
                d for d in sorted(module.device_candidates,
                                  key=lambda d: d.value)
                if d in datacenter.pools
            ]
            if not candidates:
                continue
            chosen = min(
                candidates,
                key=lambda d: spec.spec_for(d).unit_price_hour
                / max(spec.spec_for(d).compute_rate, 1e-9),
            )
            demand[chosen] = demand.get(chosen, 0.0) \
                + spec.spec_for(chosen).min_grain
        elif isinstance(module, DataModule):
            order = _HOT_MEDIA if module.hot else _COLD_MEDIA
            for media in order:
                if media in datacenter.pools:
                    demand[media] = demand.get(media, 0.0) + module.size_gb
                    break
    return demand


class CellRouter:
    """Deterministic cell choice from per-cell free-capacity vectors.

    The router never scans devices: a cell's score reads only
    ``pool.total_free`` / ``pool.max_free()`` — O(1) aggregates the
    pools maintain incrementally on every allocate/release — so routing
    cost is O(cells × demanded types) regardless of fleet size.

    Scoring: a cell is *infeasible* for a demand entry when its pool
    cannot host even one device-sized shard of it (``max_free`` below
    the entry's single-device slice); feasible cells are ranked by
    worst-case headroom ``min(free − demand)`` so load spreads toward
    the emptiest cell.  Ties break on the lower cell id.  The returned
    order is the spill order: callers try cells front to back.
    """

    def __init__(self, cells: List[Datacenter], telemetry=None):
        self.cells = cells
        self.telemetry = telemetry
        #: spills observed (first-choice cell rejected), telemetry aside
        self.spills = 0
        self.routed = 0

    def free_vector(self, cell_id: int) -> Dict[DeviceType, float]:
        """The cell's free capacity by device type (O(1) per type)."""
        cell = self.cells[cell_id]
        return {
            device_type: cell.pool(device_type).total_free
            for device_type in cell.spec.all_device_types()
        }

    def _score(
        self, cell: Datacenter, demand: Dict[DeviceType, float]
    ) -> Tuple[int, float]:
        """(feasible, headroom): feasible sorts before infeasible, then
        the most worst-case headroom wins."""
        feasible = 1
        headroom = float("inf")
        for device_type, amount in demand.items():
            if device_type not in cell.pools:
                return 0, float("-inf")
            pool = cell.pool(device_type)
            shard = min(amount, cell.spec.spec_for(device_type).capacity)
            if pool.max_free() + 1e-9 < shard:
                feasible = 0
            headroom = min(headroom, pool.total_free - amount)
        return feasible, headroom

    def order(self, demand: Dict[DeviceType, float]) -> List[int]:
        """Cells to try, best first; always covers every cell."""
        scores = [
            self._score(cell, demand) for cell in self.cells
        ]
        return sorted(
            range(len(self.cells)),
            key=lambda i: (-scores[i][0], -scores[i][1], i),
        )

    def record_placement(self, cell_id: int, hops: int) -> None:
        """Account one routed placement; ``hops`` > 0 means the first
        ``hops`` cells in router order rejected it (a spill)."""
        self.routed += 1
        if hops > 0:
            self.spills += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("udc_router_routed_total",
                               labels={"cell": str(cell_id)})
            if hops > 0:
                self.telemetry.inc("udc_router_spills_total",
                                   labels={"cell": str(cell_id)})

    def snapshot(self, registry) -> None:
        """Collector-style gauges: per-cell free capacity by type."""
        for cell_id in range(len(self.cells)):
            for device_type, free in self.free_vector(cell_id).items():
                registry.gauge(
                    "udc_cell_free_units",
                    {"cell": str(cell_id),
                     "device_type": device_type.value},
                ).set(free)
