"""The UDC runtime: admission → placement → execution → verification.

This is the paper's control plane, end to end:

1. **Admission** — validate the application DAG, parse the declarative
   user definition, fill undeclared aspects with provider defaults
   (Principle 2), detect and resolve cross-module consistency conflicts
   (§3.4).
2. **Placement** — data modules become replicated stores on
   storage/memory pools; task modules get exact-amount compute + memory
   allocations, an execution environment satisfying their security
   aspect, and a vertically-bundled resource unit (§3.2, §3.3,
   Principle 3).
3. **Execution** — tasks run as simulator processes: environment startup
   (warm-pool aware), input transfers over the fabric (paying data
   protection costs), chunked compute with optional checkpoints,
   failure-interrupt handling with re-placement and recovery per the
   distributed aspect, telemetry sampling, and adaptive tuning.
4. **Verification** — every object gets a fulfillment record; attestable
   environments get hardware-rooted quotes users can verify (§4).

Allocations are held exactly as long as the module needs them — task
allocations release at task completion (pay-for-what-you-use, the paper's
economic core), data allocations at teardown.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import TaskModule
from repro.core.admission import AdmissionPolicy, FifoAdmission
from repro.core.aspects import DistributedAspect
from repro.core.bundle import BundleManager
from repro.core.conflicts import ConflictPolicy, ConflictResolution, resolve_conflicts
from repro.core.defaults import provider_defaults
from repro.core.objects import UDCObject
from repro.core.observability import MetricsRegistry, Span
from repro.core.report import ModuleRow, RunResult
from repro.core.scheduler import TaskPlacement, UdcScheduler
from repro.core.spec import UserDefinition, parse_definition
from repro.core.telemetry import Telemetry
from repro.core.tuner import FineTuner
from repro.core.verify import FulfillmentRecord
from repro.distsem.checkpoint import CheckpointStore
from repro.distsem.failures import Failure, FailureInjector
from repro.distsem.network_order import SwitchSequencer
from repro.distsem.recovery import RecoveryStrategy, plan_recovery
from repro.distsem.resilience import (
    CircuitBreakerRegistry,
    DeadlineMiss,
    HedgeCancelled,
    Preempted,
)
from repro.distsem.store import ReplicatedStore
from repro.execenv.attestation import HardwareRootOfTrust, Measurement
from repro.execenv.environments import ENV_PROFILES, EnvKind, EnvState
from repro.execenv.protection import ProtectionPolicy
from repro.execenv.warmpool import WarmPool
from repro.hardware.devices import DeviceType
from repro.hardware.topology import Datacenter
from repro.simulator.engine import Event, Interrupt, Process
from repro.simulator.rng import RngRegistry

__all__ = ["RuntimeError_", "UDCRuntime"]

#: fraction of task progress between telemetry samples when the task
#: does not checkpoint (checkpoint intervals set the cadence otherwise)
TELEMETRY_CHUNK = 0.25


class RuntimeError_(Exception):
    """Raised for unrecoverable runtime conditions (name avoids shadowing
    the builtin in ``from ... import *`` consumers)."""


def _resolve_app_kw(method: str, app, legacy: Dict[str, Any]) -> ModuleDAG:
    """Unify the application-DAG argument name across the public entry
    points: ``app`` is canonical; ``dag=`` still works but warns."""
    if "dag" in legacy:
        warnings.warn(
            f"UDCRuntime.{method}(dag=...) is deprecated; "
            f"pass app=... (positional works too)",
            DeprecationWarning, stacklevel=3,
        )
        old = legacy.pop("dag")
        if app is not None:
            raise TypeError(
                f"{method}() got both 'app' and the deprecated 'dag'"
            )
        app = old
    if legacy:
        raise TypeError(
            f"{method}() got unexpected keyword argument(s) "
            f"{sorted(legacy)}"
        )
    if app is None:
        raise TypeError(f"{method}() missing required argument: 'app'")
    return app


@dataclass
class _LiveTask:
    """Book-keeping for one executing task object."""

    obj: UDCObject
    placement: TaskPlacement
    completion: Event
    declared_amount: float
    domain_name: str = ""
    #: the primary simulator process executing this task
    process: Optional[Process] = None
    #: live speculative duplicate, if a HedgePolicy launched one
    hedge_process: Optional[Process] = None
    hedge_placement: Optional[TaskPlacement] = None
    #: root lifecycle span for this task (closed by _finish_task)
    span: Optional[Span] = None
    #: set by UDCRuntime.preempt so stale hedge monitors and deadline
    #: timers holding this state stand down instead of acting on a task
    #: that no longer owns any resources
    preempted: bool = False


@dataclass
class Submission:
    """One tenant application admitted into the runtime.

    Multiple submissions may execute concurrently on the same datacenter
    (the provider-consolidation scenario, §2): each keeps its own objects,
    records, outputs, and cost ledger, while competing for the shared
    pools, fabric, and warm inventory.
    """

    dag: ModuleDAG
    tenant: str
    inputs: Dict[str, Any]
    #: unique monotonic id assigned at submit time — the deterministic
    #: tie-break for admission-policy ordering
    seq: int = 0
    objects: Dict[str, UDCObject] = field(default_factory=dict)
    records: Dict[str, "FulfillmentRecord"] = field(default_factory=dict)
    stores: Dict[str, ReplicatedStore] = field(default_factory=dict)
    resolution: Optional[ConflictResolution] = None
    completions: Dict[str, Event] = field(default_factory=dict)
    outputs: Dict[str, Any] = field(default_factory=dict)
    submitted_at: float = 0.0
    finished_at: float = 0.0
    #: persistent submissions keep their data allocations after drain
    #: (standing services); release them with UDCRuntime.decommission
    persistent: bool = False
    #: lifecycle: pending -> running -> done; or queued -> running -> done;
    #: or queued -> unplaceable (capacity never freed)
    status: str = "pending"
    queued_at: float = 0.0
    #: how long the submission waited in the admission queue
    queue_wait_s: float = 0.0
    finished: Optional[Event] = None
    #: (allocation, acquired_at) pairs awaiting settlement
    cost_ledger: List[Tuple[Any, float]] = field(default_factory=list)
    settled_cost: float = 0.0
    result: Optional[RunResult] = None
    #: the user definition this submission deployed with, kept so a
    #: preempted submission can redeploy through the admission queue
    definition: Any = field(default=None, repr=False)
    #: per-task execution state of the current deployment (rebuilt on
    #: every _deploy; what UDCRuntime.preempt interrupts)
    live_tasks: Dict[str, "_LiveTask"] = field(default_factory=dict,
                                               repr=False)
    #: times this submission's resources were reclaimed for firm work
    preemptions: int = 0

    @property
    def done(self) -> bool:
        """True once every task completion has fired.

        A submission that never started (still pending/queued, or
        unplaceable — ``finished`` never built) is NOT done; only a
        deployed app with zero task modules is trivially done.
        """
        if self.finished is not None:
            return self.finished.processed
        # No completion event exists: done only if deployment finished
        # and produced no task completions (a data-only application).
        return self.status in ("running", "done") and not self.completions


@dataclass
class DeferredSubmission:
    """Handle for a future arrival created by :meth:`UDCRuntime.submit_at`;
    ``submission`` is populated when the arrival fires."""

    arrives_at: float
    submission: Optional[Submission] = None


@dataclass
class _QueuedEntry:
    """One parked submission plus everything needed to re-deploy it."""

    submission: Submission
    definition: Union[UserDefinition, Dict, None]
    failure_plan: Optional[List[Tuple[float, str]]]
    dishonest_env: Optional[Dict[str, "EnvKind"]]
    attach_stores: Optional[Dict[str, ReplicatedStore]]


class UDCRuntime:
    """One tenant-facing runtime instance over one datacenter."""

    def __init__(
        self,
        datacenter: Datacenter,
        conflict_policy: ConflictPolicy = ConflictPolicy.STRICTEST,
        use_locality: bool = True,
        tuning: bool = True,
        warm_pool: Optional[WarmPool] = None,
        prewarm: bool = False,
        use_network_ordering: bool = False,
        max_recovery_attempts: int = 3,
        rng: Optional[RngRegistry] = None,
        breakers: Optional[CircuitBreakerRegistry] = None,
        telemetry: Optional[Telemetry] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
    ):
        self.datacenter = datacenter
        self.sim = datacenter.sim
        self.conflict_policy = conflict_policy
        self.prewarm = prewarm
        self.use_network_ordering = use_network_ordering
        self.max_recovery_attempts = max_recovery_attempts
        #: run-seed registry: retry jitter and failure schedules draw
        #: named streams from here, so one seed reproduces a whole run
        self.rng = rng if rng is not None else RngRegistry(0)

        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.warm_pool = warm_pool if warm_pool is not None else WarmPool(enabled=False)
        # Warm pool and breakers feed the metrics registry incrementally
        # (both guard on telemetry.enabled, keeping the disabled path free).
        self.warm_pool.telemetry = self.telemetry
        self.bundles = BundleManager(warm_pool=self.warm_pool)
        self.breakers = (
            breakers if breakers is not None else CircuitBreakerRegistry()
        )
        self.breakers.telemetry = self.telemetry
        self.scheduler = UdcScheduler(
            datacenter, self.bundles, telemetry=self.telemetry,
            use_locality=use_locality, breakers=self.breakers,
        )
        self.tuner = FineTuner(
            datacenter=datacenter, telemetry=self.telemetry, enabled=tuning
        )
        self.injector = FailureInjector(
            self.sim, rng=self.rng, fabric=datacenter.fabric,
            warm_pool=self.warm_pool,
        )
        self.injector.subscribe(self._on_domain_failure)
        # Auto-placement skips devices whose breaker is open.
        for pool in self.datacenter.pools:
            pool.admission_filter = self._breaker_admits
        self.root_of_trust = HardwareRootOfTrust()
        for device in datacenter.devices:
            if device.spec.attestable:
                self.root_of_trust.provision(device)
        self._sequencer: Optional[SwitchSequencer] = None
        if use_network_ordering and datacenter.switch_locations:
            self._sequencer = SwitchSequencer(
                datacenter.fabric, datacenter.switch_locations[0]
            )
        #: allocation id -> owning submission (for cost settlement)
        self._owner_of: Dict[str, Submission] = {}
        self._submissions: List[Submission] = []
        self._deferred: List[DeferredSubmission] = []
        self._admission_queue: List[_QueuedEntry] = []
        self._retry_scheduled = False
        #: who gets freed capacity first — FIFO preserves the historical
        #: behavior; UDCService installs WeightedFairShare here
        self.admission_policy: AdmissionPolicy = (
            admission_policy if admission_policy is not None
            else FifoAdmission()
        )
        #: optional admission-template cache (duck-typed: lookup/store);
        #: installed by UDCService in batched mode to skip re-validating
        #: and re-resolving structurally identical applications
        self.admission_memo = None
        #: optional tenant -> tier rank hook (0 = firm, 1 = spot),
        #: installed by UDCService so admission retries favor firm work;
        #: must be a plain callable or bound method (snapshots pickle it)
        self.tier_of: Optional[Callable[[str], int]] = None
        self._seq_counter = itertools.count()

    # ------------------------------------------------------------------ admission

    def admit(
        self,
        dag: ModuleDAG,
        definition: Union[UserDefinition, Dict, None],
        tenant: str,
    ) -> Tuple[Dict[str, UDCObject], ConflictResolution]:
        """Validate, default-fill, and conflict-resolve one application."""
        if hasattr(definition, "build_definition"):
            # A fluent DefinitionBuilder (repro.define()): compile it
            # through parse_definition so diagnostics are identical.
            definition = definition.build_definition()
        memo = self.admission_memo
        if memo is not None:
            cached = memo.lookup(dag, definition, self.conflict_policy)
            if cached is not None:
                resolution, bundles = cached
                objects = {
                    name: UDCObject(module=module, aspects=bundles[name],
                                    tenant=tenant)
                    for name, module in dag.modules.items()
                }
                return objects, resolution
        dag.validate()
        if definition is None:
            parsed = UserDefinition()
        elif isinstance(definition, dict):
            parsed = parse_definition(definition)
        else:
            parsed = definition
        unknown = set(parsed.bundles) - set(dag.modules)
        if unknown:
            raise RuntimeError_(
                f"definition names modules not in the application: "
                f"{sorted(unknown)}"
            )
        resolution = resolve_conflicts(dag, parsed, self.conflict_policy)
        resolved = resolution.definition

        objects: Dict[str, UDCObject] = {}
        bundles: Dict[str, Any] = {}
        for name, module in dag.modules.items():
            bundle = resolved.bundle_for(name).with_defaults(
                provider_defaults(module)
            )
            bundles[name] = bundle
            objects[name] = UDCObject(module=module, aspects=bundle, tenant=tenant)
        if memo is not None:
            memo.store(dag, definition, self.conflict_policy, resolution,
                       bundles)
        return objects, resolution

    # ------------------------------------------------------------------ placement

    def _deploy_data(
        self,
        submission: Submission,
        attach_stores: Optional[Dict[str, ReplicatedStore]] = None,
    ) -> Dict[str, ReplicatedStore]:
        stores: Dict[str, ReplicatedStore] = {}
        attach_stores = attach_stores or {}
        for name, obj in sorted(submission.objects.items()):
            if not obj.is_data:
                continue
            if name in attach_stores:
                # Standing state shared across invocations (event-driven
                # services): reuse the live store; its allocations remain
                # owned — and billed — by the submission that created it.
                obj.store = attach_stores[name]
                stores[name] = attach_stores[name]
                continue
            placement = self.scheduler.place_data(obj)
            dist = obj.aspects.distributed or DistributedAspect()
            store = ReplicatedStore(
                sim=self.sim,
                fabric=self.datacenter.fabric,
                name=name,
                placement=placement,
                consistency=dist.consistency
                or provider_defaults(obj.module).distributed.consistency,
                preference=dist.preference,
                sequencer=self._sequencer,
            )
            obj.store = store
            stores[name] = store
            for allocation in placement.allocations:
                self._track(submission, allocation)
        return stores

    def _track(self, submission: Submission, allocation) -> None:
        """Register an allocation on the submission's pay-per-use ledger."""
        submission.cost_ledger.append((allocation, self.sim.now))
        self._owner_of[allocation.alloc_id] = submission

    def _prewarm_for(self, objects: Dict[str, UDCObject], dag: ModuleDAG) -> None:
        """Stock the warm pool with the env shapes this app will request —
        the provider's standing bundled-unit inventory (Principle 3)."""
        if not (self.prewarm and self.warm_pool.enabled):
            return
        needed: Dict[Tuple[EnvKind, bool], int] = {}
        for name, obj in objects.items():
            if not obj.is_task:
                continue
            aspect = obj.aspects.resource
            task = obj.module
            device_type = self.scheduler._choose_device_type(task, aspect)
            env_kind, single = self.scheduler._resolve_env_kind(obj, device_type)
            needed[(env_kind, single)] = needed.get((env_kind, single), 0) + 1
        for (env_kind, single), count in needed.items():
            self.warm_pool.prewarm(env_kind, single, count)

    # ------------------------------------------------------------------ execution

    def run(
        self,
        app: Optional[ModuleDAG] = None,
        definition: Union[UserDefinition, Dict, None] = None,
        tenant: str = "tenant",
        inputs: Optional[Dict[str, Any]] = None,
        failure_plan: Optional[List[Tuple[float, str]]] = None,
        dishonest_env: Optional[Dict[str, EnvKind]] = None,
        until: Optional[float] = None,
        attach_stores: Optional[Dict[str, ReplicatedStore]] = None,
        **legacy,
    ) -> RunResult:
        """Admit, deploy, and execute one application to completion.

        Args:
            app: the validated application.
            definition: declarative aspects (dict or parsed), or None for
                all provider defaults.
            inputs: optional per-source-task input values for functional
                execution (each task's ``fn`` receives a dict of its
                predecessors' outputs plus ``"input"``).
            failure_plan: ``[(sim_time, failure_domain_name), ...]`` to
                inject; module-default domains are named ``fd:<module>``.
            dishonest_env: modules the *provider* silently launches in a
                different (cheaper) environment than promised — used by the
                attestation benchmark; claims still state the promise.
        """
        app = _resolve_app_kw("run", app, legacy)
        submission = self.submit(
            app, definition, tenant=tenant, inputs=inputs,
            failure_plan=failure_plan, dishonest_env=dishonest_env,
            attach_stores=attach_stores,
        )
        self.drain()
        if until is not None:
            self.sim.run(until=until)
        return submission.result

    def submit(
        self,
        app: Optional[ModuleDAG] = None,
        definition: Union[UserDefinition, Dict, None] = None,
        tenant: str = "tenant",
        inputs: Optional[Dict[str, Any]] = None,
        failure_plan: Optional[List[Tuple[float, str]]] = None,
        dishonest_env: Optional[Dict[str, EnvKind]] = None,
        attach_stores: Optional[Dict[str, ReplicatedStore]] = None,
        persistent: bool = False,
        queue_if_full: bool = False,
        **legacy,
    ) -> Submission:
        """Admit and deploy one application without running the clock.

        Multiple submissions deployed before :meth:`drain` execute
        concurrently, contending for the same pools and fabric — the
        multi-tenant consolidation scenario.

        ``attach_stores`` lets an invocation reuse another submission's
        live data-module stores (by module name) instead of placing its
        own — how an event-driven service keeps standing state while its
        task modules come and go per event.  ``persistent`` marks this
        submission as such a standing service: its data allocations
        survive :meth:`drain` (and keep billing) until
        :meth:`decommission`.

        ``queue_if_full``: when placement fails for lack of free capacity,
        park the submission in the admission queue and retry as running
        work releases resources (overload behavior, E21) instead of
        raising.  Retry order follows :attr:`admission_policy` (FIFO by
        default).  Submissions that never fit surface as
        ``status == "unplaceable"`` at drain.
        """
        from repro.core.scheduler import SchedulerError

        app = _resolve_app_kw("submit", app, legacy)
        submission = Submission(dag=app, tenant=tenant, inputs=inputs or {},
                                seq=next(self._seq_counter),
                                persistent=persistent)
        try:
            self._deploy(submission, definition, failure_plan,
                         dishonest_env, attach_stores)
            self.admission_policy.on_admitted(tenant)
        except SchedulerError as exc:
            self._rollback(submission)
            if not queue_if_full:
                raise
            submission.status = "queued"
            submission.queued_at = self.sim.now
            self._admission_queue.append(
                _QueuedEntry(submission, definition, failure_plan,
                             dishonest_env, attach_stores)
            )
            self.telemetry.event(
                self.sim.now, app.name, "admission-queued", str(exc)
            )
        self._submissions.append(submission)
        return submission

    def _rollback(self, submission: Submission) -> None:
        """Undo a partially-deployed submission (placement failed)."""
        for obj in submission.objects.values():
            for allocation in obj.allocations:
                self._owner_of.pop(allocation.alloc_id, None)
                if not allocation.released:
                    self.datacenter.pool(allocation.device_type).release(
                        allocation
                    )
            obj.allocations.clear()
            obj.environment = None
            obj.store = None
        submission.cost_ledger.clear()
        submission.stores.clear()
        submission.completions.clear()

    def _retry_admissions(self) -> None:
        """Retry queued submissions after capacity was released.

        The round is ordered by :attr:`admission_policy`: sort keys are
        computed once per round, the sort is stable, and every key embeds
        the submission seq — so the retry order is a deterministic
        function of queue contents, never of insertion accidents.
        """
        from repro.core.scheduler import SchedulerError

        self._retry_scheduled = False
        policy = self.admission_policy
        tier_of = self.tier_of

        def _retry_key(entry):
            tenant = entry.submission.tenant
            # Firm-tier work outranks spot within a retry round, so a
            # preempted spot submission can never starve the firm
            # submission whose arrival evicted it.
            rank = tier_of(tenant) if tier_of is not None else 0
            return (rank,) + tuple(policy.sort_key(tenant,
                                                   entry.submission.seq))

        ordered = sorted(self._admission_queue, key=_retry_key)
        still_waiting = []
        for entry in ordered:
            submission = entry.submission
            try:
                self._deploy(submission, entry.definition,
                             entry.failure_plan, entry.dishonest_env,
                             entry.attach_stores)
                policy.on_admitted(submission.tenant)
                submission.queue_wait_s = self.sim.now - submission.queued_at
                self.telemetry.event(
                    self.sim.now, submission.dag.name, "admission-admitted",
                    f"waited {submission.queue_wait_s:.3f}s",
                )
            except SchedulerError:
                self._rollback(submission)
                still_waiting.append(entry)
        self._admission_queue = still_waiting

    def _schedule_admission_retry(self) -> None:
        if self._admission_queue and not self._retry_scheduled:
            self._retry_scheduled = True
            self.sim.call_at(self.sim.now, self._retry_admissions)

    def preempt(self, submission: Submission, *, by_tenant: str = "") -> bool:
        """Reclaim a running submission's resources for firm-tier work.

        The preemptible-spot contract: the victim's live processes are
        interrupted with :class:`Preempted`, every held allocation is
        settled and released *synchronously* (partial work is billed —
        the spot discount pays for exactly this risk), and the
        submission is re-queued through the admission machinery to
        restart from scratch at its next deployment.  Persistent
        submissions (standing data services, possibly shared via
        ``attach_stores``) and submissions whose tasks all finished are
        never preempted.  Returns True when the submission was evicted.
        """
        if submission.status != "running" or submission.persistent:
            return False
        if submission.completions and all(
            event.triggered for event in submission.completions.values()
        ):
            return False
        for name in sorted(submission.live_tasks):
            task_state = submission.live_tasks[name]
            task_state.preempted = True
            if task_state.completion.triggered:
                continue
            cause = Preempted(module=name, by_tenant=by_tenant)
            for process in (task_state.process, task_state.hedge_process):
                if process is not None and process.is_alive:
                    process.interrupt(cause)
            self.telemetry.span_end(task_state.span, self.sim.now,
                                    status="preempted")
        for name in sorted(submission.objects):
            obj = submission.objects[name]
            self._release_task(submission, obj)
            obj.allocations.clear()
            obj.environment = None
            obj.store = None
        submission.stores.clear()
        submission.completions.clear()
        submission.live_tasks = {}
        submission.outputs.clear()
        submission.records = {}
        submission.finished = None
        submission.preemptions += 1
        submission.status = "queued"
        submission.queued_at = self.sim.now
        self._admission_queue.append(
            _QueuedEntry(submission, submission.definition, None, None, None)
        )
        self.telemetry.inc("udc_preemptions_total")
        self.telemetry.event(
            self.sim.now, submission.dag.name, "preempted",
            f"tenant {submission.tenant!r} evicted for {by_tenant!r}",
        )
        self._schedule_admission_retry()
        return True

    def _deploy(
        self,
        submission: Submission,
        definition: Union[UserDefinition, Dict, None],
        failure_plan: Optional[List[Tuple[float, str]]],
        dishonest_env: Optional[Dict[str, EnvKind]],
        attach_stores: Optional[Dict[str, ReplicatedStore]],
    ) -> None:
        dag = submission.dag
        tenant = submission.tenant
        inputs = submission.inputs
        submission.definition = definition
        objects, resolution = self.admit(dag, definition, tenant)
        submission.objects = objects
        submission.resolution = resolution
        self._prewarm_for(objects, dag)
        submission.stores = self._deploy_data(submission, attach_stores)
        placements = self.scheduler.place_tasks(objects, dag)
        for name in placements:
            # compute + memory + any hot-standby replicas, all pay-per-use
            for allocation in objects[name].allocations:
                self._track(submission, allocation)
        checkpoint_store = self._make_checkpoint_store()

        if dishonest_env:
            self._apply_dishonesty(objects, dishonest_env)
        submission.records = self._initial_records(
            objects, placements, dishonest_env or {}
        )

        # Failure-domain wiring.  Domains are namespaced by tenant except
        # when the user names one explicitly (cross-module coupling).
        # Data modules join domains too, so device failures trigger
        # re-replication (store healing).
        for name, obj in objects.items():
            if not obj.is_data:
                continue
            dist = obj.aspects.distributed or DistributedAspect()
            if dist.failure_domain:
                # Explicit domain: the user chose to couple the replicas
                # (a legitimate, if dangerous, declaration).
                domain = self.injector.domain(dist.failure_domain)
                for allocation in obj.allocations:
                    domain.devices.append(allocation.device)
            else:
                # Default: each replica is its own failure domain —
                # replicas exist precisely to fail independently (§3.4).
                for index, allocation in enumerate(obj.allocations):
                    self.injector.domain(f"fd:{name}:r{index}").devices \
                        .append(allocation.device)
        live: Dict[str, _LiveTask] = {}
        for name, placement in placements.items():
            obj = objects[name]
            dist = obj.aspects.distributed or DistributedAspect()
            domain_name = dist.failure_domain or f"fd:{name}"
            domain = self.injector.domain(domain_name)
            domain.devices.append(placement.unit.compute.device)
            submission.completions[name] = self.sim.event()
            live[name] = _LiveTask(
                obj=obj,
                placement=placement,
                completion=submission.completions[name],
                declared_amount=placement.amount,
                domain_name=domain_name,
            )

        for when, domain_name in failure_plan or []:
            self.injector.fail_at(when, domain_name)

        submission.live_tasks = live
        submission.submitted_at = self.sim.now
        for name, task_state in live.items():
            process = self.sim.process(
                self._run_task(task_state, submission, checkpoint_store),
                name=f"task:{tenant}:{name}",
            )
            task_state.process = process
            self.injector.domain(task_state.domain_name).register_process(process)

        if submission.completions:
            submission.finished = self.sim.all_of(
                list(submission.completions.values())
            )
            submission.finished.callbacks.append(
                lambda _event: setattr(submission, "finished_at", self.sim.now)
            )
        submission.status = "running"

    def submit_at(
        self,
        when: float,
        app: Optional[ModuleDAG] = None,
        definition: Union[UserDefinition, Dict, None] = None,
        dag: Optional[ModuleDAG] = None,
        **kwargs,
    ) -> "DeferredSubmission":
        """Schedule a submission for simulation time ``when``.

        Placement happens at arrival time against whatever capacity is
        then free — the arrival-churn scenario (benchmark E17).  The
        returned handle's ``submission`` attribute fills in at ``when``.
        """
        legacy = {"dag": dag} if dag is not None else {}
        app = _resolve_app_kw("submit_at", app, legacy)
        deferred = DeferredSubmission(arrives_at=when)

        def arrive():
            deferred.submission = self.submit(app, definition, **kwargs)

        self.sim.call_at(when, arrive)
        self._deferred.append(deferred)
        return deferred

    def plan(
        self,
        app: Optional[ModuleDAG] = None,
        definition: Union[UserDefinition, Dict, None] = None,
        tenant: str = "tenant",
        **legacy,
    ) -> List[Dict[str, Any]]:
        """Placement preview: admit and place, report, release.

        Answers "would this definition fit, and where would it land?"
        without executing anything or leaving allocations behind — the
        admission-control dry run an IT team wants before submitting.
        Raises the same SchedulerError/ConflictError a real submission
        would, with the offending module named.
        """
        app = _resolve_app_kw("plan", app, legacy)
        objects, resolution = self.admit(app, definition, tenant)
        rows: List[Dict[str, Any]] = []
        try:
            for name, obj in sorted(objects.items()):
                if obj.is_data:
                    placement = self.scheduler.place_data(obj)
                    rows.append({
                        "module": name,
                        "kind": "data",
                        "devices": [a.device.device_id
                                    for a in placement.allocations],
                        "replicas": len(placement.allocations),
                        "anti_affinity_degraded":
                            placement.anti_affinity_degraded,
                        "hourly_cost": sum(a.hourly_cost
                                           for a in placement.allocations),
                    })
            placements = self.scheduler.place_tasks(objects, app)
            for name, placement in sorted(placements.items()):
                rows.append({
                    "module": name,
                    "kind": "task",
                    "devices": [placement.unit.compute.device.device_id]
                    + [a.device.device_id
                       for a in placement.unit.extra_compute],
                    "device_type": placement.device_type.value,
                    "amount": placement.amount,
                    "env": placement.unit.environment.kind.value,
                    "single_tenant":
                        placement.unit.environment.single_tenant,
                    "hourly_cost": placement.unit.hourly_cost(),
                    "conflicts_resolved": {
                        k: v.value
                        for k, v in resolution.resolved_levels.items()
                    },
                })
        finally:
            for obj in objects.values():
                for allocation in obj.allocations:
                    if not allocation.released:
                        self.datacenter.pool(
                            allocation.device_type).release(allocation)
        return rows

    def drain(self) -> List[RunResult]:
        """Run the clock to quiescence — every deferred arrival fires and
        every submission completes — then settle and report each.

        Submissions still in the admission queue when the clock drains
        (capacity never freed enough) are marked ``unplaceable`` and get
        an empty result rather than an exception: overload is an
        operational condition, not a crash.
        """
        self.sim.run()
        for entry in self._admission_queue:
            submission = entry.submission
            submission.status = "unplaceable"
            self.telemetry.event(
                self.sim.now, submission.dag.name, "admission-unplaceable",
                "capacity never freed before drain",
            )
            self.telemetry.event(
                self.sim.now, submission.dag.name, "shed",
                f"queued {self.sim.now - submission.queued_at:.3f}s, "
                f"dropped at drain",
            )
        self._admission_queue = []
        results = []
        for submission in self._submissions:
            if submission.result is None:
                submission.result = self._collect(submission)
                results.append(submission.result)
        return results

    def collect(self, submission: Submission) -> RunResult:
        """Settle and report one finished submission without draining.

        The per-submission tail of :meth:`drain`: tears the submission
        down, settles its meters at the current clock, and builds its
        :class:`RunResult` — idempotent (an already-collected submission
        returns its existing result), and safe mid-run because it only
        touches the one submission's state.  A server that advances the
        clock in timed ticks uses this to finalize completions as they
        happen instead of waiting for quiescence.
        """
        if submission.result is None:
            if not submission.done and submission.status != "unplaceable":
                raise RuntimeError_(
                    f"submission {submission.dag.name!r} is not finished "
                    f"(status={submission.status!r}); collect() settles "
                    f"finished submissions only"
                )
            submission.result = self._collect(submission)
        return submission.result

    def _collect(self, submission: Submission) -> RunResult:
        if submission.status == "unplaceable":
            # Never deployed: an empty report that says so.
            return RunResult(app=submission.dag.name,
                             tenant=submission.tenant,
                             telemetry=self.telemetry)
        if submission.status == "running":
            submission.status = "done"
        end = submission.finished_at if submission.finished_at else self.sim.now
        makespan = end - submission.submitted_at
        self._teardown(submission)
        self._finalize_records(
            submission.records, submission.objects, submission.stores
        )
        return self._build_result(submission, makespan)

    # -- the per-task process ----------------------------------------------------

    def _task_dependencies(self, name: str, dag: ModuleDAG) -> List[str]:
        """Upstream *tasks* this task must wait for — direct edges plus
        acyclic data-induced orderings (see
        :meth:`~repro.appmodel.dag.ModuleDAG.effective_task_graph`)."""
        graph = dag.effective_task_graph()
        if name not in graph:
            return []
        return sorted(graph.predecessors(name))

    def _breaker_admits(self, device) -> bool:
        return self.breakers.allows(device.device_id, self.sim.now)

    def _retry_stream(self, module: str):
        """Per-module jitter stream — deterministic regardless of how
        other modules' retries interleave."""
        return self.rng.stream(f"retry:{module}")

    def _run_task(
        self,
        task_state: _LiveTask,
        submission: Submission,
        checkpoint_store: Optional[CheckpointStore],
    ):
        dag = submission.dag
        objects = submission.objects
        stores = submission.stores
        completions = submission.completions
        obj = task_state.obj
        task: TaskModule = obj.module
        record = obj.record
        placement = task_state.placement
        dist = obj.aspects.distributed or DistributedAspect()

        deps = [
            completions[d]
            for d in self._task_dependencies(obj.name, dag)
            if d in completions
        ]
        waiting_on_deps = bool(deps)
        started = False

        progress = 0.0
        attempts = 0
        recovering = False
        root_span = self.telemetry.span_start(
            self.sim.now, obj.name, "task", "lifecycle",
            tenant=obj.tenant, app=dag.name,
        )
        task_state.span = root_span
        while True:
            # Spans currently open inside the try body; the interrupt
            # handler closes whatever a failure caught mid-flight.
            attempt_span = None
            child_span = None
            try:
                if recovering:
                    # Recovery runs inside the try so a failure DURING
                    # recovery (backoff, migration, restore) is counted
                    # as another attempt instead of killing the process.
                    recovering = False
                    child_span = self.telemetry.span_start(
                        self.sim.now, obj.name, "recover", "recover",
                        parent=root_span, attempt=attempts,
                    )
                    retry = dist.retry
                    if retry is not None:
                        delay = retry.backoff_s(
                            attempts, self._retry_stream(obj.name)
                        )
                        if delay > 0:
                            record.backoff_s += delay
                            yield self.sim.timeout(delay)
                    strategy = dist.recovery or RecoveryStrategy.RERUN
                    outcome = plan_recovery(strategy, obj.name, checkpoint_store)
                    migrated = yield from self._migrate(task_state, submission)
                    if not migrated:
                        self.telemetry.span_end(child_span, self.sim.now,
                                                status="error")
                        self._finish_task(task_state, submission, None,
                                          winner="abandoned")
                        return None
                    record.retries += 1
                    self.telemetry.inc("udc_retries_total")
                    attempt_now, backoff_now = attempts, record.backoff_s
                    self.telemetry.event(
                        self.sim.now, obj.name, "retry",
                        lambda: f"attempt {attempt_now} "
                                f"backoff={backoff_now:.3f}s",
                    )
                    if outcome.checkpoint is not None:
                        t0 = self.sim.now
                        restored = yield from checkpoint_store.restore(
                            obj.name, task_state.placement.unit.location
                        )
                        record.checkpoint_s += self.sim.now - t0
                        if restored is None:
                            # The backing storage device failed mid-run:
                            # degrade to re-execution from scratch rather
                            # than crash the recovery itself.
                            outcome = plan_recovery(
                                RecoveryStrategy.RERUN, obj.name, None
                            )
                            self.telemetry.event(
                                self.sim.now, obj.name, "restore-degraded",
                                "checkpoint device failed; rerunning from "
                                "scratch",
                            )
                    progress = outcome.resume_progress
                    record.recovered_from_progress = progress
                    placement = task_state.placement
                    self.telemetry.span_end(child_span, self.sim.now)
                    child_span = None
                if waiting_on_deps:
                    # all_of tolerates already-fired members, so retrying
                    # after a failure-interrupt mid-wait is safe.
                    child_span = self.telemetry.span_start(
                        self.sim.now, obj.name, "wait-deps", "schedule",
                        parent=root_span, deps=len(deps),
                    )
                    yield self.sim.all_of(deps)
                    self.telemetry.span_end(child_span, self.sim.now)
                    child_span = None
                    waiting_on_deps = False
                if not started:
                    record.started_at = self.sim.now
                    started = True
                    self._arm_deadline(task_state, dist)
                    self._arm_hedge(task_state, submission, dist)
                attempt_span = self.telemetry.span_start(
                    self.sim.now, obj.name, "attempt",
                    "execute" if attempts == 0 else "retry",
                    parent=root_span, attempt=attempts,
                )
                # -- environment startup (on demand; warm pools shortcut it)
                env = obj.environment
                t0 = self.sim.now
                child_span = self.telemetry.span_start(
                    self.sim.now, obj.name, "env-acquire", "env-acquire",
                    parent=attempt_span, env=env.kind.value,
                    warm=env.from_warm_pool,
                )
                yield self.sim.timeout(env.startup_time())
                env.state = EnvState.RUNNING
                env.started_at = self.sim.now
                record.startup_s += self.sim.now - t0
                self.telemetry.span_end(child_span, self.sim.now)
                child_span = None
                self.telemetry.observe("udc_env_startup_seconds",
                                       self.sim.now - t0)
                self._attest(obj, placement)

                # -- pull inputs over the fabric
                t0 = self.sim.now
                child_span = self.telemetry.span_start(
                    self.sim.now, obj.name, "transfer-in", "execute",
                    parent=attempt_span,
                )
                yield from self._pull_inputs(obj, placement, dag, objects, stores)
                record.transfer_s += self.sim.now - t0
                self.telemetry.span_end(child_span, self.sim.now)

                # -- chunked compute with optional checkpoints
                native = task.execution_seconds(
                    placement.device_type,
                    placement.unit.effective_compute_amount,
                    placement.compute_rate,
                )
                wall_full = env.compute_time(native)
                child_span = self.telemetry.span_start(
                    self.sim.now, obj.name, "execute", "execute",
                    parent=attempt_span,
                    device=placement.unit.compute.device.device_id,
                )
                # Chunk compute for telemetry even without checkpointing:
                # the tuner needs mid-run samples to act on (§3.2), and a
                # checkpointing task checkpoints at its own interval.
                chunk = (dist.checkpoint_interval if dist.checkpoint
                         else TELEMETRY_CHUNK)
                while progress < 1.0 - 1e-12:
                    step = min(chunk, 1.0 - progress)
                    t0 = self.sim.now
                    # A straggler device stretches each chunk by its
                    # current slow factor (gray failure — no interrupt).
                    yield self.sim.timeout(
                        wall_full * step
                        * placement.unit.compute.device.slow_factor
                    )
                    record.compute_s += self.sim.now - t0
                    progress += step
                    self._sample_utilization(obj, placement)
                    self.tuner.review_allocation(
                        obj.name, placement.unit.compute, task_state.declared_amount
                    )
                    if dist.checkpoint and checkpoint_store is not None \
                            and progress < 1.0 - 1e-12:
                        t0 = self.sim.now
                        yield from checkpoint_store.checkpoint(
                            obj.name, placement.unit.location, progress,
                            task.state_bytes,
                        )
                        record.checkpoint_s += self.sim.now - t0
                        record.checkpoints_taken += 1
                self.telemetry.span_end(child_span, self.sim.now)

                # -- push outputs into downstream data modules
                t0 = self.sim.now
                child_span = self.telemetry.span_start(
                    self.sim.now, obj.name, "transfer-out", "execute",
                    parent=attempt_span,
                )
                yield from self._push_outputs(obj, placement, dag, stores)
                record.transfer_s += self.sim.now - t0
                self.telemetry.span_end(child_span, self.sim.now)
                child_span = None
                self.telemetry.span_end(attempt_span, self.sim.now)
                break

            except Interrupt as interrupt:
                cause = interrupt.cause
                self.telemetry.span_end(child_span, self.sim.now,
                                        status="interrupted")
                self.telemetry.span_end(attempt_span, self.sim.now,
                                        status="interrupted")
                if isinstance(cause, HedgeCancelled):
                    # The hedge won and did all bookkeeping; just vanish.
                    return None
                if isinstance(cause, Preempted):
                    # UDCRuntime.preempt settled the meters, released the
                    # allocations, and re-queued the whole submission;
                    # this process just vanishes (like a losing hedge).
                    self.telemetry.event(
                        self.sim.now, obj.name, "preempted",
                        f"capacity reclaimed for {cause.by_tenant}",
                    )
                    return None
                if isinstance(cause, DeadlineMiss):
                    record.deadline_missed = True
                    self.telemetry.inc("udc_deadline_misses_total")
                    self.telemetry.event(
                        self.sim.now, obj.name, "deadline_miss",
                        f"abandoned after {cause.deadline_s:g}s",
                    )
                    self._finish_task(task_state, submission, None,
                                      winner="abandoned")
                    return None
                record.failures += 1
                attempts += 1
                self.telemetry.inc("udc_failures_total")
                self.telemetry.event(
                    self.sim.now, obj.name, "failure",
                    lambda: f"cause={cause}",
                )
                if isinstance(cause, Failure) and cause.kind == "crash":
                    device = placement.unit.compute.device
                    if self.breakers.record_failure(
                        device.device_id, self.sim.now
                    ):
                        self.telemetry.event(
                            self.sim.now, obj.name, "breaker_open",
                            f"device {device.device_id}",
                        )
                strategy = dist.recovery or RecoveryStrategy.RERUN
                limit = (dist.retry.max_attempts if dist.retry is not None
                         else self.max_recovery_attempts)
                if strategy == RecoveryStrategy.NONE or attempts > limit:
                    self._finish_task(task_state, submission, None,
                                      winner="abandoned")
                    return None
                recovering = True

        # -- functional result
        result = self._invoke_fn(obj, submission)
        self._finish_task(task_state, submission, result, winner="primary")
        return result

    def _invoke_fn(self, obj: UDCObject, submission: Submission):
        task: TaskModule = obj.module
        if task.fn is None:
            return None
        context = {"input": submission.inputs.get(obj.name)}
        for dep in self._task_dependencies(obj.name, submission.dag):
            context[dep] = submission.outputs.get(dep)
        try:
            return task.fn(context)
        except Exception as exc:  # noqa: BLE001 - user code must not
            # wedge the control plane; the error is surfaced in the
            # report and the module completes with no output.
            self.telemetry.event(
                self.sim.now, obj.name, "fn-error", repr(exc)
            )
            return None

    def _finish_task(
        self,
        task_state: _LiveTask,
        submission: Submission,
        result,
        winner: str,
    ) -> bool:
        """Single completion point for a task: first caller wins.

        ``winner`` is ``"primary"``, ``"hedge"``, or ``"abandoned"``.
        Releases every allocation (primary + hedge + standbys), fires the
        completion event exactly once, and cancels the losing sibling
        attempt.  Returns False when someone else already finished.
        """
        completion = task_state.completion
        if completion.triggered:
            return False
        obj = task_state.obj
        record = obj.record
        record.result = result
        record.finished_at = self.sim.now
        if winner in ("primary", "hedge"):
            record.winner = winner
            submission.outputs[obj.name] = result
            active = (task_state.hedge_placement if winner == "hedge"
                      else task_state.placement)
            self.breakers.record_success(
                active.unit.compute.device.device_id, self.sim.now
            )
        if winner == "hedge":
            record.hedge_won = True
            self.telemetry.inc("udc_hedge_wins_total")
            self.telemetry.event(
                self.sim.now, obj.name, "hedge-win",
                f"hedge on "
                f"{task_state.hedge_placement.unit.compute.device.device_id} "
                f"beat the primary",
            )
        elif winner == "primary" and task_state.hedge_process is not None:
            # A live duplicate lost the race (crashed hedges already
            # counted their loss when they released their allocation).
            self.telemetry.inc("udc_hedge_losses_total")
        if self.telemetry.enabled:
            self.telemetry.span_end(
                task_state.span, self.sim.now,
                status="ok" if winner in ("primary", "hedge")
                else "abandoned",
            )
            if winner != "abandoned":
                self.telemetry.observe(
                    "udc_task_wall_seconds",
                    self.sim.now - record.started_at,
                )
        self._release_task(submission, obj)
        completion.succeed(result)
        loser = (task_state.process if winner == "hedge"
                 else task_state.hedge_process)
        if loser is not None and loser.is_alive:
            loser.interrupt(HedgeCancelled(obj.name, winner))
        return True

    # -- deadlines and hedging ---------------------------------------------

    def _arm_deadline(self, task_state: _LiveTask, dist: DistributedAspect) -> None:
        """Schedule abandonment at the module's deadline (from task start)."""
        if dist.deadline_s is None:
            return
        obj = task_state.obj
        deadline_s = dist.deadline_s

        def fire():
            if task_state.completion.triggered or task_state.preempted:
                return
            for process in (task_state.process, task_state.hedge_process):
                if process is not None and process.is_alive:
                    process.interrupt(DeadlineMiss(obj.name, deadline_s))

        self.sim.call_at(self.sim.now + deadline_s, fire)

    def _arm_hedge(
        self, task_state: _LiveTask, submission: Submission,
        dist: DistributedAspect,
    ) -> None:
        """Start the hedge monitor when the aspect declares a HedgePolicy."""
        if dist.hedge is None:
            return
        obj = task_state.obj
        placement = task_state.placement
        task: TaskModule = obj.module
        native = task.execution_seconds(
            placement.device_type,
            placement.unit.effective_compute_amount,
            placement.compute_rate,
        )
        env = placement.unit.environment
        expected_wall = env.startup_time() + env.compute_time(native)
        delay = dist.hedge.trigger_delay_s(expected_wall)
        self.sim.process(
            self._hedge_monitor(task_state, submission, delay, dist.hedge),
            name=f"hedge-monitor:{obj.tenant}:{obj.name}",
        )

    def _hedge_monitor(self, task_state: _LiveTask, submission: Submission,
                       delay: float, policy) -> object:
        """Wait for the trigger point; if the task is still running,
        launch a speculative duplicate.  Re-hedges (up to ``max_hedges``)
        only if an earlier hedge died without finishing."""
        obj = task_state.obj
        for _ in range(policy.max_hedges):
            yield self.sim.timeout(delay)
            if task_state.completion.triggered or task_state.preempted:
                return
            if task_state.hedge_process is not None \
                    and task_state.hedge_process.is_alive:
                return
            if not self._launch_hedge(task_state, submission):
                return

    def _launch_hedge(
        self, task_state: _LiveTask, submission: Submission
    ) -> bool:
        from repro.hardware.pools import AllocationError

        obj = task_state.obj
        placement = task_state.placement
        pool = self.datacenter.pool(placement.device_type)
        primary_device = placement.unit.compute.device
        amount = placement.unit.compute.amount
        single = placement.unit.environment.single_tenant

        def usable(device, require_healthy_speed):
            return (
                device is not primary_device
                and device.can_fit(amount, obj.tenant, single)
                and self._breaker_admits(device)
                and (not require_healthy_speed or device.slow_factor == 1.0)
            )

        # Prefer a full-speed device — hedging onto another straggler
        # defeats the point — but degrade to any fitting device.
        ordered = pool.devices_by_seq()
        candidate = next(
            (d for d in ordered if usable(d, True)), None
        ) or next(
            (d for d in ordered if usable(d, False)), None
        )
        if candidate is None:
            self.telemetry.event(
                self.sim.now, obj.name, "hedge-degraded",
                "no device available for a speculative duplicate",
            )
            return False
        try:
            alloc = pool.allocate(
                amount, obj.tenant, single_tenant=single, device=candidate
            )
        except AllocationError:
            return False
        self._track(submission, alloc)
        obj.allocations.append(alloc)
        unit = self.bundles.assemble(
            compute=alloc,
            memory=placement.unit.memory,
            env_kind=placement.unit.environment.kind,
            tenant=obj.tenant,
            single_tenant=single,
        )
        hedge_placement = TaskPlacement(
            obj=obj,
            device_type=placement.device_type,
            amount=alloc.amount,
            unit=unit,
            compute_rate=candidate.spec.compute_rate,
        )
        task_state.hedge_placement = hedge_placement
        obj.record.hedges += 1
        self.telemetry.inc("udc_hedges_total")
        self.telemetry.event(
            self.sim.now, obj.name, "hedge",
            lambda: f"duplicate -> {candidate.device_id}",
        )
        process = self.sim.process(
            self._hedge_attempt(task_state, submission, hedge_placement),
            name=f"hedge:{obj.tenant}:{obj.name}",
        )
        task_state.hedge_process = process
        # Join a failure domain covering the hedge device, if one exists,
        # so a crash there interrupts the hedge like any other process.
        for domain in self.injector.domains.values():
            if candidate in domain.devices:
                domain.register_process(process)
                break
        return True

    def _hedge_attempt(
        self,
        task_state: _LiveTask,
        submission: Submission,
        placement: TaskPlacement,
    ):
        """The speculative duplicate: same work, different device.

        First finisher (this or the primary) wins via
        :meth:`_finish_task`; the loser is interrupted with
        :class:`HedgeCancelled`.  A hedge never retries — it IS the
        retry."""
        obj = task_state.obj
        task: TaskModule = obj.module
        record = obj.record
        env = placement.unit.environment
        hedge_span = self.telemetry.span_start(
            self.sim.now, obj.name, "hedge", "hedge",
            parent=task_state.span,
            device=placement.unit.compute.device.device_id,
        )
        env_span = None
        try:
            t0 = self.sim.now
            env_span = self.telemetry.span_start(
                self.sim.now, obj.name, "env-acquire", "env-acquire",
                parent=hedge_span, env=env.kind.value,
                warm=env.from_warm_pool,
            )
            yield self.sim.timeout(env.startup_time())
            env.state = EnvState.RUNNING
            env.started_at = self.sim.now
            record.startup_s += self.sim.now - t0
            self.telemetry.observe("udc_env_startup_seconds",
                                   self.sim.now - t0)
            self.telemetry.span_end(env_span, self.sim.now)
            env_span = None

            t0 = self.sim.now
            yield from self._pull_inputs(
                obj, placement, submission.dag, submission.objects,
                submission.stores,
            )
            record.transfer_s += self.sim.now - t0

            native = task.execution_seconds(
                placement.device_type,
                placement.unit.effective_compute_amount,
                placement.compute_rate,
            )
            wall_full = env.compute_time(native)
            progress = 0.0
            while progress < 1.0 - 1e-12:
                step = min(TELEMETRY_CHUNK, 1.0 - progress)
                t0 = self.sim.now
                yield self.sim.timeout(
                    wall_full * step
                    * placement.unit.compute.device.slow_factor
                )
                record.compute_s += self.sim.now - t0
                progress += step
                if task_state.completion.triggered:
                    self.telemetry.span_end(hedge_span, self.sim.now,
                                            status="cancelled")
                    return None

            t0 = self.sim.now
            yield from self._push_outputs(
                obj, placement, submission.dag, submission.stores
            )
            record.transfer_s += self.sim.now - t0
        except Interrupt as interrupt:
            cause = interrupt.cause
            self.telemetry.span_end(env_span, self.sim.now,
                                    status="interrupted")
            if isinstance(cause, Failure) and cause.kind == "crash":
                # The hedge's device crashed under it: give back its
                # allocation and let the monitor decide whether to
                # re-hedge.  The primary is unaffected.
                self.telemetry.span_end(hedge_span, self.sim.now,
                                        status="error")
                record.failures += 1
                self.telemetry.inc("udc_failures_total")
                self.telemetry.inc("udc_hedge_losses_total")
                self.telemetry.event(
                    self.sim.now, obj.name, "failure",
                    f"hedge attempt lost: cause={cause}",
                )
                if self.breakers.record_failure(
                    placement.unit.compute.device.device_id, self.sim.now
                ):
                    self.telemetry.event(
                        self.sim.now, obj.name, "breaker_open",
                        f"device {placement.unit.compute.device.device_id}",
                    )
                alloc = placement.unit.compute
                if not alloc.released:
                    self._settle(alloc)
                    self.datacenter.pool(alloc.device_type).release(alloc)
                if alloc in obj.allocations:
                    obj.allocations.remove(alloc)
                task_state.hedge_process = None
                task_state.hedge_placement = None
            else:
                # HedgeCancelled / DeadlineMiss: the winner (or the
                # deadline handler) releases everything.
                self.telemetry.span_end(hedge_span, self.sim.now,
                                        status="cancelled")
            return None

        result = self._invoke_fn(obj, submission)
        self.telemetry.span_end(hedge_span, self.sim.now)
        self._finish_task(task_state, submission, result, winner="hedge")
        return result

    def _pull_inputs(self, obj, placement, dag, objects, stores):
        """Transfer every incoming edge's bytes to the task's location,
        paying data-protection costs declared by the *source*."""
        my_location = placement.unit.location
        for edge in dag.edges:
            if edge.dst != obj.name or edge.bytes_transferred <= 0:
                continue
            source = objects.get(edge.src)
            if source is None:
                continue
            protection = self._protection_of(source)
            if source.is_data and edge.src in stores:
                yield self.sim.process(
                    stores[edge.src].bulk_read(my_location, edge.bytes_transferred)
                )
            elif source.location is not None:
                yield self.datacenter.fabric.send(
                    source.location, my_location, edge.bytes_transferred
                )
            if protection.any_enabled:
                cost = protection.cpu_seconds(edge.bytes_transferred)
                yield self.sim.timeout(cost)
                obj.record.protection_s += cost

    def _push_outputs(self, obj, placement, dag, stores):
        """Write every outgoing task→data edge through the data module's
        store protocol, paying this task's protection costs on egress."""
        my_location = placement.unit.location
        protection = self._protection_of(obj)
        for edge in dag.edges:
            if edge.src != obj.name or edge.bytes_transferred <= 0:
                continue
            if protection.any_enabled:
                cost = protection.cpu_seconds(edge.bytes_transferred)
                yield self.sim.timeout(cost)
                obj.record.protection_s += cost
            if edge.dst in stores:
                yield self.sim.process(
                    stores[edge.dst].bulk_write(
                        my_location, edge.bytes_transferred, tag=obj.name
                    )
                )
            # task→task transfers are paid by the consumer's pull.

    def _protection_of(self, obj: UDCObject) -> ProtectionPolicy:
        if obj.aspects.execenv is None:
            return ProtectionPolicy()
        return obj.aspects.execenv.protection

    def _sample_utilization(self, obj: UDCObject, placement: TaskPlacement) -> None:
        task: TaskModule = obj.module
        allocated = placement.unit.total_compute_amount
        usable = task.usable_amount(allocated)
        self.telemetry.sample(
            self.sim.now, obj.name,
            compute_utilization=usable / allocated if allocated else 0.0,
            allocated_amount=allocated,
        )

    def _migrate(self, task_state: _LiveTask, submission: Submission):
        """Rebuild the task's unit on a healthy device after a failure."""
        obj = task_state.obj
        old_placement = task_state.placement
        failed_compute = old_placement.unit.compute
        # Prefer a hot standby (task replication) over fresh allocation.
        replacement = next(
            (
                a for a in obj.allocations
                if a is not failed_compute
                and not a.released
                and a.device_type == failed_compute.device_type
                and not a.device.failed
            ),
            None,
        )
        if replacement is not None:
            self.datacenter.pool(failed_compute.device_type).release(failed_compute)
            self._settle(failed_compute)
            self.telemetry.event(
                self.sim.now, obj.name, "failover-standby",
                lambda: f"-> {replacement.device.device_id}",
            )
        else:
            replacement = self.tuner.migrate(
                obj.name, failed_compute, obj.tenant
            )
            if replacement is not None:
                # tuner.migrate released the old allocation internally.
                self._settle(failed_compute)
                self._track(submission, replacement)
                obj.allocations.append(replacement)
        if replacement is None:
            return False
        obj.record.migrations += 1
        old_memory = old_placement.unit.memory
        unit = self.bundles.assemble(
            compute=replacement,
            memory=old_memory,
            env_kind=old_placement.unit.environment.kind,
            tenant=obj.tenant,
            single_tenant=old_placement.unit.environment.single_tenant,
        )
        obj.environment = unit.environment
        task_state.placement = TaskPlacement(
            obj=obj,
            device_type=old_placement.device_type,
            amount=replacement.amount,
            unit=unit,
            compute_rate=replacement.device.spec.compute_rate,
        )
        # Cold-start the new environment (charged in the retry loop).
        self.telemetry.event(
            self.sim.now, obj.name, "migrate",
            lambda: f"-> {replacement.device.device_id}",
        )
        yield self.sim.timeout(0)  # keep this a generator
        return True

    def _on_domain_failure(self, failure, domain) -> None:
        """Failure listener: re-replicate any store that lost replicas.

        Task recovery is handled by the interrupted task processes
        themselves; data availability is the provider's job (§3.4), so it
        happens here, immediately, out of the tenant's critical path.
        """
        from repro.distsem.replication import ReplicaPlacer

        if failure.kind != "crash":
            # Gray failures (stragglers, partitions, warm-pool outages)
            # degrade timing but lose no replicas; the resilience
            # policies — not store healing — absorb them.
            return
        for submission in self._submissions:
            for name, store in submission.stores.items():
                if not any(r.device.failed for r in store.replicas):
                    continue
                if not store.live_replicas():
                    self.telemetry.event(
                        self.sim.now, name, "data-loss",
                        f"all replicas lost in {failure.domain}",
                    )
                    continue
                pool = self.datacenter.pool(
                    store.placement.allocations[0].device_type
                )
                before = list(store.placement.allocations)
                try:
                    rebuilt = store.heal(ReplicaPlacer(pool))
                except Exception as exc:  # noqa: BLE001 - degraded, not fatal
                    self.telemetry.event(
                        self.sim.now, name, "heal-failed", repr(exc)
                    )
                    continue
                if rebuilt:
                    # Rebill: dead replicas' meters close, replacements
                    # start, and the OWNING submission's object follows
                    # (a store attached by other submissions is still
                    # owned — and billed — by its creator).
                    after = list(store.placement.allocations)
                    owner = self._owner_of.get(
                        before[0].alloc_id, submission
                    )
                    obj = owner.objects.get(name, submission.objects[name])
                    for old in before:
                        if old not in after:
                            self._settle(old)
                            pool.release(old)
                            if old in obj.allocations:
                                obj.allocations.remove(old)
                    for new in after:
                        if new not in before:
                            self._track(owner, new)
                            obj.allocations.append(new)
                    self.telemetry.event(
                        self.sim.now, name, "heal",
                        f"re-replicated {rebuilt} replica(s) after "
                        f"{failure.domain}",
                    )

    # ------------------------------------------------------------- attestation

    def _attest(self, obj: UDCObject, placement: TaskPlacement) -> None:
        env = obj.environment
        device = placement.unit.compute.device
        if env is None or not env.profile.attestable or not device.spec.attestable:
            return
        measurement = Measurement(
            env_kind=env.kind.value,
            code_hash=obj.module.code_hash,
            tenant=obj.tenant,
            single_tenant=env.single_tenant,
            device_model=device.spec.model,
        )
        env.measurement = measurement
        obj.quote = self.root_of_trust.quote(device, measurement)

    def _apply_dishonesty(
        self, objects: Dict[str, UDCObject], dishonest_env: Dict[str, EnvKind]
    ) -> None:
        """Swap what actually launches; claims keep stating the promise."""
        for name, actual_kind in dishonest_env.items():
            obj = objects.get(name)
            if obj is None or obj.environment is None:
                continue
            obj.environment.profile = ENV_PROFILES[actual_kind]

    # ----------------------------------------------------------------- accounting

    def _make_checkpoint_store(self) -> Optional[CheckpointStore]:
        for device_type in (DeviceType.SSD, DeviceType.NVM, DeviceType.HDD):
            if device_type in self.datacenter.pools:
                pool = self.datacenter.pool(device_type)
                for device in pool.devices:
                    if not device.failed:
                        return CheckpointStore(
                            self.sim, self.datacenter.fabric, device
                        )
        return None

    def _settle(self, allocation) -> None:
        """Close an allocation's meter on its owner's ledger."""
        submission = self._owner_of.pop(allocation.alloc_id, None)
        if submission is None:
            return
        for index, (alloc, acquired_at) in enumerate(submission.cost_ledger):
            if alloc is allocation:
                hours = (self.sim.now - acquired_at) / 3600.0
                submission.settled_cost += alloc.hourly_cost * hours
                submission.cost_ledger.pop(index)
                return

    def _release_task(self, submission: Submission, obj: UDCObject) -> None:
        released_any = False
        for allocation in obj.allocations:
            if allocation.released:
                continue
            self._settle(allocation)
            self.datacenter.pool(allocation.device_type).release(allocation)
            released_any = True
        if released_any:
            self._schedule_admission_retry()

    def _teardown(self, submission: Submission) -> None:
        for obj in submission.objects.values():
            if submission.persistent and obj.is_data:
                continue  # standing state survives until decommission
            self._release_task(submission, obj)

    def decommission(self, submission: Submission) -> float:
        """Release a persistent submission's standing data allocations.

        Returns the additional cost settled at decommission time.  The
        submission's ``result`` (if already collected) is updated with
        the final bill.
        """
        before = submission.settled_cost
        for obj in submission.objects.values():
            self._release_task(submission, obj)
        delta = submission.settled_cost - before
        if submission.result is not None:
            submission.result.total_cost = submission.settled_cost
        return delta

    # ------------------------------------------------------------------- reporting

    def metrics_snapshot(self) -> MetricsRegistry:
        """The run's metrics registry with collector-style gauges refreshed.

        Counters and histograms are maintained incrementally as the run
        executes; pool-capacity/utilization, warm-pool hit-rate, and
        open-breaker gauges are collected here, at snapshot time, so the
        allocate/release hot path never touches the registry.
        """
        registry = self.telemetry.metrics
        self.datacenter.pools.collect_metrics(registry)
        registry.gauge("udc_warm_pool_hit_rate").set(
            self.warm_pool.stats.hit_rate
        )
        registry.gauge("udc_breakers_open").set(
            float(len(self.breakers.open_keys(self.sim.now)))
        )
        return registry

    def _initial_records(
        self,
        objects: Dict[str, UDCObject],
        placements: Dict[str, TaskPlacement],
        dishonest_env: Dict[str, EnvKind],
    ) -> Dict[str, FulfillmentRecord]:
        records: Dict[str, FulfillmentRecord] = {}
        for name, obj in objects.items():
            record = FulfillmentRecord(module=name)
            if name in placements:
                placement = placements[name]
                record.device_type = placement.device_type.value
                record.amount = placement.amount
                env = obj.environment
                promised_kind = (
                    obj.aspects.execenv.env_kind
                    if obj.aspects.execenv and obj.aspects.execenv.env_kind
                    else None
                )
                # A dishonest provider *claims* the promise; an honest one
                # claims what it launched.
                if name in dishonest_env and promised_kind is not None:
                    record.env_kind = promised_kind.value
                else:
                    record.env_kind = env.kind.value if env else None
                record.single_tenant = env.single_tenant if env else False
                if env is not None:
                    record.isolation = env.effective_isolation.value
                record.device = placement.unit.compute.device
            execenv = obj.aspects.execenv
            if execenv is not None:
                record.protections = [
                    flag
                    for flag, enabled in (
                        ("encrypt", execenv.protection.encrypt),
                        ("integrity", execenv.protection.integrity),
                        ("replay", execenv.protection.replay_protect),
                    )
                    if enabled
                ]
            records[name] = record
        return records

    def _finalize_records(
        self,
        records: Dict[str, FulfillmentRecord],
        objects: Dict[str, UDCObject],
        stores: Dict[str, ReplicatedStore],
    ) -> None:
        for name, store in stores.items():
            record = records[name]
            record.replication_factor = len(store.replicas)
            record.consistency = store.consistency.value
            obj = objects[name]
            if obj.primary_allocation is not None:
                record.device_type = obj.primary_allocation.device_type.value
                record.amount = obj.primary_allocation.amount
            record.quote = obj.quote
        for name, obj in objects.items():
            if obj.is_task:
                records[name].quote = obj.quote

    def _build_result(self, submission: Submission, makespan: float) -> RunResult:
        objects = submission.objects
        records = submission.records
        result = RunResult(
            app=submission.dag.name,
            tenant=submission.tenant,
            makespan_s=makespan,
            objects=objects,
            records=records,
            telemetry=self.telemetry,
            conflicts=submission.resolution,
            outputs=submission.outputs,
            fabric_messages=self.datacenter.fabric.stats.messages,
            fabric_bytes=self.datacenter.fabric.stats.bytes_total,
            warm_hits=self.warm_pool.stats.hits,
            warm_misses=self.warm_pool.stats.misses,
        )
        if self.telemetry.enabled:
            result.metrics = self.metrics_snapshot().to_dict()
        total_cost = submission.settled_cost
        # Persistent submissions still have live meters: report the bill
        # accrued so far (decommission finalizes it).
        for allocation, acquired_at in submission.cost_ledger:
            hours = max(self.sim.now - acquired_at, 0.0) / 3600.0
            total_cost += allocation.hourly_cost * hours
        for name in sorted(objects):
            obj = objects[name]
            record = records[name]
            env = obj.environment
            cost = self._module_cost(obj)
            row = ModuleRow(
                name=name,
                kind="task" if obj.is_task else "data",
                device=record.device_type or "-",
                amount=f"{record.amount:g}" if record.amount else "-",
                env=record.env_kind or "-",
                single_tenant=record.single_tenant,
                replication=record.replication_factor or 1,
                consistency=record.consistency or "-",
                wall_s=obj.record.wall_s if obj.is_task else 0.0,
                startup_s=obj.record.startup_s,
                compute_s=obj.record.compute_s,
                transfer_s=obj.record.transfer_s,
                protection_s=obj.record.protection_s,
                checkpoint_s=obj.record.checkpoint_s,
                failures=obj.record.failures,
                cost=cost,
                retries=obj.record.retries,
                hedges=obj.record.hedges,
                hedge_won=obj.record.hedge_won,
                deadline_missed=obj.record.deadline_missed,
            )
            result.rows.append(row)
        result.total_cost = total_cost
        return result

    def _module_cost(self, obj: UDCObject) -> float:
        """Approximate per-module cost from its allocations' hold times."""
        cost = 0.0
        for allocation in obj.allocations:
            end = obj.record.finished_at if obj.is_task else self.sim.now
            if end <= allocation.created_at:
                end = self.sim.now
            hours = max(end - allocation.created_at, 0.0) / 3600.0
            cost += allocation.hourly_cost * hours
        return cost
