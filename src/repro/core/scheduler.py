"""Placement scheduler (paper §3.2).

*"Our runtime scheduler would use the user-supplied resource aspect,
execution environment aspect, and locality information from the
application semantic aspect to decide the location(s) to execute a module
and initialize it with the resource amount as user specified."*

Decisions, in order:

1. **Device type** — explicit aspect device wins; otherwise the goal
   picks among the developer's candidates: FASTEST maximizes effective
   compute rate, CHEAPEST minimizes cost-per-work (`price / rate`).
2. **Amount** — the aspect's amount (defaulting to one unit).
3. **Location** — co-location groups are hard constraints (all members on
   one device); otherwise the scheduler scores candidate racks by the
   fabric cost of moving the module's inputs (affinity hints + incoming
   edge bytes) and picks the cheapest.  Locality can be disabled for the
   E6 ablation.
4. **Environment** — the concrete env kind if named, else the provider's
   pick for the requested isolation tier on the chosen device type.
5. **Memory** — `mem_gb` from the DRAM pool, same rack when possible.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.core.aspects import ResourceAspect, ResourceGoal
from repro.core.bundle import BundleManager, ResourceUnit
from repro.core.objects import UDCObject
from repro.core.observability import NULL_SPAN, Span
from repro.core.telemetry import Telemetry
from repro.distsem.replication import PlacementResult, ReplicaPlacer, ReplicationPolicy
from repro.execenv.environments import EnvKind, environments_for_level
from repro.execenv.isolation import IsolationLevel
from repro.hardware.devices import Device, DeviceType
from repro.hardware.fabric import Location
from repro.hardware.pools import Allocation, AllocationError
from repro.hardware.topology import Datacenter

__all__ = ["SchedulerError", "TaskPlacement", "UdcScheduler"]

#: media fallback order for data with no explicit pin: hot data prefers
#: memory-class, cold data prefers cheap storage.
HOT_MEDIA_ORDER = [DeviceType.DRAM, DeviceType.NVM, DeviceType.SSD, DeviceType.HDD]
COLD_MEDIA_ORDER = [DeviceType.HDD, DeviceType.SSD, DeviceType.NVM, DeviceType.DRAM]


class SchedulerError(Exception):
    """Raised when a module cannot be placed as specified."""


@dataclass
class TaskPlacement:
    """Everything the runtime needs to execute one task object."""

    obj: UDCObject
    device_type: DeviceType
    amount: float
    unit: ResourceUnit
    compute_rate: float


class _DagMemo:
    """Pure structural facts about one DAG, computed once per batch round.

    ``pulls`` maps each task to the static half of its locality inputs —
    (source module name, byte weight) in the exact order the serial path
    scans them (edges first, then affinity hints), so the memoized cost
    sums are bit-identical to the uncached ones.
    """

    __slots__ = ("dag", "groups", "stages", "pulls")

    def __init__(self, dag: ModuleDAG):
        self.dag = dag  # strong ref: keeps id(dag) stable for the round
        self.groups = dag.merged_colocation_groups()
        self.stages = dag.task_stages()
        pulls: Dict[str, List[Tuple[str, int]]] = {}
        for edge in dag.edges:
            pulls.setdefault(edge.dst, []).append(
                (edge.src, edge.bytes_transferred)
            )
        for (task_name, data_name), weight in dag.affinities.items():
            pulls.setdefault(task_name, []).append((data_name, weight))
        self.pulls = pulls


class _BatchCache:
    """Round-scoped memos for :meth:`UdcScheduler.batch_round`.

    Everything cached here is a pure function of inputs that cannot
    change while a round is open: the simulation clock does not advance
    between placements (no execution, failures, or partitions), so DAG
    structure, fabric transfer times, and the resulting argmin rack
    choices are all frozen.  Serial submissions interleave with
    execution, where none of this holds — which is why these memos only
    exist inside a round.
    """

    __slots__ = ("dags", "transfers", "locations")

    def __init__(self):
        #: id(dag) -> _DagMemo (the memo holds the dag alive)
        self.dags: Dict[int, _DagMemo] = {}
        #: (src, dst, size_bytes) -> seconds
        self.transfers: Dict[Tuple[Location, Location, int], float] = {}
        #: (pulls tuple, candidate-racks tuple) -> argmin rack
        self.locations: Dict[Tuple, Location] = {}


class UdcScheduler:
    """Places UDC objects onto a disaggregated datacenter."""

    def __init__(
        self,
        datacenter: Datacenter,
        bundles: BundleManager,
        telemetry: Optional[Telemetry] = None,
        use_locality: bool = True,
        breakers=None,
    ):
        self.datacenter = datacenter
        self.bundles = bundles
        self.telemetry = telemetry or Telemetry()
        self.use_locality = use_locality
        #: CircuitBreakerRegistry (or None): devices with open breakers
        #: are skipped during explicit device picks (standbys, groups);
        #: pool auto-placement consults it via pool.admission_filter.
        self.breakers = breakers
        #: placement-cell label (set by the sharded serving layer): when
        #: not None, placement counters and batch-round latency carry a
        #: ``cell`` label.  None keeps label sets byte-identical to the
        #: unsharded output.
        self.cell_label: Optional[str] = None
        #: round-robin cursor for locality-oblivious spreading
        self._rr_rack = 0
        #: inside a batch round: per-placement spans and wall-clock
        #: observations coalesce into one round-level record
        self._in_batch = False
        #: round-scoped pure-input memos; non-None only inside batch_round
        self._batch: Optional[_BatchCache] = None

    def _metric_labels(self, **base) -> Optional[Dict[str, str]]:
        """Metric labels with the cell label merged in when sharded.

        Only called on telemetry-enabled paths; with telemetry disabled
        the ``inc``/``observe`` guards fire first, so the disabled hot
        path never builds a dict here.
        """
        if self.cell_label is not None:
            base["cell"] = self.cell_label
        return base or None

    def _breaker_allows(self, device: Device) -> bool:
        if self.breakers is None:
            return True
        return self.breakers.allows(device.device_id, self._now())

    def _span_start(self, *args, **kwargs) -> Span:
        """Per-placement span, suppressed inside a batch round (the round
        span stands in for them; placement *decisions* are unaffected)."""
        if self._in_batch:
            return NULL_SPAN
        return self.telemetry.span_start(*args, **kwargs)

    def _track_placement(self) -> bool:
        """Whether to emit per-placement latency/span telemetry."""
        return self.telemetry.enabled and not self._in_batch

    def _dag_memo(self, dag: ModuleDAG) -> Optional[_DagMemo]:
        """The round's structural memo for ``dag``, or None outside a
        batch round (serial placements recompute, since the DAG may be
        mutated between independent submissions)."""
        batch = self._batch
        if batch is None:
            return None
        memo = batch.dags.get(id(dag))
        if memo is None or memo.dag is not dag:
            memo = batch.dags[id(dag)] = _DagMemo(dag)
        return memo

    # -- batched placement ----------------------------------------------------

    @contextmanager
    def batch_round(self, size_hint: int = 0):
        """Amortize placement telemetry over one scheduling round.

        Placements made inside the context take exactly the same
        decisions as serial calls (same pool state transitions, same
        aspect inputs), but per-placement ``schedule``/``allocate`` spans
        and wall-clock histogram samples are replaced by a single
        ``place-batch`` span and one latency observation for the whole
        round — the control-plane cost is paid once, not per app.

        The round also installs a :class:`_BatchCache`: because the clock
        is frozen for the whole round, DAG structure, fabric transfer
        times, and locality argmins are pure and memoized across the
        round's placements.  Cached values reproduce the serial
        computation bit-for-bit (same scan order, same float summation
        order, same argmin tie-breaks), so decisions stay byte-identical.
        """
        if self._in_batch:  # nesting is a no-op: the outer round owns it
            yield
            return
        enabled = self.telemetry.enabled
        t_wall = time.perf_counter() if enabled else 0.0
        span = self.telemetry.span_start(
            self._now(), "scheduler", "place-batch", "schedule",
            batch=size_hint,
        )
        self._in_batch = True
        self._batch = _BatchCache()
        try:
            yield
        finally:
            self._in_batch = False
            self._batch = None
            if enabled:
                self.telemetry.span_end(span, self._now())
                self.telemetry.observe("udc_placement_latency_seconds",
                                       time.perf_counter() - t_wall,
                                       labels=self._metric_labels())

    def place_batch(
        self, requests: List[Tuple[Dict[str, UDCObject], ModuleDAG]]
    ) -> List[Dict[str, TaskPlacement]]:
        """Batch placement entry point: place several admitted apps in
        one round.  Equivalent to calling :meth:`place_tasks` per request
        in order — byte-identical placements — under one
        :meth:`batch_round`."""
        placements: List[Dict[str, TaskPlacement]] = []
        with self.batch_round(len(requests)):
            for objects, dag in requests:
                placements.append(self.place_tasks(objects, dag))
        return placements

    def capacity_report(self) -> Dict[str, Dict[str, float]]:
        """Free/total capacity per device type, in deterministic order.

        A cheap planner-facing snapshot (the economic autopilot's
        firm-vs-spot pressure signal, and ``udc serve --autopilot``
        output): reads pool aggregates only, never scans devices.
        """
        report: Dict[str, Dict[str, float]] = {}
        for pool in sorted(self.datacenter.pools,
                           key=lambda p: p.device_type.value):
            report[pool.device_type.value] = {
                "free": pool.total_free,
                "total": pool.total_capacity,
            }
        return report

    # -- data placement -------------------------------------------------------

    def place_data(self, obj: UDCObject) -> PlacementResult:
        """Allocate replicas for a data object per its aspects."""
        assert isinstance(obj.module, DataModule)
        aspect = obj.aspects.resource or ResourceAspect()
        dist = obj.aspects.distributed
        policy = (dist.replication if dist and dist.replication
                  else ReplicationPolicy(factor=1))
        size = obj.module.size_gb

        media_order: List[DeviceType]
        if aspect.media is not None:
            media_order = [aspect.media]
        elif obj.module.hot:
            media_order = HOT_MEDIA_ORDER
        else:
            media_order = COLD_MEDIA_ORDER

        last_error: Optional[Exception] = None
        t_wall = time.perf_counter() if self._track_placement() else 0.0
        for media in media_order:
            if media not in self.datacenter.pools:
                continue
            pool = self.datacenter.pool(media)
            if pool.total_free < size * policy.factor:
                continue
            placer = ReplicaPlacer(pool)
            try:
                result = placer.place(size, obj.tenant, policy)
            except AllocationError as exc:
                last_error = exc
                continue
            obj.allocations.extend(result.allocations)
            if self.telemetry.enabled:
                self.telemetry.inc("udc_placements_total",
                                   labels=self._metric_labels(kind="data"))
            if self._track_placement():
                # Structured replacement for the old "place-data" event:
                # one zero-sim-duration allocate span carrying the decision.
                span = self.telemetry.span_start(
                    self._now(), obj.name, "place-data", "allocate",
                    media=media.value, replicas=policy.factor,
                    size_gb=size,
                    devices=[a.device.device_id
                             for a in result.allocations],
                )
                self.telemetry.span_end(span, self._now())
                self.telemetry.observe("udc_placement_latency_seconds",
                                       time.perf_counter() - t_wall,
                                       labels=self._metric_labels())
            return result
        raise SchedulerError(
            f"data module {obj.name}: no medium can hold "
            f"{policy.factor} x {size:g} GB "
            f"(tried {[m.value for m in media_order]}; last: {last_error})"
        )

    # -- task placement ---------------------------------------------------------

    def place_tasks(
        self, objects: Dict[str, UDCObject], dag: ModuleDAG
    ) -> Dict[str, TaskPlacement]:
        """Place every task object, honoring co-location groups."""
        placements: Dict[str, TaskPlacement] = {}
        memo = self._dag_memo(dag)
        groups = memo.groups if memo else dag.merged_colocation_groups()
        grouped: Set[str] = set().union(*groups) if groups else set()

        for group in groups:
            members = [objects[name] for name in sorted(group) if name in objects]
            if members:
                placements.update(self._place_group(members, objects, dag))

        for stage in memo.stages if memo else dag.task_stages():
            for name in stage:
                if name in grouped or name not in objects:
                    continue
                obj = objects[name]
                if obj.is_task:
                    placements[name] = self._place_single(obj, objects, dag)
        return placements

    def _choose_device_type(
        self, task: TaskModule, aspect: ResourceAspect
    ) -> DeviceType:
        if aspect.device is not None:
            if aspect.device not in task.device_candidates:
                raise SchedulerError(
                    f"{task.name}: aspect demands {aspect.device.value} but the "
                    f"developer's candidate set is "
                    f"{sorted(d.value for d in task.device_candidates)}"
                )
            return aspect.device
        available = [
            d for d in task.device_candidates if d in self.datacenter.pools
        ]
        if not available:
            raise SchedulerError(
                f"{task.name}: none of the candidate device types exist in "
                f"this datacenter"
            )
        # §3.2: goal-directed selection happens "based on load and
        # available hardware at the run time" — a candidate type whose
        # pool cannot currently host even the smallest grain is skipped
        # (falling back to the full set only if every pool is exhausted,
        # so the error message names the preferred type).
        def has_capacity(device_type: DeviceType) -> bool:
            pool = self.datacenter.pool(device_type)
            grain = self.datacenter.spec.spec_for(device_type).min_grain
            needed = aspect.amount if aspect.amount is not None else grain
            shard = min(needed,
                        self.datacenter.spec.spec_for(device_type).capacity)
            # Any live device with enough free space <=> the pool's max
            # free clears the shard — O(1) off the pool's free index.
            return pool.max_free() + 1e-9 >= shard

        with_capacity = [d for d in available if has_capacity(d)]
        candidates = with_capacity or available
        goal = aspect.goal or ResourceGoal.CHEAPEST
        specs = {d: self.datacenter.spec.spec_for(d) for d in candidates}
        if goal == ResourceGoal.FASTEST:
            return max(candidates, key=lambda d: specs[d].compute_rate)
        # CHEAPEST: minimize cost to finish a unit of work.
        return min(
            candidates,
            key=lambda d: specs[d].unit_price_hour / max(specs[d].compute_rate, 1e-9),
        )

    def _preferred_location(
        self,
        name: str,
        objects: Dict[str, UDCObject],
        dag: ModuleDAG,
        device_type: DeviceType,
    ) -> Optional[Location]:
        """Pick the rack minimizing input-transfer cost (locality, E6).

        With locality disabled, placement models what coarse cluster
        schedulers actually do: round-robin across racks for load balance,
        oblivious to where the module's data lives.
        """
        if not self.use_locality:
            racks = self.datacenter.pool(device_type).live_rack_locations()
            if not racks:
                return None
            self._rr_rack += 1
            return racks[self._rr_rack % len(racks)]
        batch = self._batch
        pulls: List[Tuple[Location, int]] = []
        memo = self._dag_memo(dag)
        if memo is not None:
            for src_name, size in memo.pulls.get(name, ()):
                upstream = objects.get(src_name)
                if upstream is not None and upstream.location is not None:
                    pulls.append((upstream.location, size))
        else:
            for edge in dag.edges:
                if edge.dst != name:
                    continue
                upstream = objects.get(edge.src)
                if upstream is not None and upstream.location is not None:
                    pulls.append((upstream.location, edge.bytes_transferred))
            for (task_name, data_name), weight in dag.affinities.items():
                if task_name != name:
                    continue
                data_obj = objects.get(data_name)
                if data_obj is not None and data_obj.location is not None:
                    pulls.append((data_obj.location, weight))
        if not pulls:
            return None

        fabric = self.datacenter.fabric
        pool = self.datacenter.pool(device_type)
        candidate_racks = pool.live_rack_locations()
        if not candidate_racks:
            return None

        if batch is not None:
            # The full argmin is pure given (inputs, candidates): clock
            # frozen => fabric costs frozen; the key captures the exact
            # candidate order, so min()'s first-wins tie-break matches.
            loc_key = (tuple(pulls), tuple(candidate_racks))
            rack = batch.locations.get(loc_key)
            if rack is None:
                transfers = batch.transfers

                def cost(rack: Location) -> float:
                    total = 0.0
                    for src, size in pulls:
                        t_key = (src, rack, size)
                        t = transfers.get(t_key)
                        if t is None:
                            t = fabric.transfer_time(src, rack, size)
                            transfers[t_key] = t
                        total += t
                    return total

                rack = batch.locations[loc_key] = min(candidate_racks,
                                                      key=cost)
            return rack

        def cost(rack: Location) -> float:
            return sum(
                fabric.transfer_time(src, rack, size) for src, size in pulls
            )

        return min(candidate_racks, key=cost)

    def _resolve_env_kind(
        self, obj: UDCObject, device_type: DeviceType
    ) -> Tuple[EnvKind, bool]:
        execenv = obj.aspects.execenv
        if execenv is None:
            level, single = IsolationLevel.WEAK, False
        elif execenv.env_kind is not None:
            from repro.execenv.environments import ENV_PROFILES

            profile = ENV_PROFILES[execenv.env_kind]
            if device_type not in profile.requires_device:
                raise SchedulerError(
                    f"{obj.name}: environment "
                    f"{execenv.env_kind.value!r} cannot host on "
                    f"{device_type.value} (today's TEEs are CPU-only — the "
                    f"paper's §3.3 gap); pick a CPU device or an isolation "
                    f"tier and let the provider choose the mechanism"
                )
            return execenv.env_kind, execenv.single_tenant
        else:
            level = execenv.isolation or IsolationLevel.WEAK
            single = execenv.single_tenant or level == IsolationLevel.STRONGEST
        profiles = environments_for_level(level, device_type)
        if not profiles:
            raise SchedulerError(
                f"{obj.name}: no environment provides isolation "
                f"{level.value} on {device_type.value}"
            )
        # Provider's pick: the fastest-starting mechanism that satisfies
        # the tier (providers optimize their own churn).
        chosen = min(profiles, key=lambda p: p.cold_start_s)
        return chosen.kind, single

    def _build_unit(
        self,
        obj: UDCObject,
        device_type: DeviceType,
        amount: float,
        preferred: Optional[Location],
        device: Optional[Device] = None,
        parent: Optional[Span] = None,
    ) -> Tuple[ResourceUnit, float]:
        aspect = obj.aspects.resource or ResourceAspect()
        env_kind, single_tenant = self._resolve_env_kind(obj, device_type)
        alloc_span = self._span_start(
            self._now(), obj.name, "allocate", "allocate", parent=parent,
            device_type=device_type.value, amount=amount,
        )
        pool = self.datacenter.pool(device_type)
        spec = self.datacenter.spec.spec_for(device_type)
        shards: List[Allocation] = []
        try:
            primary_amount = amount
            if device is None and amount > spec.capacity:
                # "Arbitrary amounts" (§1): requests larger than one
                # physical device split into shards across devices, all
                # preferring the same rack.  The primary shard hosts the
                # environment; the rest gang with it.
                remaining = amount
                first = True
                while remaining > 1e-9:
                    shard_amount = min(remaining, spec.capacity)
                    shard = pool.allocate(
                        shard_amount,
                        obj.tenant,
                        single_tenant=single_tenant,
                        preferred_location=preferred,
                    )
                    if first:
                        preferred = preferred or Location(
                            shard.device.location.pod,
                            shard.device.location.rack, 0,
                        )
                        first = False
                    shards.append(shard)
                    remaining -= shard_amount
                compute = shards[0]
                primary_amount = compute.amount
                self.telemetry.event(
                    self._now(), obj.name, "split-allocation",
                    lambda: f"{amount:g} {device_type.value} across "
                            f"{len(shards)} devices",
                )
            else:
                compute = pool.allocate(
                    amount,
                    obj.tenant,
                    single_tenant=single_tenant,
                    preferred_location=preferred,
                    device=device,
                )
                shards = [compute]
        except AllocationError as exc:
            for shard in shards:
                pool.release(shard)
            self.telemetry.span_end(alloc_span, self._now(), status="error")
            raise SchedulerError(f"{obj.name}: {exc}") from exc

        memory: Optional[Allocation] = None
        if aspect.mem_gb > 0 and DeviceType.DRAM in self.datacenter.pools:
            try:
                memory = self.datacenter.pool(DeviceType.DRAM).allocate(
                    aspect.mem_gb,
                    obj.tenant,
                    preferred_location=compute.device.location,
                )
            except AllocationError as exc:
                for shard in shards:
                    pool.release(shard)
                self.telemetry.span_end(alloc_span, self._now(),
                                        status="error")
                raise SchedulerError(f"{obj.name}: memory: {exc}") from exc

        unit = self.bundles.assemble(
            compute=compute,
            memory=memory,
            env_kind=env_kind,
            tenant=obj.tenant,
            single_tenant=single_tenant,
            extra_compute=shards[1:],
        )
        obj.allocations.extend(shards)
        if memory is not None:
            obj.allocations.append(memory)
        obj.environment = unit.environment
        rate = compute.device.spec.compute_rate
        if self.telemetry.enabled:
            # Structured replacement for the old "place-task" event.
            alloc_span.attrs.update(
                device=compute.device.device_id, env=env_kind.value,
                single_tenant=single_tenant,
                warm=unit.environment.from_warm_pool,
                shards=len(shards), mem_gb=aspect.mem_gb,
            )
            self.telemetry.span_end(alloc_span, self._now())
            self.telemetry.inc("udc_placements_total",
                               labels=self._metric_labels(kind="task"))
        return unit, rate

    def _place_single(
        self, obj: UDCObject, objects: Dict[str, UDCObject], dag: ModuleDAG
    ) -> TaskPlacement:
        task = obj.module
        assert isinstance(task, TaskModule)
        aspect = obj.aspects.resource or ResourceAspect()
        t_wall = time.perf_counter() if self._track_placement() else 0.0
        schedule_span = self._span_start(
            self._now(), obj.name, "schedule", "schedule",
        )
        try:
            device_type = self._choose_device_type(task, aspect)
            spec = self.datacenter.spec.spec_for(device_type)
            amount = (aspect.amount if aspect.amount is not None
                      else spec.min_grain)
            preferred = self._preferred_location(
                obj.name, objects, dag, device_type
            )
            unit, rate = self._build_unit(
                obj, device_type, amount, preferred, parent=schedule_span
            )
            self._place_standbys(obj, device_type, amount, unit)
        except SchedulerError:
            self.telemetry.span_end(schedule_span, self._now(),
                                    status="error")
            raise
        if self._track_placement():
            schedule_span.attrs.update(
                device_type=device_type.value, amount=amount,
                goal=(aspect.goal or ResourceGoal.CHEAPEST).value,
                preferred_rack=str(preferred) if preferred else None,
            )
            self.telemetry.span_end(schedule_span, self._now())
            self.telemetry.observe("udc_placement_latency_seconds",
                                   time.perf_counter() - t_wall,
                                   labels=self._metric_labels())
        return TaskPlacement(
            obj=obj, device_type=device_type, amount=amount, unit=unit,
            compute_rate=rate,
        )

    def _place_standbys(self, obj, device_type, amount, unit) -> None:
        """Task replication (Table 1's "Rep 2x" on task modules): keep
        ``factor - 1`` hot-standby allocations on *other* devices.

        Standbys cost money while held (the paper's "more replicas is more
        expensive") and let failover skip re-allocation.
        """
        dist = obj.aspects.distributed
        if dist is None or dist.replication is None or dist.replication.factor <= 1:
            return
        pool = self.datacenter.pool(device_type)
        primary_device = unit.compute.device
        single = unit.environment.single_tenant
        # devices_by_seq() is maintained sorted by the pool — no per-replica
        # O(N log N) re-sort on this path.
        ordered = pool.devices_by_seq()
        for _ in range(dist.replication.factor - 1):
            candidate = next(
                (
                    d for d in ordered
                    if d is not primary_device
                    and d.can_fit(amount, obj.tenant, single)
                    and self._breaker_allows(d)
                ),
                None,
            )
            if candidate is None:
                self.telemetry.event(
                    self._now(), obj.name, "standby-degraded",
                    "no device available for a task standby replica",
                )
                return
            standby = pool.allocate(
                amount, obj.tenant, single_tenant=single, device=candidate
            )
            obj.allocations.append(standby)
            self.telemetry.event(
                self._now(), obj.name, "place-standby",
                lambda: f"{amount:g} {device_type.value} "
                        f"@ {candidate.device_id}",
            )

    def _place_group(
        self,
        members: List[UDCObject],
        objects: Dict[str, UDCObject],
        dag: ModuleDAG,
    ) -> Dict[str, TaskPlacement]:
        """Co-location: all members on one physical device (hard)."""
        shared = frozenset.intersection(
            *(m.module.device_candidates for m in members)
        )
        # Respect any member's explicit device pin inside the shared set.
        pinned = {
            m.aspects.resource.device
            for m in members
            if m.aspects.resource and m.aspects.resource.device
        }
        pinned.discard(None)
        if pinned:
            if len(pinned) > 1 or not pinned <= shared:
                raise SchedulerError(
                    f"colocate group {[m.name for m in members]}: conflicting "
                    f"device pins {sorted(d.value for d in pinned)}"
                )
            device_type = next(iter(pinned))
        else:
            goal_aspect = members[0].aspects.resource or ResourceAspect()
            probe = TaskModule(
                name="__group__", work=1.0, device_candidates=shared
            )
            device_type = self._choose_device_type(probe, goal_aspect)

        spec = self.datacenter.spec.spec_for(device_type)
        amounts = [
            (m.aspects.resource.amount
             if m.aspects.resource and m.aspects.resource.amount
             else spec.min_grain)
            for m in members
        ]
        total = sum(amounts)
        single = any(
            m.aspects.execenv and m.aspects.execenv.single_tenant for m in members
        )
        pool = self.datacenter.pool(device_type)
        preferred = self._preferred_location(
            members[0].name, objects, dag, device_type
        )
        # min() over the eligible devices equals first-of-sorted (the key
        # ends in the unique seq) without sorting the whole pool.
        host = min(
            (
                d for d in pool.devices
                if d.can_fit(total, members[0].tenant, single)
                and self._breaker_allows(d)
            ),
            key=lambda d: (
                0 if preferred is not None
                and d.location.same_rack(preferred) else 1,
                d.free,
                d.seq,
            ),
            default=None,
        )
        if host is None:
            raise SchedulerError(
                f"colocate group {[m.name for m in members]}: no single "
                f"{device_type.value} device has {total:g} free units"
            )
        placements: Dict[str, TaskPlacement] = {}
        for member, amount in zip(members, amounts):
            t_wall = time.perf_counter() if self._track_placement() else 0.0
            schedule_span = self._span_start(
                self._now(), member.name, "schedule", "schedule",
                colocated=True, host=host.device_id,
            )
            try:
                unit, rate = self._build_unit(
                    member, device_type, amount, preferred=None, device=host,
                    parent=schedule_span,
                )
            except SchedulerError:
                self.telemetry.span_end(schedule_span, self._now(),
                                        status="error")
                raise
            if self._track_placement():
                self.telemetry.span_end(schedule_span, self._now())
                self.telemetry.observe("udc_placement_latency_seconds",
                                       time.perf_counter() - t_wall,
                                       labels=self._metric_labels())
            placements[member.name] = TaskPlacement(
                obj=member, device_type=device_type, amount=amount, unit=unit,
                compute_rate=rate,
            )
        return placements

    def _now(self) -> float:
        return self.datacenter.sim.now
