"""Declarative aspect specification language (Design Principle 2).

*"We propose to let the IT team specify aspects in a declarative way and
to decouple these specifications from their low-level implementation."*

The concrete syntax is nested dictionaries (JSON/YAML-shaped), one entry
per module::

    {
      "A2": {
        "resource": {"device": "gpu", "amount": 1},
        "execenv": {"single_tenant": true},
        "distributed": {"replication": 1, "checkpoint": true},
      },
      "S1": {
        "resource": {"media": "ssd"},
        "execenv": {"protection": ["encrypt", "integrity"]},
        "distributed": {"replication": 3, "consistency": "sequential"},
      },
    }

Shorthand strings from Table 1 also parse — ``"fastest"``, ``"cheapest"``,
``"gpu"`` for the resource aspect — so the Table-1 reproduction reads like
the paper.  All errors are collected and reported together with the module
and field that caused them (an IT team debugging a 200-module spec should
not play whack-a-mole).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.aspects import (
    AspectBundle,
    DistributedAspect,
    ExecEnvAspect,
    ResourceAspect,
    ResourceGoal,
)
from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.recovery import RecoveryStrategy
from repro.distsem.replication import ReplicationPolicy
from repro.distsem.resilience import HedgePolicy, RetryPolicy
from repro.execenv.environments import EnvKind
from repro.execenv.isolation import IsolationLevel
from repro.execenv.protection import ProtectionPolicy
from repro.hardware.devices import DeviceType

__all__ = ["SpecError", "UserDefinition", "parse_definition"]


class SpecError(Exception):
    """Raised with all diagnostics when a user definition is invalid."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


@dataclass
class UserDefinition:
    """A parsed, validated set of per-module aspect bundles."""

    bundles: Dict[str, AspectBundle] = field(default_factory=dict)

    def bundle_for(self, module_name: str) -> AspectBundle:
        """The declared bundle, or an empty one (all-defaults)."""
        return self.bundles.get(module_name, AspectBundle())

    def __contains__(self, module_name: str) -> bool:
        return module_name in self.bundles


_DEVICE_NAMES = {d.value: d for d in DeviceType}
_ENV_NAMES = {e.value: e for e in EnvKind}
_ISOLATION_NAMES = {l.value: l for l in IsolationLevel}
_CONSISTENCY_NAMES = {c.value: c for c in ConsistencyLevel}
_PREFERENCE_NAMES = {p.value: p for p in OpPreference}
_RECOVERY_NAMES = {r.value: r for r in RecoveryStrategy}
_PROTECTION_FLAGS = {"encrypt", "integrity", "replay"}


def parse_definition(
    raw: Dict[str, Any],
    *,
    analyze: bool = False,
    app: Any = None,
    datacenter: Any = None,
) -> UserDefinition:
    """Parse and validate a whole user definition.

    Raises :class:`SpecError` carrying every problem found.

    With ``analyze=True`` the parsed definition is additionally run
    through the static analyzer (:func:`repro.analysis.analyze_definition`
    — optionally against ``app`` and ``datacenter``), and any
    error-severity finding raises :class:`repro.analysis.AnalysisError`.
    """
    if not isinstance(raw, dict):
        raise SpecError(["definition must be a mapping of module name -> aspects"])
    problems: List[str] = []
    definition = UserDefinition()
    for module_name, aspects in raw.items():
        if not isinstance(aspects, dict):
            problems.append(f"{module_name}: aspects must be a mapping")
            continue
        unknown = set(aspects) - {"resource", "execenv", "distributed"}
        if unknown:
            problems.append(
                f"{module_name}: unknown aspect(s) {sorted(unknown)} "
                f"(expected resource/execenv/distributed)"
            )
        resource = _parse_resource(module_name, aspects.get("resource"), problems)
        execenv = _parse_execenv(module_name, aspects.get("execenv"), problems)
        distributed = _parse_distributed(
            module_name, aspects.get("distributed"), problems
        )
        definition.bundles[module_name] = AspectBundle(
            resource=resource, execenv=execenv, distributed=distributed
        )
    if problems:
        raise SpecError(problems)
    if analyze:
        # Imported here: repro.analysis depends on this module.
        from repro.analysis import AnalysisError, analyze_definition

        report = analyze_definition(definition, app=app, datacenter=datacenter)
        if not report.ok:
            raise AnalysisError(report)
    return definition


def _parse_resource(
    module: str, raw: Any, problems: List[str]
) -> Optional[ResourceAspect]:
    if raw is None:
        return None
    if isinstance(raw, str):
        raw = _resource_shorthand(module, raw, problems)
        if raw is None:
            return None
    if not isinstance(raw, dict):
        problems.append(f"{module}.resource: must be a mapping or shorthand string")
        return None
    try:
        device = _lookup(raw.get("device"), _DEVICE_NAMES, f"{module}.resource.device")
        media = _lookup(raw.get("media"), _DEVICE_NAMES, f"{module}.resource.media")
        goal = None
        if raw.get("goal") is not None:
            goal_name = str(raw["goal"]).lower()
            if goal_name not in (g.value for g in ResourceGoal):
                raise ValueError(f"{module}.resource.goal: unknown goal {goal_name!r}")
            goal = ResourceGoal(goal_name)
        return ResourceAspect(
            device=device,
            goal=goal,
            amount=raw.get("amount"),
            mem_gb=float(raw.get("mem_gb", 0.0)),
            media=media,
        )
    except (ValueError, KeyError, TypeError) as exc:
        problems.append(f"{module}.resource: {exc}")
        return None


def _resource_shorthand(
    module: str, text: str, problems: List[str]
) -> Optional[Dict[str, Any]]:
    """Table-1 style cell: 'Fastest', 'Cheapest', 'GPU', 'CPU', 'SSD', 'DRAM'."""
    token = text.strip().lower()
    if token in ("fastest", "cheapest"):
        return {"goal": token}
    if token in _DEVICE_NAMES:
        device_type = _DEVICE_NAMES[token]
        if device_type.device_class.value in ("memory", "storage"):
            return {"media": token}
        return {"device": token}
    problems.append(f"{module}.resource: unknown shorthand {text!r}")
    return None


def _parse_execenv(
    module: str, raw: Any, problems: List[str]
) -> Optional[ExecEnvAspect]:
    if raw is None:
        return None
    if not isinstance(raw, dict):
        problems.append(f"{module}.execenv: must be a mapping")
        return None
    try:
        isolation = _lookup(
            raw.get("isolation"), _ISOLATION_NAMES, f"{module}.execenv.isolation"
        )
        env_kind = _lookup(raw.get("env"), _ENV_NAMES, f"{module}.execenv.env")
        protection_raw = raw.get("protection", [])
        if isinstance(protection_raw, str):
            protection_raw = [protection_raw]
        flags = {str(f).lower() for f in protection_raw}
        unknown = flags - _PROTECTION_FLAGS
        if unknown:
            raise ValueError(f"unknown protection flag(s) {sorted(unknown)}")
        return ExecEnvAspect(
            isolation=isolation,
            env_kind=env_kind,
            single_tenant=bool(raw.get("single_tenant", False)),
            protection=ProtectionPolicy(
                encrypt="encrypt" in flags,
                integrity="integrity" in flags,
                replay_protect="replay" in flags,
            ),
        )
    except (ValueError, KeyError, TypeError) as exc:
        problems.append(f"{module}.execenv: {exc}")
        return None


def _parse_distributed(
    module: str, raw: Any, problems: List[str]
) -> Optional[DistributedAspect]:
    if raw is None:
        return None
    if not isinstance(raw, dict):
        problems.append(f"{module}.distributed: must be a mapping")
        return None
    try:
        replication = None
        if raw.get("replication") is not None:
            factor = int(raw["replication"])
            replication = ReplicationPolicy(
                factor=factor,
                anti_affinity=bool(raw.get("anti_affinity", True)),
            )
        consistency = _lookup(
            raw.get("consistency"), _CONSISTENCY_NAMES,
            f"{module}.distributed.consistency",
        )
        preference = _lookup(
            raw.get("preference"), _PREFERENCE_NAMES,
            f"{module}.distributed.preference",
        ) or OpPreference.NONE
        recovery = _lookup(
            raw.get("recovery"), _RECOVERY_NAMES, f"{module}.distributed.recovery"
        )
        data_consistency = {}
        for data_name, level_name in dict(raw.get("data_consistency", {})).items():
            level = _lookup(
                level_name, _CONSISTENCY_NAMES,
                f"{module}.distributed.data_consistency[{data_name}]",
            )
            data_consistency[str(data_name)] = level
        retry = _parse_retry(module, raw.get("retry"), problems)
        hedge = _parse_hedge(module, raw.get("hedge"), problems)
        deadline_s = raw.get("deadline_s")
        if deadline_s is not None:
            deadline_s = float(deadline_s)
        cost_cap = raw.get("cost_cap_dollars")
        if cost_cap is not None:
            cost_cap = float(cost_cap)
        return DistributedAspect(
            replication=replication,
            consistency=consistency,
            preference=preference,
            recovery=recovery,
            checkpoint=bool(raw.get("checkpoint", False)),
            checkpoint_interval=float(raw.get("checkpoint_interval", 0.25)),
            failure_domain=raw.get("failure_domain"),
            data_consistency=data_consistency,
            retry=retry,
            deadline_s=deadline_s,
            hedge=hedge,
            cost_cap_dollars=cost_cap,
            persistent=bool(raw.get("persistent", False)),
        )
    except (ValueError, KeyError, TypeError) as exc:
        problems.append(f"{module}.distributed: {exc}")
        return None


def _parse_retry(
    module: str, raw: Any, problems: List[str]
) -> Optional[RetryPolicy]:
    if raw is None:
        return None
    try:
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            # shorthand: "retry": 3 means 3 attempts, default backoff
            return RetryPolicy(max_attempts=int(raw))
        if not isinstance(raw, dict):
            raise ValueError("must be a mapping or an attempt count")
        unknown = set(raw) - {
            "max_attempts", "base_backoff_s", "multiplier",
            "max_backoff_s", "jitter",
        }
        if unknown:
            raise ValueError(f"unknown retry field(s) {sorted(unknown)}")
        return RetryPolicy(
            max_attempts=int(raw.get("max_attempts", 3)),
            base_backoff_s=float(raw.get("base_backoff_s", 0.5)),
            multiplier=float(raw.get("multiplier", 2.0)),
            max_backoff_s=float(raw.get("max_backoff_s", 60.0)),
            jitter=float(raw.get("jitter", 0.1)),
        )
    except (ValueError, KeyError, TypeError) as exc:
        problems.append(f"{module}.distributed.retry: {exc}")
        return None


def _parse_hedge(
    module: str, raw: Any, problems: List[str]
) -> Optional[HedgePolicy]:
    if raw is None:
        return None
    try:
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            # shorthand: "hedge": 1.5 means hedge at 1.5x expected latency
            return HedgePolicy(latency_factor=float(raw))
        if not isinstance(raw, dict):
            raise ValueError("must be a mapping or a latency factor")
        unknown = set(raw) - {"after_s", "latency_factor", "max_hedges"}
        if unknown:
            raise ValueError(f"unknown hedge field(s) {sorted(unknown)}")
        after_s = raw.get("after_s")
        latency_factor = raw.get("latency_factor")
        return HedgePolicy(
            after_s=float(after_s) if after_s is not None else None,
            latency_factor=(
                float(latency_factor) if latency_factor is not None else None
            ),
            max_hedges=int(raw.get("max_hedges", 1)),
        )
    except (ValueError, KeyError, TypeError) as exc:
        problems.append(f"{module}.distributed.hedge: {exc}")
        return None


def _lookup(raw: Any, table: Dict[str, Any], context: str):
    if raw is None:
        return None
    key = str(raw).lower()
    if key not in table:
        raise ValueError(f"{context}: unknown value {raw!r} "
                         f"(expected one of {sorted(table)})")
    return table[key]
