"""UDC core: the paper's primary contribution.

The pieces map onto the paper's three design principles:

* **Principle 1 (aspects)** — :mod:`~repro.core.aspects` defines the three
  aspect types; :mod:`~repro.core.spec` parses their declarative form.
* **Principle 2 (decoupling)** — :mod:`~repro.core.defaults` supplies
  provider fallbacks; :mod:`~repro.core.conflicts` detects and resolves
  cross-module disagreements; the scheduler/runtime choose *how* to
  realize each declaration.
* **Principle 3 (fine granularity + bundling)** —
  :mod:`~repro.core.objects` (module + aspects as one object) and
  :mod:`~repro.core.bundle` (vertically bundled resource units).

The operational pieces: :mod:`~repro.core.scheduler` (placement),
:mod:`~repro.core.telemetry` + :mod:`~repro.core.tuner` (adaptive fine
tuning), :mod:`~repro.core.profiler` (dry-run resource inference),
:mod:`~repro.core.verify` (attestation-backed fulfillment checks), and
:mod:`~repro.core.runtime` (the control plane tying them together).
"""

from repro.core.admission import AdmissionPolicy, FifoAdmission, WeightedFairShare
from repro.core.autosize import autosize
from repro.core.builder import AspectBuilder, DefinitionBuilder, define
from repro.core.aspects import (
    AspectBundle,
    DistributedAspect,
    ExecEnvAspect,
    ResourceAspect,
    ResourceGoal,
)
from repro.core.bundle import BundleManager, ResourceUnit
from repro.core.conflicts import (
    Conflict,
    ConflictError,
    ConflictPolicy,
    detect_conflicts,
    resolve_conflicts,
)
from repro.core.defaults import provider_defaults
from repro.core.objects import ExecutionRecord, UDCObject
from repro.core.profiler import DryRunProfiler, ProfileResult
from repro.core.report import ModuleRow, RunResult
from repro.core.runtime import Submission, UDCRuntime
from repro.core.timeline import ModuleSpan, ascii_gantt, build_timeline
from repro.core.scheduler import SchedulerError, TaskPlacement, UdcScheduler
from repro.core.spec import SpecError, UserDefinition, parse_definition
from repro.core.telemetry import Telemetry
from repro.core.tuner import FineTuner, TuningAction
from repro.core.verify import (
    FulfillmentRecord,
    PropertyCheck,
    VerificationReport,
    verify_run,
)

__all__ = [
    "AdmissionPolicy",
    "AspectBuilder",
    "AspectBundle",
    "BundleManager",
    "DefinitionBuilder",
    "FifoAdmission",
    "WeightedFairShare",
    "define",
    "Conflict",
    "ConflictError",
    "ConflictPolicy",
    "DistributedAspect",
    "DryRunProfiler",
    "ExecEnvAspect",
    "ExecutionRecord",
    "FineTuner",
    "FulfillmentRecord",
    "ModuleRow",
    "ProfileResult",
    "PropertyCheck",
    "ResourceAspect",
    "ResourceGoal",
    "ResourceUnit",
    "RunResult",
    "SchedulerError",
    "ModuleSpan",
    "SpecError",
    "Submission",
    "TaskPlacement",
    "Telemetry",
    "TuningAction",
    "UDCObject",
    "UDCRuntime",
    "UdcScheduler",
    "UserDefinition",
    "VerificationReport",
    "ascii_gantt",
    "autosize",
    "build_timeline",
    "detect_conflicts",
    "parse_definition",
    "provider_defaults",
    "resolve_conflicts",
    "verify_run",
]
