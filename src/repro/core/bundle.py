"""Vertical bundling into self-sustained resource units (Principle 3).

*"We propose to vertically bundle layers of fine-grained pieces into a
self-sustained resource unit.  For example, we can combine some amount of
compute resources (e.g., a CPU core), an execution environment (e.g., a
container), and some distributed API library into one low-level resource
unit for allocation, scheduling, and failure handling."*

A :class:`ResourceUnit` is that bundle.  :class:`BundleManager` assembles
units on demand and, when enabled, keeps warm units so secure-environment
cold starts are paid by the provider's background loop instead of the
tenant's critical path (benchmark E5's ablation toggles this).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.execenv.environments import (
    ENV_PROFILES,
    EnvKind,
    EnvState,
    ExecutionEnvironment,
)
from repro.execenv.warmpool import WarmPool
from repro.hardware.pools import Allocation

__all__ = ["BundleManager", "ResourceUnit"]

_unit_ids = itertools.count()


#: scaling efficiency of compute shards beyond the primary device: gang
#: members pay cross-device synchronization (the disaggregation tax on
#: single-module scale-out).
REMOTE_SHARD_EFFICIENCY = 0.9


@dataclass
class ResourceUnit:
    """Compute grain + execution environment + distsem library, as one
    allocatable/schedulable/failable unit."""

    unit_id: str
    compute: Allocation
    memory: Optional[Allocation]
    environment: ExecutionEnvironment
    #: additional compute shards when one device could not hold the
    #: requested amount (split allocations, §1's "arbitrary amounts")
    extra_compute: List[Allocation] = field(default_factory=list)
    #: version tag of the bundled distributed-API library
    distsem_library: str = "udc-distsem-1.0"

    @property
    def location(self):
        return self.compute.device.location

    @property
    def total_compute_amount(self) -> float:
        return self.compute.amount + sum(a.amount for a in self.extra_compute)

    @property
    def effective_compute_amount(self) -> float:
        """Usable parallel capacity: remote shards scale sub-linearly."""
        return self.compute.amount + REMOTE_SHARD_EFFICIENCY * sum(
            a.amount for a in self.extra_compute
        )

    @property
    def startup_time(self) -> float:
        return self.environment.startup_time()

    def hourly_cost(self) -> float:
        cost = self.compute.hourly_cost
        cost += sum(a.hourly_cost for a in self.extra_compute
                    if not a.released)
        if self.memory is not None and not self.memory.released:
            cost += self.memory.hourly_cost
        return cost


class BundleManager:
    """Builds resource units; optionally backed by a warm pool."""

    def __init__(self, warm_pool: Optional[WarmPool] = None):
        self.warm_pool = warm_pool
        self.units: List[ResourceUnit] = []

    def assemble(
        self,
        compute: Allocation,
        memory: Optional[Allocation],
        env_kind: EnvKind,
        tenant: str,
        single_tenant: bool,
        extra_compute: Optional[List[Allocation]] = None,
    ) -> ResourceUnit:
        """Create a unit around existing allocations.

        When the warm pool holds a matching environment shell, the unit's
        environment starts warm (``warm_start_s``); otherwise it cold
        starts.  The hit/miss is recorded in the pool's stats.
        """
        environment = ExecutionEnvironment(
            profile=ENV_PROFILES[env_kind],
            tenant=tenant,
            allocations=[a for a in (compute, memory) if a is not None],
            single_tenant=single_tenant,
        )
        if self.warm_pool is not None and self.warm_pool.try_acquire(
            env_kind, single_tenant
        ):
            environment.from_warm_pool = True
        environment.state = EnvState.STARTING
        unit = ResourceUnit(
            unit_id=f"unit-{next(_unit_ids)}",
            compute=compute,
            memory=memory,
            environment=environment,
            extra_compute=list(extra_compute or []),
        )
        self.units.append(unit)
        return unit

    def refill_warm_pool(self) -> int:
        if self.warm_pool is None:
            return 0
        return self.warm_pool.refill()
