"""Typed fluent builder for user definitions.

``repro.define()`` gives the raw-dict specification language
(:mod:`repro.core.spec`) a chainable, discoverable front end::

    definition = (
        define()
        .module("infer").resource(device="gpu", amount=1)
                        .execenv(isolation="strong")
        .module("store").resource(media="ssd")
                        .distributed(replication=3,
                                     consistency="sequential")
        .build()
    )

The builder is a *syntax* layer only: :meth:`DefinitionBuilder.build`
assembles exactly the nested-dict form and compiles it through
:func:`~repro.core.spec.parse_definition`, so validation — and every
:class:`~repro.core.spec.SpecError` diagnostic — is byte-identical to
hand-written dicts.  Raw dicts keep working everywhere; runtime entry
points also accept the builder itself (it compiles on admission).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Union

from repro.core.spec import UserDefinition, parse_definition

__all__ = ["AspectBuilder", "DefinitionBuilder", "define"]


def define() -> "DefinitionBuilder":
    """Start a fluent definition: ``define().module(name).resource(...)``."""
    return DefinitionBuilder()


def _set_present(target: Dict[str, Any], **fields) -> None:
    """Copy only the fields the caller actually supplied (non-None), so
    omitted fields keep provider defaults and parse-time semantics."""
    for key, value in fields.items():
        if value is not None:
            target[key] = value


class DefinitionBuilder:
    """Accumulates per-module aspect declarations."""

    def __init__(self):
        self._modules: Dict[str, Dict[str, Any]] = {}

    def module(self, name: str) -> "AspectBuilder":
        """Open (or re-open) the aspect declaration for one module."""
        self._modules.setdefault(name, {})
        return AspectBuilder(self, name)

    def to_dict(self) -> Dict[str, Any]:
        """The raw nested-dict form this builder compiles to."""
        return copy.deepcopy(self._modules)

    def build(self, analyze: bool = False, app: Any = None,
              datacenter: Any = None) -> UserDefinition:
        """Compile via :func:`parse_definition`; raises
        :class:`~repro.core.spec.SpecError` with the same diagnostics a
        hand-written dict would.  ``analyze=True`` additionally runs the
        static analyzer (against ``app``/``datacenter`` when given) and
        raises :class:`~repro.analysis.AnalysisError` on error findings."""
        return parse_definition(self.to_dict(), analyze=analyze, app=app,
                                datacenter=datacenter)

    # duck-typing hook consumed by UDCRuntime.admit: a builder passed
    # where a definition is expected compiles itself on admission.
    # (Zero-argument on purpose: admission already parsed/validated.)
    def build_definition(self) -> UserDefinition:
        return parse_definition(self.to_dict())


class AspectBuilder:
    """Fluent aspect setters for one module; chains back to the parent
    builder for the next ``.module()`` or the final ``.build()``."""

    def __init__(self, parent: DefinitionBuilder, name: str):
        self._parent = parent
        self._name = name

    def _aspect(self, kind: str) -> Dict[str, Any]:
        return self._parent._modules[self._name].setdefault(kind, {})

    def resource(
        self,
        shorthand: Optional[str] = None,
        *,
        device: Optional[str] = None,
        goal: Optional[str] = None,
        amount: Optional[float] = None,
        mem_gb: Optional[float] = None,
        media: Optional[str] = None,
    ) -> "AspectBuilder":
        """Resource aspect.  ``shorthand`` is the Table-1 cell form
        (``"fastest"``, ``"gpu"``, ...) and replaces the whole aspect;
        keyword fields merge into the mapping form."""
        if shorthand is not None:
            self._parent._modules[self._name]["resource"] = shorthand
            return self
        _set_present(self._aspect("resource"), device=device, goal=goal,
                     amount=amount, mem_gb=mem_gb, media=media)
        return self

    def execenv(
        self,
        *,
        isolation: Optional[str] = None,
        env: Optional[str] = None,
        single_tenant: Optional[bool] = None,
        protection=None,
    ) -> "AspectBuilder":
        _set_present(self._aspect("execenv"), isolation=isolation, env=env,
                     single_tenant=single_tenant, protection=protection)
        return self

    def distributed(
        self,
        *,
        replication: Optional[int] = None,
        anti_affinity: Optional[bool] = None,
        consistency: Optional[str] = None,
        preference: Optional[str] = None,
        recovery: Optional[str] = None,
        checkpoint: Optional[bool] = None,
        checkpoint_interval: Optional[float] = None,
        failure_domain: Optional[str] = None,
        data_consistency: Optional[Dict[str, str]] = None,
        retry: Union[int, Dict[str, Any], None] = None,
        deadline_s: Optional[float] = None,
        hedge: Union[float, Dict[str, Any], None] = None,
        cost_cap_dollars: Optional[float] = None,
        persistent: Optional[bool] = None,
    ) -> "AspectBuilder":
        _set_present(
            self._aspect("distributed"),
            replication=replication, anti_affinity=anti_affinity,
            consistency=consistency, preference=preference,
            recovery=recovery, checkpoint=checkpoint,
            checkpoint_interval=checkpoint_interval,
            failure_domain=failure_domain,
            data_consistency=data_consistency, retry=retry,
            deadline_s=deadline_s, hedge=hedge,
            cost_cap_dollars=cost_cap_dollars,
            persistent=persistent,
        )
        return self

    # -- chaining ----------------------------------------------------------

    def module(self, name: str) -> "AspectBuilder":
        return self._parent.module(name)

    def to_dict(self) -> Dict[str, Any]:
        return self._parent.to_dict()

    def build(self, analyze: bool = False, app: Any = None,
              datacenter: Any = None) -> UserDefinition:
        return self._parent.build(analyze=analyze, app=app,
                                  datacenter=datacenter)

    def build_definition(self) -> UserDefinition:
        return self._parent.build_definition()
