"""Cross-module specification conflict detection (paper §3.4).

*"Users may define conflicting specifications for different modules, e.g.,
two modules sharing data and one specified as sequential consistency and
the other as release consistency.  UDC needs to detect such conflicts and
either chooses the strictest specification or returns an error to the
user."*

A conflict exists when, for one data module, the set of declared
consistency levels — the data module's own plus every accessing task's
``data_consistency`` expectation — contains more than one distinct level.
Resolution policy is exactly the paper's two options: STRICTEST rewrites
everyone to the strictest level (and records what changed); ERROR raises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule
from repro.core.spec import UserDefinition
from repro.distsem.consistency import ConsistencyLevel

__all__ = [
    "Conflict",
    "ConflictError",
    "ConflictPolicy",
    "ConflictResolution",
    "detect_conflicts",
    "resolve_conflicts",
]


class ConflictPolicy(enum.Enum):
    STRICTEST = "strictest"
    ERROR = "error"


class ConflictError(Exception):
    """Raised under ConflictPolicy.ERROR when any conflict exists."""

    def __init__(self, conflicts: List["Conflict"]):
        self.conflicts = conflicts
        super().__init__(
            "; ".join(
                f"data module {c.data_module}: {c.describe()}" for c in conflicts
            )
        )


@dataclass(frozen=True)
class Conflict:
    """One data module with disagreeing consistency declarations."""

    data_module: str
    #: (declaring module, declared level) pairs, data module itself included
    declarations: Tuple[Tuple[str, ConsistencyLevel], ...]

    @property
    def strictest(self) -> ConsistencyLevel:
        return max((level for _m, level in self.declarations), key=lambda l: l.rank)

    def describe(self) -> str:
        decls = ", ".join(f"{m}={l.value}" for m, l in self.declarations)
        return f"conflicting consistency declarations ({decls})"


@dataclass
class ConflictResolution:
    """Outcome of running detection + resolution over a definition."""

    conflicts: List[Conflict] = field(default_factory=list)
    #: data module -> level every party was rewritten to
    resolved_levels: Dict[str, ConsistencyLevel] = field(default_factory=dict)
    definition: UserDefinition = field(default_factory=UserDefinition)


def _declarations_for(
    dag: ModuleDAG, definition: UserDefinition, data_name: str
) -> List[Tuple[str, ConsistencyLevel]]:
    declarations: List[Tuple[str, ConsistencyLevel]] = []
    own = definition.bundle_for(data_name).distributed
    if own is not None and own.consistency is not None:
        declarations.append((data_name, own.consistency))
    # Every task connected to this data module may declare an expectation.
    neighbors = set(dag.predecessors(data_name)) | set(dag.successors(data_name))
    for task_name in sorted(neighbors):
        dist = definition.bundle_for(task_name).distributed
        if dist is None:
            continue
        expected = dist.data_consistency.get(data_name)
        if expected is not None:
            declarations.append((task_name, expected))
    return declarations


def detect_conflicts(dag: ModuleDAG, definition: UserDefinition) -> List[Conflict]:
    """All data modules whose declared consistency levels disagree."""
    conflicts: List[Conflict] = []
    for module in dag.modules.values():
        if not isinstance(module, DataModule):
            continue
        declarations = _declarations_for(dag, definition, module.name)
        levels = {level for _m, level in declarations}
        if len(levels) > 1:
            conflicts.append(
                Conflict(
                    data_module=module.name,
                    declarations=tuple(declarations),
                )
            )
    return conflicts


def resolve_conflicts(
    dag: ModuleDAG,
    definition: UserDefinition,
    policy: ConflictPolicy = ConflictPolicy.STRICTEST,
) -> ConflictResolution:
    """Detect, then either rewrite to the strictest level or error.

    Returns a :class:`ConflictResolution` whose ``definition`` has the
    rewrites applied (the original is not mutated).
    """
    conflicts = detect_conflicts(dag, definition)
    if conflicts and policy == ConflictPolicy.ERROR:
        raise ConflictError(conflicts)

    resolved = UserDefinition(bundles=dict(definition.bundles))
    resolution = ConflictResolution(conflicts=conflicts, definition=resolved)
    for conflict in conflicts:
        strictest = conflict.strictest
        resolution.resolved_levels[conflict.data_module] = strictest
        bundle = resolved.bundle_for(conflict.data_module)
        resolved.bundles[conflict.data_module] = bundle.override_consistency(
            strictest
        )
    return resolution
