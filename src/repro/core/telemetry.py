"""Runtime telemetry (paper §3.2).

*"UDC would perform fine tuning (enlarging or shrinking the amount of
resources for a module, migrating modules across hardware units, etc.)
based on telemetry data collected at the run time."*

:class:`Telemetry` records per-module utilization samples, typed events,
hierarchical trace :class:`~repro.core.observability.Span`\\ s, and a lazy
:class:`~repro.core.observability.MetricsRegistry`.  The tuner consumes
samples, the run report and ``udc trace`` consume spans, ``udc metrics``
consumes the registry, and the pool set's time-weighted utilization
supplies the E2/E4 metrics.  Reads (``samples_for``, ``events_of``,
``spans_for``) are served from incrementally-maintained indexes, not
full-log scans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.core.observability import NULL_SPAN, MetricsRegistry, Span

__all__ = ["Sample", "Telemetry", "TelemetryEvent"]

#: Event details may be given as a zero-arg callable so hot paths never
#: pay f-string formatting when telemetry is disabled (or, for callers
#: on the placement fast path, even when enabled — the string is built
#: once at record time, not at call-site argument-evaluation time).
Detail = Union[str, Callable[[], str]]

#: Tolerance for float noise on utilization samples: values within this
#: epsilon outside [0, 1] are clamped instead of rejected (a usable/
#: allocated division can land at 1 + 1e-16 — or, symmetrically, at
#: -1e-16 after a subtractive correction — without being a caller bug).
_UTIL_EPS = 1e-9


@dataclass(frozen=True)
class Sample:
    """One observation of a module's resource usage."""

    time: float
    module: str
    #: fraction of the module's allocated compute actually busy [0, 1]
    compute_utilization: float
    allocated_amount: float


@dataclass(frozen=True)
class TelemetryEvent:
    """A discrete runtime occurrence (placement, resize, migration, ...)."""

    time: float
    module: str
    kind: str
    detail: str = ""


class Telemetry:
    """Append-only sample/event/span log plus metrics for one run.

    ``enabled=False`` turns the whole thing into a sink: events, samples,
    and spans are discarded without being built (lazy ``detail`` callables
    are never invoked, span emitters get :data:`NULL_SPAN` back, metric
    increments return before touching the registry — which is never even
    constructed), keeping observability off the allocator's critical path
    in fleet-scale runs.  Note the tuner consumes samples — a runtime with
    telemetry disabled also stops adaptive resizing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.samples: List[Sample] = []
        self.events: List[TelemetryEvent] = []
        self.spans: List[Span] = []
        self._samples_by_module: Dict[str, List[Sample]] = {}
        self._events_by_kind: Dict[str, List[TelemetryEvent]] = {}
        self._spans_by_module: Dict[str, List[Span]] = {}
        self._span_ids = itertools.count()
        self._metrics: Optional[MetricsRegistry] = None

    # -- samples and events ---------------------------------------------------

    def sample(self, time: float, module: str, compute_utilization: float,
               allocated_amount: float) -> None:
        if not self.enabled:
            return
        if not -_UTIL_EPS <= compute_utilization <= 1.0 + _UTIL_EPS:
            raise ValueError(
                f"utilization must be in [0,1], got {compute_utilization}"
            )
        sample = Sample(
            time=time,
            module=module,
            compute_utilization=min(max(compute_utilization, 0.0), 1.0),
            allocated_amount=allocated_amount,
        )
        self.samples.append(sample)
        self._samples_by_module.setdefault(module, []).append(sample)

    def event(self, time: float, module: str, kind: str,
              detail: Detail = "") -> None:
        if not self.enabled:
            return
        if callable(detail):
            detail = detail()
        event = TelemetryEvent(time=time, module=module, kind=kind,
                               detail=detail)
        self.events.append(event)
        self._events_by_kind.setdefault(kind, []).append(event)

    def samples_for(self, module: str) -> List[Sample]:
        return list(self._samples_by_module.get(module, ()))

    def events_of(self, kind: str) -> List[TelemetryEvent]:
        return list(self._events_by_kind.get(kind, ()))

    def mean_utilization(self, module: str) -> Optional[float]:
        samples = self._samples_by_module.get(module)
        if not samples:
            return None
        return sum(s.compute_utilization for s in samples) / len(samples)

    def counts(self) -> Dict[str, int]:
        return {
            kind: len(events)
            for kind, events in self._events_by_kind.items()
        }

    # -- spans ---------------------------------------------------------------

    def span_start(self, time: float, module: str, name: str, phase: str,
                   parent: Optional[Span] = None, **attrs) -> Span:
        """Open a span; returns :data:`NULL_SPAN` when disabled.

        ``parent`` may be a live span, ``None`` (a root), or
        :data:`NULL_SPAN` (treated as a root, so emitters can thread a
        possibly-null parent without branching).
        """
        if not self.enabled:
            return NULL_SPAN
        parent_id = (parent.span_id
                     if parent is not None and parent.span_id >= 0 else None)
        span = Span(
            span_id=next(self._span_ids), parent_id=parent_id,
            module=module, name=name, phase=phase, start_s=time,
            attrs=attrs,
        )
        self.spans.append(span)
        self._spans_by_module.setdefault(module, []).append(span)
        return span

    def span_end(self, span: Optional[Span], time: float,
                 status: str = "ok") -> None:
        """Close ``span``.  Tolerates ``None`` and :data:`NULL_SPAN` so
        interrupt handlers can blindly close whatever was in flight."""
        if span is None or not self.enabled or span.span_id < 0:
            return
        span.end_s = time
        span.status = status

    def spans_for(self, module: str) -> List[Span]:
        return list(self._spans_by_module.get(module, ()))

    def span_children(self) -> Dict[Optional[int], List[Span]]:
        """Parent-id -> children map (roots under ``None``), in emit order."""
        children: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        return children

    def root_spans(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    # -- metrics --------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's registry, constructed on first touch."""
        if self._metrics is None:
            self._metrics = MetricsRegistry()
        return self._metrics

    def inc(self, name: str, amount: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        if not self.enabled:
            return
        self.metrics.counter(name, labels).inc(amount)

    def observe(self, name: str, value: float,
                labels: Optional[Dict[str, str]] = None) -> None:
        if not self.enabled:
            return
        self.metrics.histogram(name, labels).observe(value)

    def gauge_set(self, name: str, value: float,
                  labels: Optional[Dict[str, str]] = None) -> None:
        if not self.enabled:
            return
        self.metrics.gauge(name, labels).set(value)
