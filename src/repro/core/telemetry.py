"""Runtime telemetry (paper §3.2).

*"UDC would perform fine tuning (enlarging or shrinking the amount of
resources for a module, migrating modules across hardware units, etc.)
based on telemetry data collected at the run time."*

:class:`Telemetry` records per-module utilization samples and typed
events; the tuner consumes samples, the run report consumes events, and
the pool set's time-weighted utilization supplies the E2/E4 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

__all__ = ["Sample", "Telemetry", "TelemetryEvent"]

#: Event details may be given as a zero-arg callable so hot paths never
#: pay f-string formatting when telemetry is disabled (or, for callers
#: on the placement fast path, even when enabled — the string is built
#: once at record time, not at call-site argument-evaluation time).
Detail = Union[str, Callable[[], str]]


@dataclass(frozen=True)
class Sample:
    """One observation of a module's resource usage."""

    time: float
    module: str
    #: fraction of the module's allocated compute actually busy [0, 1]
    compute_utilization: float
    allocated_amount: float


@dataclass(frozen=True)
class TelemetryEvent:
    """A discrete runtime occurrence (placement, resize, migration, ...)."""

    time: float
    module: str
    kind: str
    detail: str = ""


class Telemetry:
    """Append-only sample and event log for one run.

    ``enabled=False`` turns the log into a sink: events and samples are
    discarded without being built (lazy ``detail`` callables are never
    invoked), which keeps telemetry off the allocator's critical path in
    fleet-scale runs.  Note the tuner consumes samples — a runtime with
    telemetry disabled also stops adaptive resizing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.samples: List[Sample] = []
        self.events: List[TelemetryEvent] = []

    def sample(self, time: float, module: str, compute_utilization: float,
               allocated_amount: float) -> None:
        if not self.enabled:
            return
        if not 0.0 <= compute_utilization <= 1.0 + 1e-9:
            raise ValueError(
                f"utilization must be in [0,1], got {compute_utilization}"
            )
        self.samples.append(
            Sample(
                time=time,
                module=module,
                compute_utilization=min(compute_utilization, 1.0),
                allocated_amount=allocated_amount,
            )
        )

    def event(self, time: float, module: str, kind: str,
              detail: Detail = "") -> None:
        if not self.enabled:
            return
        if callable(detail):
            detail = detail()
        self.events.append(
            TelemetryEvent(time=time, module=module, kind=kind, detail=detail)
        )

    def samples_for(self, module: str) -> List[Sample]:
        return [s for s in self.samples if s.module == module]

    def events_of(self, kind: str) -> List[TelemetryEvent]:
        return [e for e in self.events if e.kind == kind]

    def mean_utilization(self, module: str) -> Optional[float]:
        samples = self.samples_for(module)
        if not samples:
            return None
        return sum(s.compute_utilization for s in samples) / len(samples)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out
