"""High-level objects: module + aspects, bundled (Design Principle 3).

*"We also propose to bundle a fine-grained code/data module and its
aspects into a high-level object, which can be executed on one or more
resource units."*

A :class:`UDCObject` is the runtime's unit of admission, placement, and
accounting.  It is created during admission (after defaults fill-in and
conflict resolution), then progressively annotated with placement results,
execution record, and fulfillment evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.appmodel.module import DataModule, TaskModule
from repro.core.aspects import AspectBundle
from repro.hardware.pools import Allocation

__all__ = ["ExecutionRecord", "UDCObject"]


@dataclass
class ExecutionRecord:
    """What actually happened when a task object ran."""

    started_at: float = 0.0
    finished_at: float = 0.0
    startup_s: float = 0.0
    compute_s: float = 0.0
    transfer_s: float = 0.0
    protection_s: float = 0.0
    checkpoint_s: float = 0.0
    checkpoints_taken: int = 0
    failures: int = 0
    recovered_from_progress: float = 0.0
    migrations: int = 0
    result: object = None
    #: re-executions performed under a RetryPolicy (or the provider's
    #: default crash-recovery loop)
    retries: int = 0
    #: seconds spent waiting in retry backoff
    backoff_s: float = 0.0
    #: speculative duplicates launched under a HedgePolicy
    hedges: int = 0
    #: True when a hedge (not the primary) produced the winning result
    hedge_won: bool = False
    #: True when the module was abandoned at its deadline (SLO violation)
    deadline_missed: bool = False
    #: "primary" | "hedge" | "" — which attempt finished the module
    winner: str = ""

    @property
    def wall_s(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class UDCObject:
    """One module with its resolved aspects and live placement."""

    module: Union[TaskModule, DataModule]
    aspects: AspectBundle
    tenant: str
    #: compute + memory allocations for tasks; replica allocations for data
    allocations: List[Allocation] = field(default_factory=list)
    #: the ExecutionEnvironment hosting a task object (None for data)
    environment: Optional[object] = None
    #: the ReplicatedStore backing a data object (None for tasks)
    store: Optional[object] = None
    record: ExecutionRecord = field(default_factory=ExecutionRecord)
    #: attestation quote when the environment is attestable
    quote: Optional[object] = None

    @property
    def name(self) -> str:
        return self.module.name

    @property
    def is_task(self) -> bool:
        return isinstance(self.module, TaskModule)

    @property
    def is_data(self) -> bool:
        return isinstance(self.module, DataModule)

    @property
    def primary_allocation(self) -> Optional[Allocation]:
        return self.allocations[0] if self.allocations else None

    @property
    def location(self):
        alloc = self.primary_allocation
        return alloc.device.location if alloc else None

    def hourly_cost(self) -> float:
        return sum(a.hourly_cost for a in self.allocations if not a.released)
