"""Run reports: what happened, per module and in aggregate.

The report is the runtime's user-facing output and the substrate for the
Figure-2/Table-1 benchmarks: per-module placement, timing breakdown, cost,
and the distributed-store statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.conflicts import ConflictResolution
from repro.core.objects import UDCObject
from repro.core.telemetry import Telemetry
from repro.core.verify import FulfillmentRecord

__all__ = ["ModuleRow", "RunResult"]


@dataclass
class ModuleRow:
    """One module's line in the run report."""

    name: str
    kind: str
    device: str = "-"
    amount: str = "-"
    env: str = "-"
    single_tenant: bool = False
    replication: int = 1
    consistency: str = "-"
    wall_s: float = 0.0
    startup_s: float = 0.0
    compute_s: float = 0.0
    transfer_s: float = 0.0
    protection_s: float = 0.0
    checkpoint_s: float = 0.0
    failures: int = 0
    cost: float = 0.0
    retries: int = 0
    hedges: int = 0
    hedge_won: bool = False
    deadline_missed: bool = False


@dataclass
class RunResult:
    """Complete outcome of one application run on UDC."""

    app: str
    tenant: str
    makespan_s: float = 0.0
    rows: List[ModuleRow] = field(default_factory=list)
    total_cost: float = 0.0
    objects: Dict[str, UDCObject] = field(default_factory=dict)
    records: Dict[str, FulfillmentRecord] = field(default_factory=dict)
    telemetry: Optional[Telemetry] = None
    conflicts: Optional[ConflictResolution] = None
    #: task name -> functional result (when modules carry callables)
    outputs: Dict[str, object] = field(default_factory=dict)
    fabric_messages: int = 0
    fabric_bytes: int = 0
    warm_hits: int = 0
    warm_misses: int = 0
    #: MetricsRegistry.to_dict() snapshot taken at collection time
    #: (None when the run executed with telemetry disabled)
    metrics: Optional[Dict] = None

    def row(self, name: str) -> ModuleRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    @property
    def total_startup_s(self) -> float:
        return sum(r.startup_s for r in self.rows)

    @property
    def total_failures(self) -> int:
        return sum(r.failures for r in self.rows)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.rows)

    @property
    def total_hedges(self) -> int:
        return sum(r.hedges for r in self.rows)

    @property
    def slo_violations(self) -> int:
        """Modules abandoned at their deadline (the SLO miss count)."""
        return sum(1 for r in self.rows if r.deadline_missed)

    def to_json_dict(self) -> Dict:
        """Serializable summary for dashboards/external tooling.

        Contains the report's aggregates and per-module rows — not the
        live objects (which hold simulator state).
        """
        return {
            "app": self.app,
            "tenant": self.tenant,
            "makespan_s": self.makespan_s,
            "total_cost": self.total_cost,
            "total_failures": self.total_failures,
            "total_retries": self.total_retries,
            "total_hedges": self.total_hedges,
            "slo_violations": self.slo_violations,
            "fabric_messages": self.fabric_messages,
            "fabric_bytes": self.fabric_bytes,
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "metrics": self.metrics,
            "conflicts_resolved": (
                {name: level.value
                 for name, level in self.conflicts.resolved_levels.items()}
                if self.conflicts else {}
            ),
            "modules": [
                {
                    "name": row.name,
                    "kind": row.kind,
                    "device": row.device,
                    "amount": row.amount,
                    "env": row.env,
                    "single_tenant": row.single_tenant,
                    "replication": row.replication,
                    "consistency": row.consistency,
                    "wall_s": row.wall_s,
                    "startup_s": row.startup_s,
                    "compute_s": row.compute_s,
                    "transfer_s": row.transfer_s,
                    "protection_s": row.protection_s,
                    "checkpoint_s": row.checkpoint_s,
                    "failures": row.failures,
                    "retries": row.retries,
                    "hedges": row.hedges,
                    "hedge_won": row.hedge_won,
                    "deadline_missed": row.deadline_missed,
                    "cost": row.cost,
                }
                for row in self.rows
            ],
        }

    def format_table(self) -> str:
        """Human-readable per-module table (the Table-1 echo)."""
        header = (
            f"{'module':<8}{'kind':<6}{'device':<10}{'amt':>6}"
            f"{'env':<22}{'1T':<4}{'rep':>4}{'consist.':<12}"
            f"{'wall_s':>10}{'start_s':>9}{'fail':>5}{'cost_$':>10}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.name:<8}{row.kind:<6}{row.device:<10}{row.amount:>6}"
                f"{row.env:<22}{'Y' if row.single_tenant else '-':<4}"
                f"{row.replication:>4}{row.consistency:<12}"
                f"{row.wall_s:>10.4f}{row.startup_s:>9.3f}"
                f"{row.failures:>5}{row.cost:>10.5f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"makespan: {self.makespan_s:.4f}s   total cost: ${self.total_cost:.5f}"
            f"   failures: {self.total_failures}"
            f"   fabric: {self.fabric_messages} msgs / {self.fabric_bytes} B"
        )
        if self.total_retries or self.total_hedges or self.slo_violations:
            lines.append(
                f"resilience: {self.total_retries} retries   "
                f"{self.total_hedges} hedges   "
                f"{self.slo_violations} SLO violation(s)"
            )
        return "\n".join(lines)
