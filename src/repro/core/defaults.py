"""Provider defaults — "today's cloud" as the fallback (paper footnote 1).

*"Users can also choose to not define one or more layers, in which case we
fall back to traditional cloud solutions."*  The defaults below encode
what a 2021 provider gives an unopinionated tenant: cheapest-fit compute
in a plain container, no replication, eventual consistency, rerun on
failure, no data protection.
"""

from __future__ import annotations

from repro.appmodel.module import DataModule, TaskModule
from repro.core.aspects import (
    AspectBundle,
    DistributedAspect,
    ExecEnvAspect,
    ResourceAspect,
    ResourceGoal,
)
from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.recovery import RecoveryStrategy
from repro.distsem.replication import ReplicationPolicy
from repro.execenv.isolation import IsolationLevel
from repro.execenv.protection import ProtectionPolicy

__all__ = ["provider_defaults"]


def provider_defaults(module) -> AspectBundle:
    """The aspect bundle a module gets when the user declares nothing."""
    if isinstance(module, TaskModule):
        return AspectBundle(
            resource=ResourceAspect(goal=ResourceGoal.CHEAPEST, amount=1.0),
            execenv=ExecEnvAspect(
                isolation=IsolationLevel.WEAK,
                protection=ProtectionPolicy(),
            ),
            distributed=DistributedAspect(
                replication=ReplicationPolicy(factor=1),
                consistency=ConsistencyLevel.EVENTUAL,
                preference=OpPreference.NONE,
                recovery=RecoveryStrategy.RERUN,
            ),
        )
    if isinstance(module, DataModule):
        return AspectBundle(
            resource=ResourceAspect(goal=ResourceGoal.CHEAPEST),
            execenv=ExecEnvAspect(
                isolation=IsolationLevel.WEAK,
                protection=ProtectionPolicy(),
            ),
            distributed=DistributedAspect(
                replication=ReplicationPolicy(factor=1),
                consistency=ConsistencyLevel.EVENTUAL,
                preference=OpPreference.NONE,
                recovery=RecoveryStrategy.NONE,
            ),
        )
    raise TypeError(f"unknown module type {type(module).__name__}")
