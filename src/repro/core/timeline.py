"""Execution timelines from run results.

Turns a :class:`~repro.core.report.RunResult` into:

* a structured timeline (list of per-module spans with phase breakdown),
  serializable to JSON for external tooling;
* an ASCII Gantt chart for terminals — the quickest way to *see* where a
  makespan went (cold starts vs compute vs transfers), which is how the
  E5 bundling result was first spotted;
* a trace-span tree (``udc trace``): the hierarchical
  :class:`~repro.core.observability.Span` log rendered Dapper-style, one
  indented line per span with phase, duration, status, and attributes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.core.report import RunResult
from repro.core.telemetry import Telemetry

__all__ = [
    "ModuleSpan",
    "ascii_gantt",
    "build_timeline",
    "render_span_tree",
    "span_gantt",
]


@dataclass(frozen=True)
class ModuleSpan:
    """One task module's execution span with its phase breakdown."""

    module: str
    start_s: float
    end_s: float
    startup_s: float
    compute_s: float
    transfer_s: float
    protection_s: float
    checkpoint_s: float
    failures: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["duration_s"] = self.duration_s
        return payload


def build_timeline(result: RunResult) -> List[ModuleSpan]:
    """Extract task spans in start order."""
    spans = []
    for name, obj in result.objects.items():
        if not obj.is_task:
            continue
        record = obj.record
        spans.append(
            ModuleSpan(
                module=name,
                start_s=record.started_at,
                end_s=record.finished_at,
                startup_s=record.startup_s,
                compute_s=record.compute_s,
                transfer_s=record.transfer_s,
                protection_s=record.protection_s,
                checkpoint_s=record.checkpoint_s,
                failures=record.failures,
            )
        )
    spans.sort(key=lambda s: (s.start_s, s.module))
    return spans


def ascii_gantt(result: RunResult, width: int = 64) -> str:
    """Render the run as an ASCII Gantt chart.

    Each row is a task module; the bar spans its wall time, shaded by the
    dominant phase: ``s`` startup, ``#`` compute, ``~`` transfer,
    ``c`` checkpoint, ``p`` protection.  ``!`` marks a failure.
    """
    spans = build_timeline(result)
    if not spans:
        return "(no task spans)"
    horizon = max(s.end_s for s in spans)
    if horizon <= 0:
        return "(zero-length run)"
    scale = width / horizon

    lines = [f"timeline 0 .. {horizon:.3f}s  (one column = "
             f"{horizon / width:.3f}s)"]
    for span in spans:
        start_col = int(span.start_s * scale)
        bar_cols = max(int(span.duration_s * scale), 1)
        phases = [
            ("s", span.startup_s),
            ("#", span.compute_s),
            ("~", span.transfer_s),
            ("c", span.checkpoint_s),
            ("p", span.protection_s),
        ]
        total = sum(value for _c, value in phases)
        bar = ""
        if total > 0:
            for char, value in phases:
                bar += char * int(round(bar_cols * value / total))
        bar = (bar or "#")[:bar_cols].ljust(bar_cols, "#")
        marker = "!" * span.failures
        lines.append(
            f"{span.module:>8} |{' ' * start_col}{bar}{marker}"
        )
    lines.append("legend: s=startup  #=compute  ~=transfer  c=checkpoint  "
                 "p=protection  !=failure")
    return "\n".join(lines)


# ------------------------------------------------------------------ trace view

def _fmt_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    parts = ", ".join(f"{k}={v}" for k, v in attrs.items())
    return f"  [{parts}]"


def render_span_tree(
    telemetry: Telemetry, module: Optional[str] = None,
) -> str:
    """Render the span log as an indented tree (``udc trace``).

    One line per span: start time, duration, module, ``name/phase``,
    status (when not ok), and attributes.  Children indent under their
    parent; roots sort by start time then emit order.  ``module`` filters
    to trees whose root belongs to that module.
    """
    children = telemetry.span_children()
    roots = [
        s for s in children.get(None, ())
        if module is None or s.module == module
    ]
    if not roots:
        return "(no spans recorded — was telemetry enabled?)"
    lines: List[str] = []

    def emit(span, depth: int) -> None:
        status = "" if span.status == "ok" else f"  <{span.status}>"
        lines.append(
            f"{span.start_s:>9.3f}s  {span.duration_s:>8.3f}s  "
            f"{'  ' * depth}{span.module}:{span.name}/{span.phase}"
            f"{status}{_fmt_attrs(span.attrs)}"
        )
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    lines.append(f"{'start':>10}  {'dur':>9}  span")
    for root in sorted(roots, key=lambda s: (s.start_s, s.span_id)):
        emit(root, 0)
    return "\n".join(lines)


def span_gantt(telemetry: Telemetry, width: int = 64) -> str:
    """Gantt chart over root lifecycle spans, enriched from child spans.

    Unlike :func:`ascii_gantt` (which shades bars from the aggregate
    execution record), each bar here is painted from the task's actual
    child spans — so retries, hedges, and recovery windows appear where
    they happened in time: ``s`` env-acquire, ``#`` execute, ``r``
    retry/recover, ``h`` hedge, ``.`` waiting.
    """
    children = telemetry.span_children()
    roots = [s for s in children.get(None, ()) if s.phase == "lifecycle"]
    if not roots:
        return "(no lifecycle spans recorded — was telemetry enabled?)"
    horizon = max((s.end_s or s.start_s) for s in roots)
    if horizon <= 0:
        return "(zero-length run)"
    scale = width / horizon
    shade = {"env-acquire": "s", "execute": "#", "retry": "r",
             "recover": "r", "hedge": "h"}

    def paint(row: List[str], span) -> None:
        for child in children.get(span.span_id, ()):
            char = shade.get(child.phase)
            if char is not None and child.end_s is not None:
                lo = int(child.start_s * scale)
                hi = max(int(child.end_s * scale), lo + 1)
                for col in range(lo, min(hi, width)):
                    # execute-phase detail never overpaints a retry mark
                    if char == "#" and row[col] in ("r", "h"):
                        continue
                    row[col] = char
            paint(row, child)

    lines = [f"trace 0 .. {horizon:.3f}s  (one column = "
             f"{horizon / width:.3f}s)"]
    for root in sorted(roots, key=lambda s: (s.start_s, s.module)):
        row = [" "] * width
        lo = int(root.start_s * scale)
        hi = max(int((root.end_s or horizon) * scale), lo + 1)
        for col in range(lo, min(hi, width)):
            row[col] = "."
        paint(row, root)
        status = "" if root.status == "ok" else f"  <{root.status}>"
        lines.append(f"{root.module:>8} |{''.join(row).rstrip()}{status}")
    lines.append("legend: s=env-acquire  #=execute  r=retry/recover  "
                 "h=hedge  .=waiting")
    return "\n".join(lines)
