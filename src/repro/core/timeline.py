"""Execution timelines from run results.

Turns a :class:`~repro.core.report.RunResult` into:

* a structured timeline (list of per-module spans with phase breakdown),
  serializable to JSON for external tooling;
* an ASCII Gantt chart for terminals — the quickest way to *see* where a
  makespan went (cold starts vs compute vs transfers), which is how the
  E5 bundling result was first spotted.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List

from repro.core.report import RunResult

__all__ = ["ModuleSpan", "ascii_gantt", "build_timeline"]


@dataclass(frozen=True)
class ModuleSpan:
    """One task module's execution span with its phase breakdown."""

    module: str
    start_s: float
    end_s: float
    startup_s: float
    compute_s: float
    transfer_s: float
    protection_s: float
    checkpoint_s: float
    failures: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["duration_s"] = self.duration_s
        return payload


def build_timeline(result: RunResult) -> List[ModuleSpan]:
    """Extract task spans in start order."""
    spans = []
    for name, obj in result.objects.items():
        if not obj.is_task:
            continue
        record = obj.record
        spans.append(
            ModuleSpan(
                module=name,
                start_s=record.started_at,
                end_s=record.finished_at,
                startup_s=record.startup_s,
                compute_s=record.compute_s,
                transfer_s=record.transfer_s,
                protection_s=record.protection_s,
                checkpoint_s=record.checkpoint_s,
                failures=record.failures,
            )
        )
    spans.sort(key=lambda s: (s.start_s, s.module))
    return spans


def ascii_gantt(result: RunResult, width: int = 64) -> str:
    """Render the run as an ASCII Gantt chart.

    Each row is a task module; the bar spans its wall time, shaded by the
    dominant phase: ``s`` startup, ``#`` compute, ``~`` transfer,
    ``c`` checkpoint, ``p`` protection.  ``!`` marks a failure.
    """
    spans = build_timeline(result)
    if not spans:
        return "(no task spans)"
    horizon = max(s.end_s for s in spans)
    if horizon <= 0:
        return "(zero-length run)"
    scale = width / horizon

    lines = [f"timeline 0 .. {horizon:.3f}s  (one column = "
             f"{horizon / width:.3f}s)"]
    for span in spans:
        start_col = int(span.start_s * scale)
        bar_cols = max(int(span.duration_s * scale), 1)
        phases = [
            ("s", span.startup_s),
            ("#", span.compute_s),
            ("~", span.transfer_s),
            ("c", span.checkpoint_s),
            ("p", span.protection_s),
        ]
        total = sum(value for _c, value in phases)
        bar = ""
        if total > 0:
            for char, value in phases:
                bar += char * int(round(bar_cols * value / total))
        bar = (bar or "#")[:bar_cols].ljust(bar_cols, "#")
        marker = "!" * span.failures
        lines.append(
            f"{span.module:>8} |{' ' * start_col}{bar}{marker}"
        )
    lines.append("legend: s=startup  #=compute  ~=transfer  c=checkpoint  "
                 "p=protection  !=failure")
    return "\n".join(lines)
