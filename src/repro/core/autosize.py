"""Automatic resource-aspect inference for a whole application (§3.2).

The paper's division of labor: developers declare candidate hardware sets;
the IT team (or the provider, with UDC's tools) dry-runs each task and
turns the measurements into resource aspects.  :func:`autosize` is that
tool at application granularity: it profiles every task module and emits a
definition fragment the runtime accepts directly.

Goals:

* ``latency_target_s`` — per-task budget so the *critical path* of the
  DAG meets an end-to-end target (the budget is the end-to-end target
  split across the task's stage depth);
* ``optimize="cost"`` (default) — cheapest configuration, breaking ties
  toward faster;
* ``optimize="speed"`` — fastest configuration, breaking ties toward
  cheaper.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.appmodel.dag import ModuleDAG
from repro.core.profiler import DryRunProfiler
from repro.core.spec import UserDefinition, parse_definition

__all__ = ["autosize"]


def autosize(
    dag: ModuleDAG,
    end_to_end_latency_s: Optional[float] = None,
    optimize: str = "cost",
    profiler: Optional[DryRunProfiler] = None,
    amounts=None,
) -> UserDefinition:
    """Profile every task and emit resource aspects for the whole app.

    Returns a parsed :class:`UserDefinition` containing only resource
    aspects; merge your own execenv/distributed declarations on top (the
    aspects are orthogonal — Principle 2).
    """
    if optimize not in ("cost", "speed"):
        raise ValueError(f"optimize must be 'cost' or 'speed', got {optimize!r}")
    profiler = profiler or DryRunProfiler()
    dag.validate()

    stage_of: Dict[str, int] = {}
    stages = dag.task_stages()
    for depth, stage in enumerate(stages):
        for name in stage:
            stage_of[name] = depth
    depth_total = max(len(stages), 1)
    per_stage_budget = (
        end_to_end_latency_s / depth_total
        if end_to_end_latency_s is not None
        else None
    )

    # Co-location groups must agree on one device type: restrict each
    # member's choice to the group's shared candidate set.
    allowed: Dict[str, frozenset] = {}
    for group in dag.merged_colocation_groups():
        members = [dag.task(name) for name in group]
        shared = frozenset.intersection(*(m.device_candidates for m in members))
        for name in group:
            allowed[name] = shared

    raw: Dict[str, Dict] = {}
    for task in dag.tasks:
        profile = profiler.profile(task, amounts=amounts)
        entries = [
            e for e in profile.entries
            if task.name not in allowed or e.device_type in allowed[task.name]
        ]
        if not entries:
            raise ValueError(
                f"{task.name}: no profilable device in its co-location "
                f"group's shared candidate set"
            )
        if per_stage_budget is not None:
            meeting = [e for e in entries if e.wall_seconds <= per_stage_budget]
            entry = (min(meeting, key=lambda e: e.cost) if meeting
                     else min(entries, key=lambda e: (e.wall_seconds, e.cost)))
        elif optimize == "speed":
            entry = min(entries, key=lambda e: (e.wall_seconds, e.cost))
        else:
            entry = min(entries, key=lambda e: (e.cost, e.wall_seconds))
        raw[task.name] = {
            "resource": {
                "device": entry.device_type.value,
                "amount": entry.amount,
            }
        }
    return parse_definition(raw)
