"""The three UDC aspect types (paper §3, Design Principle 1).

*"We include three types of aspects: 1) hardware resource demands, 2)
execution environments including security specifications, and 3)
distributed semantics."*

Aspects are attached to modules but orthogonal to application semantics:
an :class:`AspectBundle` carries up to three aspect values for one module,
any of which may be ``None`` — *"they can also choose to not define an
aspect (i.e., fall back to provider's default)"* (Principle 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.recovery import RecoveryStrategy
from repro.distsem.replication import ReplicationPolicy
from repro.distsem.resilience import HedgePolicy, RetryPolicy
from repro.execenv.environments import EnvKind
from repro.execenv.isolation import IsolationLevel
from repro.execenv.protection import ProtectionPolicy
from repro.hardware.devices import DeviceType

__all__ = [
    "AspectBundle",
    "DistributedAspect",
    "ExecEnvAspect",
    "ResourceAspect",
    "ResourceGoal",
]


class ResourceGoal(enum.Enum):
    """Goal-directed resource selection (§3.2: "if users only provide a
    performance/cost goal, then UDC will select resources based on load
    and available hardware")."""

    FASTEST = "fastest"
    CHEAPEST = "cheapest"


@dataclass(frozen=True)
class ResourceAspect:
    """Hardware resource demands for one module (§3.2).

    For **task** modules, exactly one of ``device`` / ``goal`` selects the
    compute type; ``amount`` is how many units (cores/GPUs/...) and
    ``mem_gb`` is working memory drawn from the DRAM pool.

    For **data** modules, ``media`` pins the storage/memory type; leaving
    it unset with ``goal=CHEAPEST`` (or nothing) lets the provider pick
    the cheapest medium that fits, biased to DRAM for hot data.
    """

    device: Optional[DeviceType] = None
    goal: Optional[ResourceGoal] = None
    amount: Optional[float] = None
    mem_gb: float = 0.0
    media: Optional[DeviceType] = None

    def __post_init__(self):
        if self.device is not None and self.goal is not None:
            raise ValueError("specify either an explicit device or a goal, not both")
        if self.amount is not None and self.amount <= 0:
            raise ValueError(f"amount must be positive, got {self.amount}")
        if self.mem_gb < 0:
            raise ValueError(f"mem_gb must be >= 0, got {self.mem_gb}")
        if self.media is not None and self.media.device_class.value not in (
            "memory", "storage"
        ):
            raise ValueError(
                f"media must be a memory/storage type, got {self.media.value}"
            )

    @property
    def is_goal_directed(self) -> bool:
        return self.device is None and self.media is None


@dataclass(frozen=True)
class ExecEnvAspect:
    """Execution environment + security for one module (§3.3).

    Either a tier (``isolation``) or a concrete mechanism (``env_kind``)
    may be named; naming the mechanism makes fulfillment precisely
    verifiable (the paper's argument for non-declarative security specs).
    ``protection`` applies to data *leaving* the environment.
    """

    isolation: Optional[IsolationLevel] = None
    env_kind: Optional[EnvKind] = None
    single_tenant: bool = False
    protection: ProtectionPolicy = ProtectionPolicy()

    def __post_init__(self):
        if self.isolation is not None and self.env_kind is not None:
            raise ValueError(
                "specify an isolation tier or a concrete env kind, not both"
            )

    @property
    def effective_isolation(self) -> Optional[IsolationLevel]:
        """The tier this aspect demands, derived from env_kind if concrete."""
        if self.isolation is not None:
            return self.isolation
        if self.env_kind is not None:
            from repro.execenv.environments import ENV_PROFILES

            base = ENV_PROFILES[self.env_kind].isolation
            if self.single_tenant and base == IsolationLevel.STRONG:
                return IsolationLevel.STRONGEST
            return base
        return None


@dataclass(frozen=True)
class DistributedAspect:
    """Distributed semantics for one module (§3.4).

    ``data_consistency`` lets a *task* module declare the consistency it
    expects of data modules it accesses — the source of the cross-module
    conflicts §3.4 requires UDC to detect.
    """

    replication: Optional[ReplicationPolicy] = None
    consistency: Optional[ConsistencyLevel] = None
    preference: OpPreference = OpPreference.NONE
    recovery: Optional[RecoveryStrategy] = None
    checkpoint: bool = False
    #: take a checkpoint every this fraction of module progress
    checkpoint_interval: float = 0.25
    failure_domain: Optional[str] = None
    data_consistency: Dict[str, ConsistencyLevel] = field(default_factory=dict)
    #: bounded re-execution with backoff (None = provider's crash-recovery
    #: attempt cap, no backoff)
    retry: Optional[RetryPolicy] = None
    #: abandon the module and report an SLO violation past this wall time
    deadline_s: Optional[float] = None
    #: speculative duplicate execution against stragglers
    hedge: Optional[HedgePolicy] = None
    #: declared spending ceiling for this module across retries/hedges;
    #: the analyzer's UDC011 checks the worst case against it
    cost_cap_dollars: Optional[float] = None
    #: the module's data allocations outlive the submission (a standing
    #: deployment); persistent modules are never spot-preemption victims,
    #: so the analyzer's UDC015 rejects pairing this with spot economics
    persistent: bool = False

    def __post_init__(self):
        if self.cost_cap_dollars is not None and self.cost_cap_dollars <= 0:
            raise ValueError(
                f"cost_cap_dollars must be positive, got {self.cost_cap_dollars}"
            )
        if not 0.0 < self.checkpoint_interval <= 1.0:
            raise ValueError(
                f"checkpoint_interval must be in (0, 1], got {self.checkpoint_interval}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.checkpoint and self.recovery is None:
            # Checkpointing without a recovery strategy implies restore.
            object.__setattr__(
                self, "recovery", RecoveryStrategy.CHECKPOINT_RESTORE
            )


@dataclass(frozen=True)
class AspectBundle:
    """All aspects declared for one module; None = provider default."""

    resource: Optional[ResourceAspect] = None
    execenv: Optional[ExecEnvAspect] = None
    distributed: Optional[DistributedAspect] = None

    def with_defaults(self, defaults: "AspectBundle") -> "AspectBundle":
        """Fill undeclared aspects from provider defaults (Principle 2)."""
        return AspectBundle(
            resource=self.resource or defaults.resource,
            execenv=self.execenv or defaults.execenv,
            distributed=self.distributed or defaults.distributed,
        )

    def override_consistency(self, level: ConsistencyLevel) -> "AspectBundle":
        """A copy with the distributed consistency replaced (conflict
        resolution's strictest-wins rewrite)."""
        dist = self.distributed or DistributedAspect()
        return AspectBundle(
            resource=self.resource,
            execenv=self.execenv,
            distributed=replace(dist, consistency=level),
        )
