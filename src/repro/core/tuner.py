"""Adaptive fine-tuning (paper §3.2).

*"Since user specified resources may be inaccurate when executing with
real (and changing) inputs, UDC would perform fine tuning (enlarging or
shrinking the amount of resources for a module, migrating modules across
hardware units, etc.) based on telemetry data collected at the run time."*

The tuner consumes telemetry samples and acts through the pools:

* **shrink** — observed utilization below the target band means the user
  over-declared (e.g. 8 cores for a task whose parallelism caps at 2);
  the allocation is resized down to observed need;
* **grow** — utilization pinned at the top of the band grows the
  allocation toward the declared ceiling, when the device has headroom;
* **migrate** — on device failure (or a resize that cannot fit), the
  module's allocation is rebuilt on another device of the same type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.telemetry import Telemetry
from repro.hardware.devices import DeviceType
from repro.hardware.pools import Allocation, AllocationError
from repro.hardware.topology import Datacenter

__all__ = ["FineTuner", "TuningAction"]


@dataclass(frozen=True)
class TuningAction:
    """One adjustment the tuner made."""

    module: str
    kind: str                 # "shrink" | "grow" | "migrate"
    old_amount: float
    new_amount: float
    #: allocation-unit-hours saved per hour of continued execution
    units_saved: float = 0.0


@dataclass
class FineTuner:
    """Telemetry-driven resize/migrate engine."""

    datacenter: Datacenter
    telemetry: Telemetry
    #: acceptable utilization band; outside it the tuner acts
    band: Tuple[float, float] = (0.6, 0.95)
    enabled: bool = True
    actions: List[TuningAction] = field(default_factory=list)

    def review_allocation(
        self, module: str, allocation: Allocation, declared_amount: float
    ) -> Optional[TuningAction]:
        """Resize ``allocation`` if observed utilization is out of band.

        Returns the action taken, or None.
        """
        if not self.enabled or allocation.released:
            return None
        observed = self.telemetry.mean_utilization(module)
        if observed is None:
            return None
        low, high = self.band
        pool = self.datacenter.pool(allocation.device_type)
        grain = allocation.device.spec.min_grain

        if observed < low:
            # The module only uses observed*amount; shrink to that (snapped
            # up to the device grain).
            needed = max(observed * allocation.amount, grain)
            needed = _snap_up(needed, grain)
            if needed < allocation.amount - 1e-9:
                old = allocation.amount
                pool.resize(allocation, needed)
                action = TuningAction(
                    module=module, kind="shrink",
                    old_amount=old, new_amount=needed,
                    units_saved=old - needed,
                )
                self._record(action)
                return action
        elif observed > high and allocation.amount < declared_amount:
            target = min(declared_amount, allocation.amount * 2)
            target = _snap_up(target, grain)
            try:
                old = allocation.amount
                pool.resize(allocation, target)
            except AllocationError:
                return None
            action = TuningAction(
                module=module, kind="grow",
                old_amount=old, new_amount=target,
            )
            self._record(action)
            return action
        return None

    def migrate(
        self, module: str, allocation: Allocation, tenant: str
    ) -> Optional[Allocation]:
        """Move an allocation to a healthy device of the same type.

        Used after device failure; returns the replacement allocation (the
        caller rewires the module), or None when the pool is exhausted.
        """
        pool = self.datacenter.pool(allocation.device_type)
        amount = allocation.amount
        single = allocation.single_tenant
        pool.release(allocation)
        try:
            replacement = pool.allocate(amount, tenant, single_tenant=single)
        except AllocationError:
            return None
        action = TuningAction(
            module=module, kind="migrate",
            old_amount=amount, new_amount=amount,
        )
        self._record(action)
        return replacement

    def defragment(self, device_type: DeviceType) -> int:
        """Pack a pool's allocations onto fewer devices (§2's "consolidate
        more applications to the same amount of computing resources and
        shutting down the remaining ones").

        Greedy: visit devices from emptiest to fullest; try to move each
        of their allocations onto a fuller device that can host it.  A
        device drained to zero can be powered down by the provider.
        Single-tenant allocations never move onto shared devices (their
        pinning is a user guarantee, not a provider preference).

        Returns the number of devices fully drained.
        """
        if not self.enabled:
            return 0
        pool = self.datacenter.pool(device_type)
        drained = 0
        donors = sorted(
            (d for d in pool.devices if not d.failed and 0 < d.used),
            key=lambda d: d.used,
        )
        for donor in donors:
            moved_all = True
            for alloc_id in list(donor.allocations):
                allocation = next(
                    (a for a in pool._allocations.values()
                     if a.alloc_id == alloc_id), None,
                )
                if allocation is None or allocation.single_tenant:
                    moved_all = False
                    continue
                target = min(
                    (
                        d for d in pool.devices
                        if d is not donor
                        and d.used > 0
                        and d.can_fit(allocation.amount, allocation.tenant,
                                      single_tenant=False)
                    ),
                    key=lambda d: d.free,
                    default=None,
                )
                if target is None:
                    moved_all = False
                    continue
                # Move: re-home the allocation's accounting to the target.
                pool.rehome(allocation, target)
                self._record(TuningAction(
                    module=allocation.tenant, kind="migrate",
                    old_amount=allocation.amount,
                    new_amount=allocation.amount,
                ))
            if moved_all and donor.used == 0:
                drained += 1
        return drained

    def total_units_saved(self) -> float:
        return sum(a.units_saved for a in self.actions)

    def _record(self, action: TuningAction) -> None:
        self.actions.append(action)
        self.telemetry.event(
            self.datacenter.sim.now, action.module, f"tune-{action.kind}",
            lambda: f"{action.old_amount:g} -> {action.new_amount:g}",
        )


def _snap_up(value: float, grain: float) -> float:
    """Round up to the device grain (never bill below it)."""
    import math

    return math.ceil(value / grain - 1e-12) * grain
