"""User-side verification of fulfillment (paper §4).

*"UDC must enable users to verify that the cloud vendor is correctly
providing their selected features ... users can verify important
properties without trusting the vendor and by just trusting the hardware
itself."*  And the limitation: *"many features that UDC allows users to
define cannot be verified with today's remote attestation primitives
(e.g., whether or not resources were provided as specified)."*

For every placed object the runtime emits a :class:`FulfillmentRecord` —
the provider's claim of what was provided.  :func:`verify_run` then checks
each promised property:

* **attested** — covered by the hardware measurement; a lying provider is
  caught (quote mismatch);
* **trusted** — fulfilled per provider telemetry, but outside the
  measurement: the user must take the provider's word (resource amounts,
  replication factor, consistency level);
* **violated** — the claim or quote contradicts the promise.

Benchmark E12 runs this against both an honest and a dishonest provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.objects import UDCObject
from repro.execenv.attestation import (
    ATTESTABLE_PROPERTIES,
    AttestationError,
    Verifier,
)
from repro.execenv.isolation import verifiable_by_user

__all__ = ["FulfillmentRecord", "PropertyCheck", "VerificationReport", "verify_run"]


@dataclass(frozen=True)
class PropertyCheck:
    """The verdict on one promised property of one module."""

    module: str
    prop: str
    promised: str
    provided: str
    #: "attested" | "trusted" | "violated"
    status: str

    @property
    def user_verifiable(self) -> bool:
        return self.status == "attested"


@dataclass
class FulfillmentRecord:
    """Provider-side claim of what one object actually received."""

    module: str
    device_type: Optional[str] = None
    amount: Optional[float] = None
    env_kind: Optional[str] = None
    single_tenant: bool = False
    isolation: Optional[str] = None
    replication_factor: Optional[int] = None
    consistency: Optional[str] = None
    protections: List[str] = field(default_factory=list)
    quote: Optional[object] = None
    device: Optional[object] = None


@dataclass
class VerificationReport:
    """All property checks for one run."""

    checks: List[PropertyCheck] = field(default_factory=list)

    @property
    def violated(self) -> List[PropertyCheck]:
        return [c for c in self.checks if c.status == "violated"]

    @property
    def attested(self) -> List[PropertyCheck]:
        return [c for c in self.checks if c.status == "attested"]

    @property
    def trusted(self) -> List[PropertyCheck]:
        return [c for c in self.checks if c.status == "trusted"]

    @property
    def ok(self) -> bool:
        return not self.violated

    def for_module(self, module: str) -> List[PropertyCheck]:
        return [c for c in self.checks if c.module == module]


def _values_match(promised: str, provided: str) -> bool:
    if promised == provided:
        return True
    try:  # "4" and "4.0" are the same amount
        return float(promised) == float(provided)
    except (TypeError, ValueError):
        return False


def _check(module: str, prop: str, promised, provided, attested: bool) \
        -> PropertyCheck:
    promised_s, provided_s = str(promised), str(provided)
    if not _values_match(promised_s, provided_s):
        status = "violated"
    elif attested:
        status = "attested"
    else:
        status = "trusted"
    return PropertyCheck(
        module=module, prop=prop, promised=promised_s, provided=provided_s,
        status=status,
    )


def verify_run(
    objects: Dict[str, UDCObject],
    records: Dict[str, FulfillmentRecord],
    verifier: Optional[Verifier] = None,
) -> VerificationReport:
    """Cross-check every object's promises against fulfillment records.

    When ``verifier`` is given, quotes are checked cryptographically;
    a record whose quote fails verification marks its attestable
    properties violated even if the textual claim matches (the provider's
    *claim* can lie; the *quote* cannot).
    """
    report = VerificationReport()
    for name, obj in sorted(objects.items()):
        record = records.get(name)
        if record is None:
            continue

        quote_ok = False
        measured: Dict[str, str] = {}
        if verifier is not None and record.quote is not None:
            try:
                if record.device is not None:
                    verifier.trust_device(record.device)
                verifier.verify(record.quote, {})
                quote_ok = True
                measured = dict(record.quote.measurement.items())
            except AttestationError:
                quote_ok = False

        execenv = obj.aspects.execenv
        # Environment properties only exist for task objects — a data
        # module's "environment" is its storage devices; what it promises
        # users is the protection policy, checked below.
        if execenv is not None and obj.is_task:
            promised_level = execenv.effective_isolation
            if promised_level is not None:
                attestable_tier = verifiable_by_user(promised_level)
                report.checks.append(
                    _check(name, "isolation", promised_level.value,
                           record.isolation, attested=attestable_tier and quote_ok)
                )
            if execenv.env_kind is not None:
                from repro.execenv.environments import ENV_PROFILES

                promise_attestable = ENV_PROFILES[execenv.env_kind].attestable
                if quote_ok:
                    provided = measured.get("env_kind", record.env_kind)
                elif verifier is not None and promise_attestable:
                    # The user demanded an attestable mechanism; a missing
                    # or invalid quote means whatever launched was NOT that
                    # mechanism (honest launches of attestable envs always
                    # produce quotes).  The claim alone cannot stand in.
                    provided = "<no valid quote>"
                else:
                    provided = record.env_kind
                report.checks.append(
                    _check(name, "env_kind", execenv.env_kind.value, provided,
                           attested=quote_ok)
                )
            if execenv.single_tenant:
                tier = execenv.effective_isolation
                # A quote can only be expected where the hosting device
                # carries a hardware root of trust.  Today that means CPUs:
                # single tenancy on a GPU/FPGA (the paper's §3.3 challenge)
                # is physically enforced but NOT user-verifiable, so it
                # degrades to a trusted claim rather than a violation.
                device_attestable = (
                    record.device is not None
                    and record.device.spec.attestable
                )
                expects_quote = (
                    tier is not None
                    and verifiable_by_user(tier)
                    and device_attestable
                )
                if quote_ok:
                    provided = measured.get("single_tenant",
                                            str(record.single_tenant))
                elif verifier is not None and expects_quote:
                    # The user chose a verifiable tier: single tenancy is
                    # a measured property, and without a valid quote it
                    # cannot be confirmed (§3.3 — only the attestable
                    # tiers are user-verifiable).
                    provided = "<no valid quote>"
                else:
                    # A non-attestable tier with single tenancy is a
                    # trust-the-provider configuration by construction.
                    provided = record.single_tenant
                report.checks.append(
                    _check(name, "single_tenant", True, provided,
                           attested=quote_ok)
                )
        if execenv is not None:
            for flag, enabled in (
                ("encrypt", execenv.protection.encrypt),
                ("integrity", execenv.protection.integrity),
                ("replay", execenv.protection.replay_protect),
            ):
                if enabled:
                    report.checks.append(
                        _check(name, f"protection.{flag}", True,
                               flag in record.protections, attested=False)
                    )

        resource = obj.aspects.resource
        if resource is not None:
            if resource.device is not None:
                # Device *type* is attestable via the device-model field.
                report.checks.append(
                    _check(name, "device_type", resource.device.value,
                           record.device_type, attested=quote_ok)
                )
            if resource.amount is not None:
                # Amounts are NOT attestable (the paper's open problem).
                assert "amount" not in ATTESTABLE_PROPERTIES
                report.checks.append(
                    _check(name, "amount", resource.amount, record.amount,
                           attested=False)
                )

        dist = obj.aspects.distributed
        if dist is not None:
            if dist.replication is not None and obj.is_data:
                report.checks.append(
                    _check(name, "replication", dist.replication.factor,
                           record.replication_factor, attested=False)
                )
            if dist.consistency is not None and obj.is_data:
                report.checks.append(
                    _check(name, "consistency", dist.consistency.value,
                           record.consistency, attested=False)
                )
    return report
