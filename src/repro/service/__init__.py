"""The multi-tenant serving layer (tentpole of PR 4).

``UDCService`` turns the single-shot :class:`~repro.core.runtime
.UDCRuntime` into what the paper actually describes: one provider
control plane accepting continuous ``(tenant, app, definition)``
submissions from many user-defined clouds, with per-tenant quotas,
weighted fair-share admission, batched placement rounds, and result
memoization.  See :mod:`repro.service.service` for the full story.
"""

from repro.core.admission import (
    AdmissionPolicy,
    FifoAdmission,
    WeightedFairShare,
)
from repro.service.cache import (
    AdmissionMemo,
    CacheStats,
    ResultCache,
    dag_fingerprint,
    definition_fingerprint,
    inputs_fingerprint,
)
from repro.service.service import ResultNotReady, SubmissionHandle, UDCService
from repro.service.tenants import (
    BudgetExceeded,
    QuotaExceeded,
    SubmitOptions,
    Tenant,
    TenantQuota,
    TenantSpec,
    submit_options,
    tenant_spec,
)

__all__ = [
    "AdmissionMemo",
    "AdmissionPolicy",
    "BudgetExceeded",
    "CacheStats",
    "FifoAdmission",
    "QuotaExceeded",
    "ResultCache",
    "ResultNotReady",
    "SubmissionHandle",
    "SubmitOptions",
    "Tenant",
    "TenantQuota",
    "TenantSpec",
    "UDCService",
    "WeightedFairShare",
    "dag_fingerprint",
    "definition_fingerprint",
    "inputs_fingerprint",
    "submit_options",
    "tenant_spec",
]
