"""`UDCService`: a long-lived, multi-tenant serving layer.

One provider control plane serving many user-defined clouds (§2): the
service accepts a continuous stream of ``(tenant, app, definition)``
submissions on top of one :class:`~repro.core.runtime.UDCRuntime`, and
adds the four things a single-shot runtime lacks:

* **Quotas** — per-tenant in-flight / lifetime caps enforced at the
  front door (:class:`~repro.service.tenants.TenantQuota`), raising
  :class:`~repro.service.tenants.QuotaExceeded` before any control-plane
  work is spent.
* **Weighted fair share** — the runtime's admission queue is ordered by
  a pluggable :class:`~repro.core.admission.AdmissionPolicy`; the
  service defaults to stride-scheduled
  :class:`~repro.core.admission.WeightedFairShare` over tenant weights,
  and orders its own dispatch rounds with the same policy.
* **Batched placement** — in batched mode (default) submissions buffer
  into scheduling rounds: each round reuses admission templates
  (:class:`~repro.service.cache.AdmissionMemo`) for structurally
  identical apps and runs under the scheduler's
  :meth:`~repro.core.scheduler.UdcScheduler.batch_round`, amortizing
  control-plane work while keeping placements byte-identical to serial
  submission in the same order.
* **Result memoization** — identical ``(dag, definition, inputs)``
  re-submissions are served from a bounded
  :class:`~repro.service.cache.ResultCache` without consuming capacity,
  with the saved cost credited on the tenant's rollup.
* **Static lint** — every executed submission is first run through the
  static analyzer (:func:`repro.analysis.analyze_definition`) against
  this datacenter; error-severity findings reject with
  :class:`~repro.analysis.AnalysisError` — the same diagnostics ``udc
  lint`` prints — before any placement work is spent (``udc_lint_*``
  metrics).  Opt out per service with ``lint=False``.

Per-tenant outcomes land on an
:class:`~repro.economics.tenants.TenantLedger` and as
``udc_tenant_*`` / ``udc_service_*`` metric families.
"""

from __future__ import annotations

import itertools
import warnings
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Union

from repro.appmodel.dag import ModuleDAG
from repro.core.admission import AdmissionPolicy, WeightedFairShare
from repro.core.cells import CellRouter, estimate_demand, partition_datacenter
from repro.core.report import RunResult
from repro.core.runtime import Submission, UDCRuntime
from repro.core.scheduler import SchedulerError
from repro.economics.autopilot import (
    FIRM_PLAN,
    AdaptiveBudgetHook,
    BudgetEnforcer,
    WarmPoolForecaster,
)
from repro.economics.tenants import TenantLedger, TenantUsage, jain_index
from repro.hardware.topology import Datacenter
from repro.service.cache import AdmissionMemo, CacheStats, ResultCache
from repro.service.tenants import (
    BudgetExceeded,
    QuotaExceeded,
    SubmitOptions,
    Tenant,
    TenantQuota,
    TenantSpec,
)

__all__ = ["ResultNotReady", "SubmissionHandle", "UDCService"]


def _declares_persistent(definition: Any) -> bool:
    """True when any module of the definition asks for a standing
    deployment, in whichever form the caller handed it in (parsed,
    fluent builder, or raw nested dict)."""
    if definition is None:
        return False
    bundles = getattr(definition, "bundles", None)
    if isinstance(bundles, dict):
        return any(
            b.distributed is not None and b.distributed.persistent
            for b in bundles.values()
        )
    to_dict = getattr(definition, "to_dict", None)
    raw = to_dict() if callable(to_dict) else definition
    if not isinstance(raw, dict):
        return False
    for aspects in raw.values():
        if not isinstance(aspects, dict):
            continue
        dist = aspects.get("distributed")
        if isinstance(dist, dict) and dist.get("persistent"):
            return True
    return False


class ResultNotReady(Exception):
    """Raised when :attr:`SubmissionHandle.outputs` is read before the
    submission has finished and been finalized by a drain.

    Previously an unfinished handle silently answered ``{}`` —
    indistinguishable from "finished with no outputs", which hid lost
    results.  Use :meth:`SubmissionHandle.outputs_or_none` for the
    non-raising probe."""

#: handle states that still occupy a tenant's in-flight quota slot
_LIVE_STATES = frozenset({"pending", "queued", "running"})


@dataclass
class SubmissionHandle:
    """What a tenant holds after :meth:`UDCService.submit`.

    ``status`` is ``"cached"`` for result-cache hits, ``"pending"``
    until the submission is dispatched to the runtime (batched mode
    buffers until the next round), then tracks the underlying
    :class:`~repro.core.runtime.Submission` (``queued`` / ``running`` /
    ``done`` / ``unplaceable``).
    """

    tenant: str
    app: str
    #: service-wide monotonic id: the deterministic dispatch tie-break
    seq: int
    cached: bool = False
    #: placement cell the submission was routed to (None until
    #: dispatched; always 0 on an unsharded service)
    cell: Optional[int] = None
    submission: Optional[Submission] = None
    result: Optional[RunResult] = None
    #: the per-submission options this work was accepted under
    options: Optional[SubmitOptions] = field(default=None, repr=False)
    _cache_key: Optional[tuple] = field(default=None, repr=False, init=False)

    @property
    def status(self) -> str:
        if self.cached:
            return "cached"
        if self.submission is None:
            return "pending"
        return self.submission.status

    @property
    def done(self) -> bool:
        """Finished executing (cache hits are born done)."""
        if self.cached:
            return True
        return self.submission is not None and self.submission.done

    @property
    def outputs(self) -> Dict[str, Any]:
        """The finished run's module outputs.

        Raises :class:`ResultNotReady` while the submission is still
        pending/queued/running or has finished but not yet been
        finalized by :meth:`UDCService.drain` — a silent ``{}`` here
        would conflate "not finished" with "finished with no outputs".
        """
        if self.result is None:
            raise ResultNotReady(
                f"submission #{self.seq} ({self.tenant}/{self.app}) has no "
                f"result yet (status={self.status!r}); drain() the service "
                f"to completion, or probe with outputs_or_none"
            )
        return self.result.outputs

    def outputs_or_none(self) -> Optional[Dict[str, Any]]:
        """``outputs`` if the result is in, else None (never raises)."""
        return self.result.outputs if self.result is not None else None


class UDCService:
    """Multi-tenant serving layer over one or more placement cells.

    ``cells=1`` (the default) is the historical single-runtime service —
    one scheduler, one set of pool indexes, placements byte-identical to
    PR 4.  ``cells=N`` partitions the datacenter into N rack-group cells
    (:func:`repro.core.cells.partition_datacenter`), each with its own
    :class:`UDCRuntime` — scheduler, pool indexes, batch cache, and
    admission memo — fronted by a :class:`~repro.core.cells.CellRouter`
    that picks a cell per submission from coarse free-capacity
    aggregates and spills deterministically to the next cell on
    rejection.  Cell runtimes share one simulator, fabric, telemetry,
    RNG registry, warm pool, and breaker registry, so replay fingerprints
    and fault injection stay global.

    Sharding semantics worth knowing:

    * A submission lands *entirely* in one cell (cells are placement
      domains); an app bigger than any single cell is unplaceable.
      Static lint is evaluated against cell 0 — the largest cell —
      for the same reason.
    * Fair share stays global: dispatch rounds are ordered by the
      service-wide policy *before* fanning out, and every cell runtime
      shares the one policy instance.
    * If every cell rejects, the submission parks on the first-choice
      cell's admission queue and retries there as capacity frees.
    """

    def __init__(
        self,
        datacenter: Optional[Datacenter] = None,
        *,
        runtime: Optional[UDCRuntime] = None,
        policy: Optional[AdmissionPolicy] = None,
        batched: bool = True,
        cells: int = 1,
        result_cache_capacity: int = 128,
        admission_memo_capacity: int = 256,
        lint: bool = True,
        autopilot: bool = False,
        **runtime_kwargs,
    ):
        if cells < 1:
            raise ValueError(f"cells must be >= 1, got {cells}")
        if runtime is not None:
            if runtime_kwargs:
                raise ValueError(
                    f"runtime kwargs {sorted(runtime_kwargs)} conflict with "
                    f"an explicit runtime instance"
                )
            if cells != 1:
                raise ValueError(
                    "an explicit runtime instance is single-cell; pass the "
                    "datacenter instead to shard it"
                )
            runtimes = [runtime]
        else:
            if datacenter is None:
                raise ValueError("UDCService needs a datacenter or a runtime")
            if cells == 1:
                runtimes = [UDCRuntime(datacenter, **runtime_kwargs)]
            else:
                runtimes = self._build_cell_runtimes(
                    datacenter, cells, runtime_kwargs
                )
        self.cell_runtimes: List[UDCRuntime] = runtimes
        self.runtime = runtimes[0]
        self.lint = lint
        self.telemetry = self.runtime.telemetry
        self.policy = policy if policy is not None else WeightedFairShare()
        self.batched = batched
        for cell_runtime in runtimes:
            cell_runtime.admission_policy = self.policy
            if batched:
                cell_runtime.admission_memo = AdmissionMemo(
                    admission_memo_capacity
                )
        self.router: Optional[CellRouter] = None
        if len(runtimes) > 1:
            self.router = CellRouter(
                [rt.datacenter for rt in runtimes], telemetry=self.telemetry
            )
        self.cache = ResultCache(result_cache_capacity)
        self.ledger = TenantLedger()
        self.tenants: Dict[str, Tenant] = {}
        self._handles: List[SubmissionHandle] = []
        #: executed (non-cached) handles not yet finalized, in submit
        #: order — what drain walks, so a tick costs O(open work), not
        #: O(every handle the service ever made)
        self._open: List[SubmissionHandle] = []
        self._pending: List[SubmissionHandle] = []
        self._seq = itertools.count()
        self.rounds = 0
        #: incremental per-tenant live-submission counters (see
        #: :meth:`in_flight`); maintained at submit / finalize so the
        #: per-submit quota check never scans the full handle history
        self._live_counts: Dict[str, int] = {}
        #: memoized lint verdicts (same LRU machinery as the result
        #: cache) so repeated shapes re-emit their diagnostics without
        #: re-running the analyzer — a cache hit must still lint
        self._lint_memo = ResultCache(admission_memo_capacity)
        #: declared tenant specs (tier/goal/budget/SLO), by name
        self._specs: Dict[str, TenantSpec] = {}
        #: the budget kernel: always present (enforces only for tenants
        #: that declared budgets), audited by check_budget_accounting
        self.budget = BudgetEnforcer()
        self.autopilot = autopilot
        #: the planner and forecaster exist only under --autopilot; the
        #: default service stays byte-identical to the pre-autopilot one
        self.budget_hook: Optional[AdaptiveBudgetHook] = None
        self.forecaster: Optional[WarmPoolForecaster] = None
        #: spot-tier submissions evicted for firm work, service-wide
        self.preemptions = 0
        for cell_runtime in runtimes:
            # Bound method, not a lambda: replay snapshots pickle the
            # whole service.  Firm work outranks spot in retry rounds.
            cell_runtime.tier_of = self._tier_rank
        if autopilot:
            self.budget_hook = AdaptiveBudgetHook(self.budget)
            self.forecaster = WarmPoolForecaster()
            # All cells share one warm pool; the forecaster observes
            # every acquisition attempt through the pool's hook.
            self.runtime.warm_pool.observer = self.forecaster.observe

    @staticmethod
    def _build_cell_runtimes(
        datacenter: Datacenter, cells: int, runtime_kwargs: Dict[str, Any]
    ) -> List[UDCRuntime]:
        """Partition ``datacenter`` and build one runtime per cell.

        Telemetry, RNG registry, warm pool, and breaker registry are
        shared across cells (one control plane, N placement domains);
        every other runtime kwarg passes through to each cell.
        """
        from repro.core.telemetry import Telemetry
        from repro.distsem.resilience import CircuitBreakerRegistry
        from repro.execenv.warmpool import WarmPool
        from repro.simulator.rng import RngRegistry

        shared = dict(runtime_kwargs)
        telemetry = shared.pop("telemetry", None)
        if telemetry is None:
            telemetry = Telemetry()
        rng = shared.pop("rng", None)
        if rng is None:
            rng = RngRegistry(0)
        warm_pool = shared.pop("warm_pool", None)
        if warm_pool is None:
            warm_pool = WarmPool(enabled=False)
        breakers = shared.pop("breakers", None)
        if breakers is None:
            breakers = CircuitBreakerRegistry()
        runtimes = [
            UDCRuntime(
                cell_dc, telemetry=telemetry, rng=rng, warm_pool=warm_pool,
                breakers=breakers, **shared,
            )
            for cell_dc in partition_datacenter(datacenter, cells)
        ]
        for cell_id, cell_runtime in enumerate(runtimes):
            cell_runtime.scheduler.cell_label = str(cell_id)
        return runtimes

    # ------------------------------------------------------------- tenants

    def register_tenant(
        self,
        name: str,
        spec: Union[TenantSpec, float, None] = None,
        **legacy,
    ) -> Tenant:
        """Register (or re-configure) a tenant from a typed spec.

        ``spec`` is a :class:`~repro.service.tenants.TenantSpec` (or a
        fluent ``tenant_spec()`` builder — anything with ``build_spec``),
        carrying weight, quota, budget, tier/goal, SLO, and pricing in
        one value.  The old spellings still work, with a
        :class:`DeprecationWarning`: a bare number in the spec position
        is the historical positional ``weight``, and ``weight=`` /
        ``quota=`` keywords fold into a default spec.  Unknown keywords
        raise :class:`TypeError`.
        """
        if spec is not None and not hasattr(spec, "build_spec"):
            if isinstance(spec, (int, float)) and not isinstance(spec, bool):
                warnings.warn(
                    "register_tenant(name, weight) is deprecated; pass a "
                    "TenantSpec (e.g. tenant_spec().weight(...))",
                    DeprecationWarning, stacklevel=2,
                )
                spec = TenantSpec(weight=float(spec))
            else:
                raise TypeError(
                    f"spec must be a TenantSpec (or builder), "
                    f"got {type(spec).__name__}"
                )
        folded: Dict[str, Any] = {}
        for key in ("weight", "quota"):
            if key in legacy:
                warnings.warn(
                    f"register_tenant({key}=...) is deprecated; declare it "
                    f"on a TenantSpec",
                    DeprecationWarning, stacklevel=2,
                )
                folded[key] = legacy.pop(key)
        if legacy:
            raise TypeError(
                f"register_tenant() got unexpected keyword argument(s) "
                f"{sorted(legacy)}"
            )
        if spec is None:
            spec = TenantSpec(weight=float(folded.get("weight", 1.0)),
                              quota=folded.get("quota"))
        else:
            spec = spec.build_spec()
            if folded:
                raise TypeError(
                    "pass either a TenantSpec or the deprecated "
                    "weight=/quota= keywords, not both"
                )
        tenant = Tenant(name=name, weight=spec.weight, quota=spec.quota)
        existing = self.tenants.get(name)
        if existing is not None:
            tenant.submitted = existing.submitted
        self.tenants[name] = tenant
        self._specs[name] = spec
        self.budget.declare(name, spec.budget_dollars)
        if isinstance(self.policy, WeightedFairShare):
            self.policy.set_weight(name, spec.weight)
        return tenant

    def spec_of(self, tenant: str) -> TenantSpec:
        """The registered spec (defaults for self-registered tenants)."""
        spec = self._specs.get(tenant)
        return spec if spec is not None else TenantSpec()

    def tier_of(self, tenant: str) -> str:
        """``"firm"`` or ``"spot"`` after goal resolution."""
        return self.spec_of(tenant).effective_tier

    def _tier_rank(self, tenant: str) -> int:
        """Admission-retry rank installed on cell runtimes (0 = firm)."""
        return 1 if self.tier_of(tenant) == "spot" else 0

    def _tenant_of(self, tenant: Union[Tenant, str]) -> Tenant:
        if isinstance(tenant, Tenant):
            if self.tenants.get(tenant.name) is not tenant:
                raise ValueError(
                    f"tenant {tenant.name!r} is not registered with this "
                    f"service (use register_tenant)"
                )
            return tenant
        if tenant not in self.tenants:
            # Unknown names self-register with defaults: an open service.
            return self.register_tenant(tenant)
        return self.tenants[tenant]

    def in_flight(self, tenant: str) -> int:
        """Submissions currently occupying one of the tenant's slots.

        Served from incremental per-tenant counters (incremented on
        accepted submits, decremented when a handle is finalized) —
        previously this scanned every handle ever created, making each
        submit O(lifetime submissions) on a long-lived service.  The
        reference scan survives as :meth:`_in_flight_scan`; tests assert
        the two stay equivalent.
        """
        return self._live_counts.get(tenant, 0)

    def _in_flight_scan(self, tenant: str) -> int:
        """Reference implementation of :meth:`in_flight` (full scan)."""
        return sum(
            1 for handle in self._handles
            if handle.tenant == tenant and handle.status in _LIVE_STATES
        )

    # -------------------------------------------------------------- submit

    def submit(
        self,
        tenant: Union[Tenant, str],
        app: ModuleDAG,
        definition=None,
        inputs: Optional[Dict[str, Any]] = None,
        options: Optional[SubmitOptions] = None,
        **legacy,
    ) -> SubmissionHandle:
        """Accept one submission; raises
        :class:`~repro.service.tenants.QuotaExceeded` over quota and
        :class:`~repro.service.tenants.BudgetExceeded` (a subclass) when
        the tenant's spend reached its budget ceiling.

        ``options`` is a :class:`~repro.service.tenants.SubmitOptions`
        (or a fluent ``submit_options()`` builder — anything with
        ``build_options``): lint override, dispatch priority, deadline,
        cache opt-out.  The loose spellings (``lint=``, ``priority=``,
        ``deadline_s=``, ``use_cache=``) still work with a
        :class:`DeprecationWarning`; unknown keywords raise
        :class:`TypeError`.

        In batched mode the submission buffers until the next
        :meth:`dispatch_round` (or :meth:`drain`, which flushes); in
        serial mode it reaches the runtime immediately.
        """
        opts = SubmitOptions()
        if options is not None:
            if not hasattr(options, "build_options"):
                raise TypeError(
                    f"options must be SubmitOptions (or builder), "
                    f"got {type(options).__name__}"
                )
            opts = options.build_options()
        folded: Dict[str, Any] = {}
        for key in ("lint", "priority", "deadline_s", "use_cache"):
            if key in legacy:
                warnings.warn(
                    f"submit({key}=...) is deprecated; pass "
                    f"options=SubmitOptions({key}=...)",
                    DeprecationWarning, stacklevel=2,
                )
                folded[key] = legacy.pop(key)
        if legacy:
            raise TypeError(
                f"submit() got unexpected keyword argument(s) "
                f"{sorted(legacy)}"
            )
        if folded:
            if options is not None:
                raise TypeError(
                    "pass either options= or the deprecated submit "
                    "keywords, not both"
                )
            opts = replace(opts, **folded)
        lint = self.lint if opts.lint is None else opts.lint
        record = self._tenant_of(tenant)
        name = record.name
        labels = {"tenant": name}
        self.telemetry.inc("udc_tenant_submissions_total", labels=labels)
        handle = SubmissionHandle(tenant=name, app=app.name,
                                  seq=next(self._seq), options=opts)
        if self.cache.capacity > 0 and opts.use_cache:
            # Sensitivity-labeled apps key by tenant: tenant A's cached
            # PHI result must never answer tenant B's submission.
            key = ResultCache.key(app, definition, inputs, tenant=name)
            cached = self.cache.get(key)
            if cached is not None:
                # A hit short-circuits placement, not policy: the result
                # may have been cached under a differently-configured
                # service, so a linting service still lints before
                # serving (memoized — repeats stay cheap).
                if lint:
                    self._lint(name, app, definition)
                # Served without consuming capacity: no quota charge.
                handle.cached = True
                handle.result = cached
                handle._cache_key = key
                self._handles.append(handle)
                self.ledger.record_submission(name)
                self.ledger.record_cache_hit(name, cached)
                self.telemetry.inc("udc_tenant_cache_hits_total",
                                   labels=labels)
                return handle
            handle._cache_key = key
            self.telemetry.inc("udc_tenant_cache_misses_total", labels=labels)
        try:
            record.check_quota(self.in_flight(name))
        except QuotaExceeded:
            self.ledger.record_rejection(name)
            self.telemetry.inc("udc_tenant_rejections_total", labels=labels)
            raise
        reason = self.budget.admit(name)
        if reason is not None:
            # Budget exhaustion is load shedding at the front door, the
            # same as quota — but separately countable and catchable.
            self.ledger.record_rejection(name)
            self.telemetry.inc("udc_tenant_rejections_total", labels=labels)
            self.telemetry.inc("udc_budget_rejections_total", labels=labels)
            raise BudgetExceeded(name, reason)
        if lint:
            self._lint(name, app, definition)
        record.submitted += 1
        self.ledger.record_submission(name)
        self._handles.append(handle)
        self._open.append(handle)
        self._live_counts[name] = self._live_counts.get(name, 0) + 1
        pending = _PendingWork(handle, app, definition, inputs, opts)
        if self.batched:
            self._pending.append(pending)
        else:
            self._dispatch(pending)
        return handle

    def _lint(self, tenant: str, app: ModuleDAG, definition) -> None:
        """Static front-door check; raises
        :class:`~repro.analysis.AnalysisError` on error findings.

        Runs the same passes — and produces the same diagnostics — as
        ``udc lint`` against this service's datacenter, so a rejected
        tenant can reproduce the report offline.
        """
        # Imported here: repro.analysis imports service types at load.
        from repro.analysis import AnalysisError, analyze_definition
        from repro.service.cache import (
            dag_fingerprint,
            definition_fingerprint,
        )

        labels = {"tenant": tenant}
        self.telemetry.inc("udc_lint_checks_total", labels=labels)
        # Memoized on the same structural fingerprints as the result
        # cache (labels included): a repeated shape re-emits the same
        # metrics and verdict without re-running the analyzer.  The
        # report is a pure function of (app, definition, datacenter),
        # so replaying it is byte-identical to re-deriving it.
        tier = self.tier_of(tenant)
        memo_key = (dag_fingerprint(app, include_identity=True),
                    definition_fingerprint(definition), tier)
        report = self._lint_memo.get(memo_key)
        if report is None:
            report = analyze_definition(
                definition if definition is not None else {},
                app=app, datacenter=self.runtime.datacenter,
                tenant_tier=tier,
            )
            self._lint_memo.put(memo_key, report)
        for diag in report:
            self.telemetry.inc(
                "udc_lint_findings_total",
                labels={"severity": diag.severity.value},
            )
        if not report.ok:
            self.ledger.record_rejection(tenant)
            self.telemetry.inc("udc_tenant_rejections_total", labels=labels)
            self.telemetry.inc("udc_lint_rejections_total", labels=labels)
            raise AnalysisError(report)

    def _dispatch(self, work: "_PendingWork") -> None:
        handle = work.handle
        if self.router is None:
            # Unsharded: exactly the historical single-runtime path (one
            # submit attempt, queue on capacity failure) so placements,
            # seq streams, and telemetry stay byte-identical.
            handle.cell = 0
            submission = self.runtime.submit(
                work.app, work.definition, tenant=handle.tenant,
                inputs=work.inputs,
                persistent=_declares_persistent(work.definition),
                queue_if_full=True,
            )
        else:
            submission = self._dispatch_routed(work)
        handle.submission = submission
        labels = {"tenant": handle.tenant}
        if submission.status == "queued":
            self.telemetry.inc("udc_tenant_queued_total", labels=labels)
            if self.tier_of(handle.tenant) == "firm":
                self._preempt_for(handle, submission)
        else:
            self.telemetry.inc("udc_tenant_admitted_total", labels=labels)

    def _preempt_for(self, handle: SubmissionHandle,
                     submission: Submission) -> None:
        """Evict spot-tier work until a queued firm submission places.

        Victims are running, non-persistent spot-tier submissions in the
        same placement cell, youngest first (LIFO — the spot work that
        arrived last has the least sunk cost).  Each eviction releases
        capacity synchronously and immediately retries the admission
        queue (firm-ranked first), so the firm submission deploys before
        the next victim is considered; eviction stops the moment it does.
        Spot tenants never trigger preemption — the tier cannot cannibalize
        itself — and if the victims run out, the firm submission simply
        stays parked like any other queued work.
        """
        cell = handle.cell if handle.cell is not None else 0
        runtime = self.cell_runtimes[cell]
        victims = sorted(
            (
                h for h in self._open
                if h is not handle
                and h.submission is not None
                and h.submission.status == "running"
                and not h.submission.persistent
                and (h.cell if h.cell is not None else 0) == cell
                and self.tier_of(h.tenant) == "spot"
            ),
            key=lambda h: -h.seq,
        )
        for victim in victims:
            if not runtime.preempt(victim.submission,
                                   by_tenant=handle.tenant):
                continue
            self.preemptions += 1
            self.telemetry.inc("udc_tenant_preemptions_total",
                               labels={"tenant": victim.tenant})
            runtime._retry_admissions()
            if submission.status != "queued":
                return

    def _dispatch_routed(self, work: "_PendingWork") -> Submission:
        """Sharded dispatch: route by coarse demand, spill on rejection.

        Cells are tried in router order with ``queue_if_full=False``; a
        cell that cannot place the app raises, rolls its partial
        placement back, and the next cell is tried (the spill).  Only
        when *every* cell rejected does the submission park — on the
        first-choice cell's admission queue, where freed capacity
        retries it.
        """
        handle = work.handle
        persistent = _declares_persistent(work.definition)
        demand = estimate_demand(work.app, self.runtime.datacenter)
        order = self.router.order(demand)
        for hops, cell_id in enumerate(order):
            try:
                submission = self.cell_runtimes[cell_id].submit(
                    work.app, work.definition, tenant=handle.tenant,
                    inputs=work.inputs, persistent=persistent,
                    queue_if_full=False,
                )
            except SchedulerError:
                continue
            handle.cell = cell_id
            self.router.record_placement(cell_id, hops)
            return submission
        handle.cell = order[0]
        self.router.record_placement(order[0], len(order))
        return self.cell_runtimes[order[0]].submit(
            work.app, work.definition, tenant=handle.tenant,
            inputs=work.inputs, persistent=persistent,
            queue_if_full=True,
        )

    def dispatch_round(self) -> int:
        """Flush buffered submissions as one scheduling round.

        The round is ordered by submit priority, then the admission
        policy (fair share by default; seq breaks ties deterministically)
        and placed under one scheduler batch span, so control-plane
        telemetry is paid once per round instead of once per app.

        Under ``autopilot=True`` the round starts with one planner pass:
        the budget hook replans spending ceilings from the ledger, and
        at every forecast-window boundary the forecaster resizes warm
        pool shelves to the coming window's predicted demand.
        """
        if self.autopilot:
            self._autopilot_round()
        if not self._pending:
            return 0
        batch = sorted(
            self._pending,
            key=lambda w: (-w.options.priority,)
            + tuple(self.policy.sort_key(w.handle.tenant, w.handle.seq)),
        )
        self._pending = []
        self.rounds += 1
        span = self.telemetry.span_start(
            self.runtime.sim.now, "service", "dispatch-round", "service",
            round=self.rounds, batch=len(batch),
        )
        with ExitStack() as scopes:
            # Every cell opens its batch scope for the round: schedulers
            # install their round-local _BatchCache (and per-cell
            # batch-round latency is observed once per round per cell),
            # admission memos their identity shortcut.  With one cell
            # this is exactly the historical single batch_round.
            for cell_runtime in self.cell_runtimes:
                scopes.enter_context(
                    cell_runtime.scheduler.batch_round(len(batch))
                )
                memo = cell_runtime.admission_memo
                scopes.enter_context(memo.identity_round()
                                     if memo is not None else nullcontext())
            for work in batch:
                self._dispatch(work)
        self.telemetry.span_end(span, self.runtime.sim.now)
        self.telemetry.inc("udc_service_rounds_total")
        self.telemetry.inc("udc_service_dispatched_total", len(batch))
        return len(batch)

    def _autopilot_round(self) -> None:
        """One planner pass: replan ceilings, resize warm-pool shelves.

        Deterministic arithmetic over ledger rollups and forecaster
        state, visited in sorted order — the planner never touches the
        enforcement path directly (kernel/planner split).
        """
        now = self.runtime.sim.now
        if self.budget_hook is not None:
            attainment = {
                usage.tenant: (usage.completed, usage.slo_misses)
                for usage in self.ledger.rollup()
            }
            self.budget_hook.on_round(now, attainment)
        forecaster = self.forecaster
        pool = self.runtime.warm_pool
        if forecaster is not None and pool.enabled \
                and forecaster.roll(now):
            for kind, single in sorted(pool._known_keys,
                                       key=lambda k: (k[0].value, k[1])):
                target = forecaster.target_for(kind, single)
                pool.set_target(kind, single, target)
                if self.telemetry.enabled:
                    self.telemetry.gauge_set(
                        "udc_warm_pool_target_depth", float(target),
                        labels={"kind": kind.value,
                                "single": str(single).lower()},
                    )
            pool.refill()

    # --------------------------------------------------------------- drain

    def drain(self, until: Optional[float] = None) -> List[SubmissionHandle]:
        """Dispatch anything buffered and run the clock.

        With ``until`` the clock stops early, but handles whose
        submissions *did* finish by then are finalized — results
        collected, tenant ledger and metrics updated, the result cache
        fed — and returned, exactly as a full drain would have done for
        them.  (Previously a timed drain returned ``[]`` without
        finalizing anything, so a server taking only timed drain ticks
        — the gateway — lagged arbitrarily behind its own completions.)
        Submissions still parked in the admission queue stay parked: a
        timed drain is a tick, not a verdict on placeability.

        Without ``until`` the runtime drains to quiescence, queued
        submissions that never fit are marked unplaceable, and every
        newly finished handle is finalized.  Returns the handles
        finalized by this call.
        """
        self.dispatch_round()
        if until is not None:
            self.runtime.sim.run(until=until)
            return self._finalize_finished(partial=True)
        # Cell runtimes share one simulator: the first drain runs it to
        # quiescence (all cells' executions and admission retries fire),
        # the rest just collect their own results / mark their own
        # still-queued submissions unplaceable — in cell order, so the
        # walk is deterministic.
        for cell_runtime in self.cell_runtimes:
            cell_runtime.drain()
        return self._finalize_finished(partial=False)

    def _finalize_finished(self, partial: bool) -> List[SubmissionHandle]:
        """Finalize every handle whose submission has a result to give.

        On a partial (timed) drain, finished submissions are collected
        from their owning cell runtime first — settling their meters and
        building their reports at completion time instead of waiting for
        a quiescent drain that a long-lived server may never issue.

        Walks only the open (not-yet-finalized) handles and rebuilds
        that list in place, so a drain tick on a long-lived server costs
        O(open submissions), not O(every handle ever created).
        """
        finished: List[SubmissionHandle] = []
        still_open: List[SubmissionHandle] = []
        for handle in self._open:
            if handle.result is not None:
                continue
            submission = handle.submission
            if submission is None or (submission.result is None
                                      and not (partial and submission.done)):
                still_open.append(handle)
                continue
            if submission.result is None:
                cell = handle.cell if handle.cell is not None else 0
                self.cell_runtimes[cell].collect(submission)
            self._finalize(handle)
            finished.append(handle)
        self._open = still_open
        return finished

    def _finalize(self, handle: SubmissionHandle) -> None:
        submission = handle.submission
        handle.result = submission.result
        # The handle leaves the live set exactly once, here: finalize is
        # guarded by ``handle.result is None`` at every call site.
        count = self._live_counts.get(handle.tenant, 0) - 1
        if count > 0:
            self._live_counts[handle.tenant] = count
        else:
            self._live_counts.pop(handle.tenant, None)
        labels = {"tenant": handle.tenant}
        if submission.status == "unplaceable":
            self.ledger.record_unplaceable(handle.tenant)
            self.telemetry.inc("udc_tenant_unplaceable_total", labels=labels)
            return
        # Billing: the metered cost runs through the tenant's pricing
        # plan (spot discounts here), lands on the ledger AND the budget
        # enforcer — two independently-kept books whose agreement
        # check_budget_accounting audits.
        spec = self._specs.get(handle.tenant)
        plan = spec.plan if spec is not None else FIRM_PLAN
        billed = plan.billed(submission.result.total_cost)
        deadline = None
        if handle.options is not None \
                and handle.options.deadline_s is not None:
            deadline = handle.options.deadline_s
        elif spec is not None:
            deadline = spec.slo_s
        elapsed = submission.queue_wait_s + submission.result.makespan_s
        slo_miss = deadline is not None and elapsed > deadline
        self.ledger.record_result(
            handle.tenant, submission.result,
            queue_wait_s=submission.queue_wait_s,
            billed_cost=billed, slo_miss=slo_miss,
        )
        self.budget.charge(handle.tenant, billed)
        self.telemetry.inc("udc_tenant_completed_total", labels=labels)
        self.telemetry.inc("udc_tenant_cost_dollars_total",
                           submission.result.total_cost, labels=labels)
        self.telemetry.inc("udc_tenant_billed_dollars_total",
                           billed, labels=labels)
        if slo_miss:
            self.telemetry.inc("udc_slo_misses_total", labels=labels)
        if submission.queue_wait_s > 0:
            self.telemetry.observe("udc_tenant_queue_wait_seconds",
                                   submission.queue_wait_s, labels=labels)
        if handle._cache_key is not None:
            self.cache.put(handle._cache_key, submission.result)

    # ----------------------------------------------------------- reporting

    @property
    def cells(self) -> int:
        """Number of placement cells this service shards across."""
        return len(self.cell_runtimes)

    @property
    def open_count(self) -> int:
        """Executed submissions accepted but not yet finalized."""
        return len(self._open)

    @property
    def pending_count(self) -> int:
        """Submissions buffered for the next dispatch round."""
        return len(self._pending)

    @property
    def live_count(self) -> int:
        """Total live submissions across tenants (quota-occupying)."""
        return sum(self._live_counts.values())

    def fail_at(self, when: float, domain: str) -> None:
        """Schedule a failure-domain fault, routed to the owning cell.

        A failure domain lives in whichever cell's injector registered
        it (domains are created where modules are placed); the walk is
        in cell order, falling back to cell 0 for a domain nothing has
        touched yet — deterministic either way.
        """
        for cell_runtime in self.cell_runtimes:
            if domain in cell_runtime.injector.domains:
                cell_runtime.injector.fail_at(when, domain)
                return
        self.runtime.injector.fail_at(when, domain)

    def metrics_snapshot(self):
        """The service's metrics registry with per-cell and aggregate
        pool gauges refreshed.

        Single-cell output is byte-identical to
        :meth:`UDCRuntime.metrics_snapshot`.  Sharded, every cell's pool
        gauges carry a ``cell`` label, the same families are also
        written *without* the cell label as the summed cross-cell
        aggregate (so dashboards built on the unsharded names keep
        working), and ``udc_cell_free_units`` exposes the router's
        free-capacity vectors.
        """
        registry = self.runtime.metrics_snapshot()
        if self.router is None:
            return registry
        totals: Dict[tuple, Dict[str, float]] = {}
        for cell_runtime in self.cell_runtimes[1:]:
            cell_runtime.datacenter.pools.collect_metrics(registry)
        for cell_runtime in self.cell_runtimes:
            for pool in cell_runtime.datacenter.pools:
                agg = totals.setdefault(
                    (pool.device_type,),
                    {"capacity": 0.0, "used": 0.0, "peak": 0.0},
                )
                agg["capacity"] += pool.total_capacity
                agg["used"] += pool.total_used
                agg["peak"] += pool.peak_used
        for (device_type,), agg in sorted(
            totals.items(), key=lambda kv: kv[0][0].value
        ):
            labels = {"device_type": device_type.value}
            registry.gauge("udc_pool_capacity_units", labels).set(
                agg["capacity"])
            registry.gauge("udc_pool_used_units", labels).set(agg["used"])
            registry.gauge("udc_pool_peak_used_units", labels).set(
                agg["peak"])
            registry.gauge("udc_pool_utilization", labels).set(
                agg["used"] / agg["capacity"] if agg["capacity"] else 0.0)
        registry.gauge("udc_service_cells").set(float(self.cells))
        self.router.snapshot(registry)
        return registry

    def completed_by_tenant(self) -> Dict[str, int]:
        """Executed completions per registered tenant (cache hits are
        served, not executed, so they do not count).  Works mid-run."""
        counts = {name: 0 for name in self.tenants}
        for handle in self._handles:
            if not handle.cached and handle.done:
                counts[handle.tenant] = counts.get(handle.tenant, 0) + 1
        return counts

    def fairness_index(self, metric: str = "completed") -> float:
        """Jain's index across registered tenants.

        ``metric="completed"`` scores executed completions (usable
        mid-run, before results are collected); any other name reads
        that field off the tenant ledger rollups.
        """
        if metric == "completed":
            counts = self.completed_by_tenant()
            return jain_index(float(counts[name])
                              for name in sorted(counts))
        return self.ledger.fairness(metric, tenants=sorted(self.tenants))

    def rollup(self) -> List[TenantUsage]:
        return self.ledger.rollup()

    def billed_by_tenant(self) -> Dict[str, float]:
        """Billed dollars per tenant, from the ledger's book."""
        return {usage.tenant: usage.billed_cost
                for usage in self.ledger.rollup()}

    def check_budget_accounting(self, tolerance: float = 1e-6) -> List[str]:
        """Drift audit: enforcer spend vs. ledger billed totals.

        Empty means the two independently-maintained books balance —
        the zero-drift invariant the autopilot CI job gates on.
        """
        return self.budget.check_accounting(self.billed_by_tenant(),
                                            tolerance)

    def economics_fingerprint(self) -> Optional[Dict[str, Any]]:
        """Autopilot/budget state for replay fingerprints.

        None when economics are inert (no autopilot, no declared
        budgets), so fingerprints of pre-autopilot runs — and journals
        recorded before this subsystem existed — are byte-identical.
        """
        if not (self.autopilot or self.budget.active):
            return None
        state: Dict[str, Any] = {
            "budget": self.budget.snapshot(),
            "preemptions": self.preemptions,
        }
        if self.budget_hook is not None:
            state["ceilings"] = self.budget_hook.state()
        if self.forecaster is not None:
            state["forecast"] = self.forecaster.state()
        return state

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def handles(self) -> List[SubmissionHandle]:
        return list(self._handles)


@dataclass
class _PendingWork:
    """A buffered submission awaiting its dispatch round."""

    handle: SubmissionHandle
    app: ModuleDAG
    definition: Any
    inputs: Optional[Dict[str, Any]]
    options: SubmitOptions = field(default_factory=SubmitOptions)
