"""`UDCService`: a long-lived, multi-tenant serving layer.

One provider control plane serving many user-defined clouds (§2): the
service accepts a continuous stream of ``(tenant, app, definition)``
submissions on top of one :class:`~repro.core.runtime.UDCRuntime`, and
adds the four things a single-shot runtime lacks:

* **Quotas** — per-tenant in-flight / lifetime caps enforced at the
  front door (:class:`~repro.service.tenants.TenantQuota`), raising
  :class:`~repro.service.tenants.QuotaExceeded` before any control-plane
  work is spent.
* **Weighted fair share** — the runtime's admission queue is ordered by
  a pluggable :class:`~repro.core.admission.AdmissionPolicy`; the
  service defaults to stride-scheduled
  :class:`~repro.core.admission.WeightedFairShare` over tenant weights,
  and orders its own dispatch rounds with the same policy.
* **Batched placement** — in batched mode (default) submissions buffer
  into scheduling rounds: each round reuses admission templates
  (:class:`~repro.service.cache.AdmissionMemo`) for structurally
  identical apps and runs under the scheduler's
  :meth:`~repro.core.scheduler.UdcScheduler.batch_round`, amortizing
  control-plane work while keeping placements byte-identical to serial
  submission in the same order.
* **Result memoization** — identical ``(dag, definition, inputs)``
  re-submissions are served from a bounded
  :class:`~repro.service.cache.ResultCache` without consuming capacity,
  with the saved cost credited on the tenant's rollup.
* **Static lint** — every executed submission is first run through the
  static analyzer (:func:`repro.analysis.analyze_definition`) against
  this datacenter; error-severity findings reject with
  :class:`~repro.analysis.AnalysisError` — the same diagnostics ``udc
  lint`` prints — before any placement work is spent (``udc_lint_*``
  metrics).  Opt out per service with ``lint=False``.

Per-tenant outcomes land on an
:class:`~repro.economics.tenants.TenantLedger` and as
``udc_tenant_*`` / ``udc_service_*`` metric families.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.appmodel.dag import ModuleDAG
from repro.core.admission import AdmissionPolicy, WeightedFairShare
from repro.core.report import RunResult
from repro.core.runtime import Submission, UDCRuntime
from repro.economics.tenants import TenantLedger, TenantUsage, jain_index
from repro.hardware.topology import Datacenter
from repro.service.cache import AdmissionMemo, CacheStats, ResultCache
from repro.service.tenants import QuotaExceeded, Tenant, TenantQuota

__all__ = ["ResultNotReady", "SubmissionHandle", "UDCService"]


class ResultNotReady(Exception):
    """Raised when :attr:`SubmissionHandle.outputs` is read before the
    submission has finished and been finalized by a drain.

    Previously an unfinished handle silently answered ``{}`` —
    indistinguishable from "finished with no outputs", which hid lost
    results.  Use :meth:`SubmissionHandle.outputs_or_none` for the
    non-raising probe."""

#: handle states that still occupy a tenant's in-flight quota slot
_LIVE_STATES = frozenset({"pending", "queued", "running"})


@dataclass
class SubmissionHandle:
    """What a tenant holds after :meth:`UDCService.submit`.

    ``status`` is ``"cached"`` for result-cache hits, ``"pending"``
    until the submission is dispatched to the runtime (batched mode
    buffers until the next round), then tracks the underlying
    :class:`~repro.core.runtime.Submission` (``queued`` / ``running`` /
    ``done`` / ``unplaceable``).
    """

    tenant: str
    app: str
    #: service-wide monotonic id: the deterministic dispatch tie-break
    seq: int
    cached: bool = False
    submission: Optional[Submission] = None
    result: Optional[RunResult] = None
    _cache_key: Optional[tuple] = field(default=None, repr=False, init=False)

    @property
    def status(self) -> str:
        if self.cached:
            return "cached"
        if self.submission is None:
            return "pending"
        return self.submission.status

    @property
    def done(self) -> bool:
        """Finished executing (cache hits are born done)."""
        if self.cached:
            return True
        return self.submission is not None and self.submission.done

    @property
    def outputs(self) -> Dict[str, Any]:
        """The finished run's module outputs.

        Raises :class:`ResultNotReady` while the submission is still
        pending/queued/running or has finished but not yet been
        finalized by :meth:`UDCService.drain` — a silent ``{}`` here
        would conflate "not finished" with "finished with no outputs".
        """
        if self.result is None:
            raise ResultNotReady(
                f"submission #{self.seq} ({self.tenant}/{self.app}) has no "
                f"result yet (status={self.status!r}); drain() the service "
                f"to completion, or probe with outputs_or_none"
            )
        return self.result.outputs

    def outputs_or_none(self) -> Optional[Dict[str, Any]]:
        """``outputs`` if the result is in, else None (never raises)."""
        return self.result.outputs if self.result is not None else None


class UDCService:
    """Multi-tenant serving layer over one :class:`UDCRuntime`."""

    def __init__(
        self,
        datacenter: Optional[Datacenter] = None,
        *,
        runtime: Optional[UDCRuntime] = None,
        policy: Optional[AdmissionPolicy] = None,
        batched: bool = True,
        result_cache_capacity: int = 128,
        admission_memo_capacity: int = 256,
        lint: bool = True,
        **runtime_kwargs,
    ):
        if runtime is None:
            if datacenter is None:
                raise ValueError("UDCService needs a datacenter or a runtime")
            runtime = UDCRuntime(datacenter, **runtime_kwargs)
        elif runtime_kwargs:
            raise ValueError(
                f"runtime kwargs {sorted(runtime_kwargs)} conflict with an "
                f"explicit runtime instance"
            )
        self.runtime = runtime
        self.lint = lint
        self.telemetry = runtime.telemetry
        self.policy = policy if policy is not None else WeightedFairShare()
        runtime.admission_policy = self.policy
        self.batched = batched
        if batched:
            runtime.admission_memo = AdmissionMemo(admission_memo_capacity)
        self.cache = ResultCache(result_cache_capacity)
        self.ledger = TenantLedger()
        self.tenants: Dict[str, Tenant] = {}
        self._handles: List[SubmissionHandle] = []
        self._pending: List[SubmissionHandle] = []
        self._seq = itertools.count()
        self.rounds = 0

    # ------------------------------------------------------------- tenants

    def register_tenant(
        self,
        name: str,
        weight: float = 1.0,
        quota: Optional[TenantQuota] = None,
    ) -> Tenant:
        """Register (or re-configure) a tenant; weights feed fair share."""
        tenant = Tenant(name=name, weight=weight, quota=quota)
        existing = self.tenants.get(name)
        if existing is not None:
            tenant.submitted = existing.submitted
        self.tenants[name] = tenant
        if isinstance(self.policy, WeightedFairShare):
            self.policy.set_weight(name, weight)
        return tenant

    def _tenant_of(self, tenant: Union[Tenant, str]) -> Tenant:
        if isinstance(tenant, Tenant):
            if self.tenants.get(tenant.name) is not tenant:
                raise ValueError(
                    f"tenant {tenant.name!r} is not registered with this "
                    f"service (use register_tenant)"
                )
            return tenant
        if tenant not in self.tenants:
            # Unknown names self-register with defaults: an open service.
            return self.register_tenant(tenant)
        return self.tenants[tenant]

    def in_flight(self, tenant: str) -> int:
        """Submissions currently occupying one of the tenant's slots."""
        return sum(
            1 for handle in self._handles
            if handle.tenant == tenant and handle.status in _LIVE_STATES
        )

    # -------------------------------------------------------------- submit

    def submit(
        self,
        tenant: Union[Tenant, str],
        app: ModuleDAG,
        definition=None,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> SubmissionHandle:
        """Accept one submission; raises
        :class:`~repro.service.tenants.QuotaExceeded` over quota.

        In batched mode the submission buffers until the next
        :meth:`dispatch_round` (or :meth:`drain`, which flushes); in
        serial mode it reaches the runtime immediately.
        """
        record = self._tenant_of(tenant)
        name = record.name
        labels = {"tenant": name}
        self.telemetry.inc("udc_tenant_submissions_total", labels=labels)
        handle = SubmissionHandle(tenant=name, app=app.name,
                                  seq=next(self._seq))
        if self.cache.capacity > 0:
            key = ResultCache.key(app, definition, inputs)
            cached = self.cache.get(key)
            if cached is not None:
                # Served without consuming capacity: no quota charge.
                handle.cached = True
                handle.result = cached
                handle._cache_key = key
                self._handles.append(handle)
                self.ledger.record_submission(name)
                self.ledger.record_cache_hit(name, cached)
                self.telemetry.inc("udc_tenant_cache_hits_total",
                                   labels=labels)
                return handle
            handle._cache_key = key
            self.telemetry.inc("udc_tenant_cache_misses_total", labels=labels)
        try:
            record.check_quota(self.in_flight(name))
        except QuotaExceeded:
            self.ledger.record_rejection(name)
            self.telemetry.inc("udc_tenant_rejections_total", labels=labels)
            raise
        if self.lint:
            self._lint(name, app, definition)
        record.submitted += 1
        self.ledger.record_submission(name)
        self._handles.append(handle)
        pending = _PendingWork(handle, app, definition, inputs)
        if self.batched:
            self._pending.append(pending)
        else:
            self._dispatch(pending)
        return handle

    def _lint(self, tenant: str, app: ModuleDAG, definition) -> None:
        """Static front-door check; raises
        :class:`~repro.analysis.AnalysisError` on error findings.

        Runs the same passes — and produces the same diagnostics — as
        ``udc lint`` against this service's datacenter, so a rejected
        tenant can reproduce the report offline.
        """
        # Imported here: repro.analysis imports service types at load.
        from repro.analysis import AnalysisError, analyze_definition

        labels = {"tenant": tenant}
        self.telemetry.inc("udc_lint_checks_total", labels=labels)
        report = analyze_definition(
            definition if definition is not None else {},
            app=app, datacenter=self.runtime.datacenter,
        )
        for diag in report:
            self.telemetry.inc(
                "udc_lint_findings_total",
                labels={"severity": diag.severity.value},
            )
        if not report.ok:
            self.ledger.record_rejection(tenant)
            self.telemetry.inc("udc_tenant_rejections_total", labels=labels)
            self.telemetry.inc("udc_lint_rejections_total", labels=labels)
            raise AnalysisError(report)

    def _dispatch(self, work: "_PendingWork") -> None:
        handle = work.handle
        submission = self.runtime.submit(
            work.app, work.definition, tenant=handle.tenant,
            inputs=work.inputs, queue_if_full=True,
        )
        handle.submission = submission
        labels = {"tenant": handle.tenant}
        if submission.status == "queued":
            self.telemetry.inc("udc_tenant_queued_total", labels=labels)
        else:
            self.telemetry.inc("udc_tenant_admitted_total", labels=labels)

    def dispatch_round(self) -> int:
        """Flush buffered submissions as one scheduling round.

        The round is ordered by the admission policy (fair share by
        default; seq breaks ties deterministically) and placed under one
        scheduler batch span, so control-plane telemetry is paid once
        per round instead of once per app.
        """
        if not self._pending:
            return 0
        batch = sorted(
            self._pending,
            key=lambda w: self.policy.sort_key(w.handle.tenant,
                                               w.handle.seq),
        )
        self._pending = []
        self.rounds += 1
        span = self.telemetry.span_start(
            self.runtime.sim.now, "service", "dispatch-round", "service",
            round=self.rounds, batch=len(batch),
        )
        memo = self.runtime.admission_memo
        memo_scope = (memo.identity_round() if memo is not None
                      else nullcontext())
        with self.runtime.scheduler.batch_round(len(batch)), memo_scope:
            for work in batch:
                self._dispatch(work)
        self.telemetry.span_end(span, self.runtime.sim.now)
        self.telemetry.inc("udc_service_rounds_total")
        self.telemetry.inc("udc_service_dispatched_total", len(batch))
        return len(batch)

    # --------------------------------------------------------------- drain

    def drain(self, until: Optional[float] = None) -> List[SubmissionHandle]:
        """Dispatch anything buffered and run the clock.

        With ``until`` the clock stops early (statuses update, results
        wait); without it the runtime drains to quiescence and every
        newly finished handle is finalized — results collected, tenant
        ledger and metrics updated, the result cache fed.  Returns the
        handles finalized by this call.
        """
        self.dispatch_round()
        if until is not None:
            self.runtime.sim.run(until=until)
            return []
        self.runtime.drain()
        finished: List[SubmissionHandle] = []
        for handle in self._handles:
            if handle.cached or handle.result is not None:
                continue
            submission = handle.submission
            if submission is None or submission.result is None:
                continue
            self._finalize(handle)
            finished.append(handle)
        return finished

    def _finalize(self, handle: SubmissionHandle) -> None:
        submission = handle.submission
        handle.result = submission.result
        labels = {"tenant": handle.tenant}
        if submission.status == "unplaceable":
            self.ledger.record_unplaceable(handle.tenant)
            self.telemetry.inc("udc_tenant_unplaceable_total", labels=labels)
            return
        self.ledger.record_result(
            handle.tenant, submission.result,
            queue_wait_s=submission.queue_wait_s,
        )
        self.telemetry.inc("udc_tenant_completed_total", labels=labels)
        self.telemetry.inc("udc_tenant_cost_dollars_total",
                           submission.result.total_cost, labels=labels)
        if submission.queue_wait_s > 0:
            self.telemetry.observe("udc_tenant_queue_wait_seconds",
                                   submission.queue_wait_s, labels=labels)
        if handle._cache_key is not None:
            self.cache.put(handle._cache_key, submission.result)

    # ----------------------------------------------------------- reporting

    def completed_by_tenant(self) -> Dict[str, int]:
        """Executed completions per registered tenant (cache hits are
        served, not executed, so they do not count).  Works mid-run."""
        counts = {name: 0 for name in self.tenants}
        for handle in self._handles:
            if not handle.cached and handle.done:
                counts[handle.tenant] = counts.get(handle.tenant, 0) + 1
        return counts

    def fairness_index(self, metric: str = "completed") -> float:
        """Jain's index across registered tenants.

        ``metric="completed"`` scores executed completions (usable
        mid-run, before results are collected); any other name reads
        that field off the tenant ledger rollups.
        """
        if metric == "completed":
            counts = self.completed_by_tenant()
            return jain_index(float(counts[name])
                              for name in sorted(counts))
        return self.ledger.fairness(metric, tenants=sorted(self.tenants))

    def rollup(self) -> List[TenantUsage]:
        return self.ledger.rollup()

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def handles(self) -> List[SubmissionHandle]:
        return list(self._handles)


@dataclass
class _PendingWork:
    """A buffered submission awaiting its dispatch round."""

    handle: SubmissionHandle
    app: ModuleDAG
    definition: Any
    inputs: Optional[Dict[str, Any]]
